#pragma once
/// \file driver.hpp
/// PeleC performance-history driver: reproduces Figure 2 ("History of
/// PeleC time per cell per timestep ... between September 2018 and March
/// 2023"). Each code state toggles the optimizations §3.8 describes; each
/// machine supplies the hardware model. Single-node and 4096-node series.

#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "io/io_model.hpp"
#include "net/fabric.hpp"

namespace exa::apps::pele {

/// The code's state at each point of the project timeline.
enum class CodeState {
  kHybridCpu2018,        ///< C++/Fortran hybrid, many-core CPU targets
  kCppCpu2019,           ///< single-language C++ rewrite: 2x on CPUs
  kGpuUvmPointwise2020,  ///< first GPU port: UVM data, pointwise chemistry
  kGpuBatchedAsync2021,  ///< CVODE-batched chemistry, async ghost exchange
  kGpuTuned2023,         ///< UVM removed, fused small-box launches, compiler fixes
};

[[nodiscard]] std::string to_string(CodeState s);
/// Whether a state can run on a CPU-only machine (GPU states cannot) and
/// vice versa — Figure 2 only plots valid (machine, state) pairs.
[[nodiscard]] bool is_gpu_state(CodeState s);

struct PeleConfig {
  std::size_t cells_per_node = 96ull * 1024 * 1024;  ///< working set per node
  std::size_t box_edge = 32;                         ///< AMR box size
  int chem_substeps_pointwise = 15;  ///< explicit substeps per cell
  int newton_iters_batched = 6;      ///< implicit iterations per cell
  /// Network model knobs for the ghost exchange and regrid collective; the
  /// default (analytic) fabric reproduces the CommModel costs exactly.
  net::FabricConfig fabric;
  /// Storage model for plotfile output (§3.8 writes plotfiles on a
  /// cadence for analysis); the default quiet filesystem adds exactly
  /// zero time, keeping baseline artifacts bit-stable.
  io::IoConfig io;
  /// Steps between plotfile dumps (count; 0 disables plotfiles).
  int plotfile_interval = 10;
  /// Plotfile payload per cell: 8 fp64 components (bytes).
  double plotfile_bytes_per_cell = 64.0;
};

/// Per-cell per-step cost breakdown (seconds).
struct CellTime {
  double chem_s = 0.0;
  double hydro_s = 0.0;
  double launch_s = 0.0;  ///< kernel-launch overhead share
  double uvm_s = 0.0;     ///< page-fault migrations share
  double ghost_s = 0.0;   ///< unoverlapped ghost-exchange share
  double plot_s = 0.0;    ///< amortized plotfile-write share
  [[nodiscard]] double total() const {
    return chem_s + hydro_s + launch_s + uvm_s + ghost_s + plot_s;
  }
};

/// Time per cell per timestep for a (machine, code-state) pair at `nodes`
/// nodes. Throws when the state cannot run on the machine.
[[nodiscard]] CellTime time_per_cell_step(const arch::Machine& machine,
                                          CodeState state, int nodes = 1,
                                          const PeleConfig& config = {});

/// One point of the Figure 2 series.
struct HistoryPoint {
  std::string machine;
  std::string date;  ///< e.g. "2018-09"
  CodeState state = CodeState::kHybridCpu2018;
  int nodes = 1;
  double time_per_cell_s = 0.0;
};

/// The full Figure 2 series: the single-node machine/state history plus
/// the 4096-node Summit/Frontier points for the 2020/2021/2023 states.
[[nodiscard]] std::vector<HistoryPoint> figure2_series(
    const PeleConfig& config = {});

/// Weak-scaling efficiency of the tuned code from 1 to `nodes` nodes.
[[nodiscard]] double weak_scaling_efficiency(const arch::Machine& machine,
                                             int nodes,
                                             const PeleConfig& config = {});

}  // namespace exa::apps::pele
