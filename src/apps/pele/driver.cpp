#include "apps/pele/driver.hpp"

#include <algorithm>
#include <cmath>

#include "io/checkpoint.hpp"
#include "net/fabric.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"

namespace exa::apps::pele {

namespace {

/// Abstract per-cell work of the combustion step (a realistic multi-species
/// mechanism, not the skeletal test mechanism): flop counts per cell.
constexpr double kChemRhsFlops = 9.0e3;   ///< one production-rate eval
constexpr double kChemJacFlops = 4.5e4;   ///< one Jacobian + LU share
constexpr double kHydroFlops = 2.4e3;     ///< advection/diffusion sweeps
constexpr double kHydroBytes = 360.0;     ///< stencil traffic per cell
/// Species-state traffic per pointwise RHS eval (state stays in registers).
constexpr double kChemPointwiseBytes = 240.0;
/// Traffic per batched Newton iteration: the per-cell factors and batched
/// solver workspace stream through memory (the Jacobian tiles mostly stay
/// in cache between the factorization sweeps).
constexpr double kChemBatchedBytes = 1.0e4;

}  // namespace

std::string to_string(CodeState s) {
  switch (s) {
    case CodeState::kHybridCpu2018: return "2018-09 C++/Fortran hybrid (CPU)";
    case CodeState::kCppCpu2019: return "2019-06 single-language C++ (CPU)";
    case CodeState::kGpuUvmPointwise2020:
      return "2020-01 GPU port (UVM, pointwise chemistry)";
    case CodeState::kGpuBatchedAsync2021:
      return "2021-03 batched CVODE + async ghost exchange";
    case CodeState::kGpuTuned2023:
      return "2023-03 tuned (no UVM, fused launches, compiler fixes)";
  }
  return "?";
}

bool is_gpu_state(CodeState s) {
  return s == CodeState::kGpuUvmPointwise2020 ||
         s == CodeState::kGpuBatchedAsync2021 ||
         s == CodeState::kGpuTuned2023;
}

namespace {

CellTime cpu_time_per_cell(const arch::Machine& machine, CodeState state) {
  const arch::CpuArch& cpu = machine.node.cpu;
  // The single-language rewrite let the compiler optimize one language:
  // "It was also found to be 2x faster on CPUs".
  const double lang = state == CodeState::kCppCpu2019 ? 1.0 : 0.5;
  const double flops_per_cell =
      kHydroFlops + 15.0 * kChemRhsFlops;  // explicit substeps
  const double rate = cpu.peak_fp64_flops * cpu.sustained_fraction * lang;
  CellTime t;
  t.chem_s = 15.0 * kChemRhsFlops / rate;
  t.hydro_s = (flops_per_cell - 15.0 * kChemRhsFlops) / rate;
  return t;
}

CellTime gpu_time_per_cell(const arch::Machine& machine, CodeState state,
                           int nodes, const PeleConfig& config) {
  const arch::GpuArch& gpu = *machine.node.gpu;
  const int devices = machine.node.gpus_per_node;
  const double cells_per_device =
      static_cast<double>(config.cells_per_node) / devices;
  const double box_cells = std::pow(static_cast<double>(config.box_edge), 3.0);
  const double boxes_per_device = std::max(1.0, cells_per_device / box_cells);

  const bool batched = state != CodeState::kGpuUvmPointwise2020;
  const bool tuned = state == CodeState::kGpuTuned2023;

  sim::ExecTuning tuning;
  tuning.spill_traffic_multiplier = tuned ? 1.0 : 3.0;  // §3.10.3-era ROCm

  // --- chemistry kernel over one device's cells --------------------------
  sim::KernelProfile chem;
  chem.name = batched ? "chem_batched_cvode" : "chem_pointwise";
  const double evals =
      batched ? config.newton_iters_batched : config.chem_substeps_pointwise;
  const double flops_per_cell =
      batched ? evals * (kChemRhsFlops + kChemJacFlops / 3.0)
              : evals * kChemRhsFlops;
  chem.add_flops(arch::DType::kF64, flops_per_cell * cells_per_device);
  const double bytes_per_eval =
      batched ? kChemBatchedBytes : kChemPointwiseBytes;
  chem.bytes_read = evals * bytes_per_eval * cells_per_device;
  chem.bytes_written = bytes_per_eval * cells_per_device;
  // The unrolled mechanism kernels are huge: heavy register pressure
  // (§3.8: "upwards of 18k registers" before fission; per-thread pressure
  // here). The batched path was refactored to fit.
  chem.registers_per_thread = batched ? 255 : 320;
  // Pointwise integration diverges (cells take different substep counts);
  // the assembled batched system is convergent.
  chem.coherent_run_length = batched ? 0.0 : 8.0;
  chem.compute_efficiency = batched ? (tuned ? 0.42 : 0.30) : 0.35;
  // The 2023 state's data-layout work also improved effective bandwidth.
  chem.memory_efficiency = tuned ? 0.7 : 0.6;

  sim::LaunchConfig chem_launch;
  chem_launch.block_threads = 256;
  chem_launch.blocks = static_cast<std::uint64_t>(
      std::max(1.0, cells_per_device / (batched ? 256.0 : 1024.0)));
  const double chem_s =
      sim::kernel_timing(gpu, chem, chem_launch, tuning).total_s;

  // --- hydro sweeps -----------------------------------------------------------
  sim::KernelProfile hydro;
  hydro.name = "hydro_mol";
  hydro.add_flops(arch::DType::kF64, kHydroFlops * cells_per_device);
  hydro.bytes_read = kHydroBytes * cells_per_device * 0.75;
  hydro.bytes_written = kHydroBytes * cells_per_device * 0.25;
  hydro.registers_per_thread = 128;
  hydro.compute_efficiency = 0.5;
  hydro.memory_efficiency = 0.75;
  const double hydro_s =
      sim::kernel_timing(gpu, hydro, chem_launch, tuning).total_s;

  // --- launch overhead: one kernel set per box unless launches are fused ---
  const double kernels_per_box = 14.0;  // hydro stages + chem + EB fixups
  const double launches = tuned ? kernels_per_box * boxes_per_device / 6.0
                                : kernels_per_box * boxes_per_device;
  const double launch_s = launches * gpu.kernel_launch_latency_s;

  // --- UVM migration: ghost regions fault back and forth each step ----------
  double uvm_s = 0.0;
  if (state == CodeState::kGpuUvmPointwise2020) {
    const double ghost_bytes = boxes_per_device * 6.0 *
                               std::pow(static_cast<double>(config.box_edge), 2.0) *
                               8.0 * 8.0;  // 8 ghosted components
    constexpr double kPageGroup = 2.0 * 1024 * 1024;
    const double groups = std::max(1.0, ghost_bytes / kPageGroup);
    uvm_s = groups * gpu.uvm_page_fault_latency_s +
            ghost_bytes / (gpu.host_link.bandwidth_bytes_per_s * 0.6);
  }

  // --- inter-node ghost exchange and AMR load imbalance ---------------------
  double ghost_s = 0.0;
  double imbalance = 1.0;
  if (nodes > 1) {
    const net::Fabric comm(machine, devices, config.fabric);
    const double cells_edge = std::cbrt(cells_per_device);
    const double face_bytes = cells_edge * cells_edge * 8.0 * 8.0;
    double exchange_s = comm.halo_exchange(face_bytes, 6);
    // Regrid / load-balance collective each step.
    exchange_s += comm.allreduce(1.0e5, nodes * devices);
    if (state == CodeState::kGpuBatchedAsync2021 ||
        state == CodeState::kGpuTuned2023) {
      // Asynchronous exchange overlaps with interior compute.
      ghost_s = std::max(0.0, exchange_s - (chem_s + hydro_s));
    } else {
      ghost_s = exchange_s;
    }
    // AMR box distributions never balance perfectly; the straggler tail
    // grows slowly with scale.
    imbalance = 1.0 + 0.015 * std::log2(static_cast<double>(nodes));
  }

  // All devices of the node work concurrently: the node advances
  // cells_per_node cells in the per-device step time.
  const double cells_per_node = static_cast<double>(config.cells_per_node);
  CellTime t;
  t.chem_s = chem_s * imbalance / cells_per_node;
  t.hydro_s = hydro_s * imbalance / cells_per_node;
  t.launch_s = launch_s * devices / cells_per_node;  // every device launches
  t.uvm_s = uvm_s * devices / cells_per_node;
  t.ghost_s = ghost_s / cells_per_node;
  return t;
}

}  // namespace

namespace {

/// Amortized per-cell plotfile share: every `plotfile_interval` steps each
/// rank streams its cells' plot state through the configured filesystem.
/// Exactly 0.0 for the default quiet `config.io`.
double plot_time_per_cell(const arch::Machine& machine, int nodes,
                          const PeleConfig& config) {
  if (config.plotfile_interval <= 0) return 0.0;
  const int devices = machine.node.has_gpu() ? machine.node.gpus_per_node : 1;
  const int ranks = nodes * devices;
  const double cells =
      static_cast<double>(config.cells_per_node) * nodes;
  const double bytes_per_rank =
      cells * config.plotfile_bytes_per_cell / ranks;
  const double plot_s =
      io::checkpoint_time(config.io, ranks, bytes_per_rank);
  return plot_s / config.plotfile_interval /
         static_cast<double>(config.cells_per_node);
}

}  // namespace

CellTime time_per_cell_step(const arch::Machine& machine, CodeState state,
                            int nodes, const PeleConfig& config) {
  EXA_REQUIRE(nodes >= 1 && nodes <= machine.node_count);
  CellTime t;
  if (is_gpu_state(state)) {
    EXA_REQUIRE_MSG(machine.node.has_gpu(),
                    "GPU code state on a CPU-only machine");
    t = gpu_time_per_cell(machine, state, nodes, config);
  } else {
    t = cpu_time_per_cell(machine, state);
  }
  t.plot_s = plot_time_per_cell(machine, nodes, config);
  return t;
}

std::vector<HistoryPoint> figure2_series(const PeleConfig& config) {
  namespace m = arch::machines;
  std::vector<HistoryPoint> series;
  auto add = [&](const arch::Machine& machine, const std::string& date,
                 CodeState state, int nodes) {
    HistoryPoint p;
    p.machine = machine.name;
    p.date = date;
    p.state = state;
    p.nodes = nodes;
    p.time_per_cell_s =
        time_per_cell_step(machine, state, nodes, config).total();
    series.push_back(p);
  };

  // Single-node history (Figure 2's main line).
  add(m::cori(), "2018-09", CodeState::kHybridCpu2018, 1);
  add(m::theta(), "2019-01", CodeState::kHybridCpu2018, 1);
  add(m::eagle(), "2019-06", CodeState::kCppCpu2019, 1);
  add(m::summit(), "2020-01", CodeState::kGpuUvmPointwise2020, 1);
  add(m::summit(), "2021-03", CodeState::kGpuBatchedAsync2021, 1);
  add(m::frontier(), "2023-03", CodeState::kGpuTuned2023, 1);

  // 4096-node points for the 2020, 2021 and 2023 code states.
  add(m::summit(), "2020-01", CodeState::kGpuUvmPointwise2020, 4096);
  add(m::summit(), "2021-03", CodeState::kGpuBatchedAsync2021, 4096);
  add(m::frontier(), "2023-03", CodeState::kGpuTuned2023, 4096);
  return series;
}

double weak_scaling_efficiency(const arch::Machine& machine, int nodes,
                               const PeleConfig& config) {
  const double t1 =
      time_per_cell_step(machine, CodeState::kGpuTuned2023, 1, config).total();
  const double tn =
      time_per_cell_step(machine, CodeState::kGpuTuned2023, nodes, config)
          .total();
  return t1 / tn;
}

}  // namespace exa::apps::pele
