#include "apps/pele/chemistry.hpp"

#include <cmath>
#include <cstdint>

#include "mathlib/lu.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::pele {

std::string species_name(std::size_t s) {
  switch (s) {
    case kH2: return "H2";
    case kO2: return "O2";
    case kH2O: return "H2O";
    case kH: return "H";
    case kO: return "O";
    case kOH: return "OH";
    default: return "?";
  }
}

const std::vector<Reaction>& mechanism() {
  static const std::vector<Reaction> mech = [] {
    std::vector<Reaction> m;
    auto add = [&m](double k, std::initializer_list<std::pair<Species, int>> r,
                    std::initializer_list<std::pair<Species, int>> p) {
      Reaction rx;
      rx.rate_constant = k;
      for (const auto& [s, nu] : r) rx.reactants[s] = nu;
      for (const auto& [s, nu] : p) rx.products[s] = nu;
      m.push_back(rx);
    };
    // Initiation (slow): H2 + O2 -> 2 OH
    add(1.0e-2, {{kH2, 1}, {kO2, 1}}, {{kOH, 2}});
    // Propagation (fast): OH + H2 -> H2O + H
    add(1.0e3, {{kOH, 1}, {kH2, 1}}, {{kH2O, 1}, {kH, 1}});
    // Branching: H + O2 -> OH + O
    add(5.0e2, {{kH, 1}, {kO2, 1}}, {{kOH, 1}, {kO, 1}});
    // Branching: O + H2 -> OH + H
    add(5.0e2, {{kO, 1}, {kH2, 1}}, {{kOH, 1}, {kH, 1}});
    // Recombination (very fast; the stiff mode): H + OH -> H2O
    add(1.0e4, {{kH, 1}, {kOH, 1}}, {{kH2O, 1}});
    return m;
  }();
  return mech;
}

void production_rates(const Conc& c, Conc& wdot) {
  wdot.fill(0.0);
  for (const Reaction& r : mechanism()) {
    double rate = r.rate_constant;
    for (std::size_t s = 0; s < kNumSpecies; ++s) {
      for (int nu = 0; nu < r.reactants[s]; ++nu) rate *= c[s];
    }
    for (std::size_t s = 0; s < kNumSpecies; ++s) {
      wdot[s] += rate * (r.products[s] - r.reactants[s]);
    }
  }
}

void jacobian_fd(const Conc& c, std::span<double> jac) {
  EXA_REQUIRE(jac.size() >= kNumSpecies * kNumSpecies);
  Conc base;
  production_rates(c, base);
  for (std::size_t j = 0; j < kNumSpecies; ++j) {
    const double h = std::max(1e-8, 1e-7 * std::fabs(c[j]));
    Conc pert = c;
    pert[j] += h;
    Conc wp;
    production_rates(pert, wp);
    for (std::size_t i = 0; i < kNumSpecies; ++i) {
      jac[i * kNumSpecies + j] = (wp[i] - base[i]) / h;
    }
  }
}

Elements element_totals(const Conc& c) {
  Elements e;
  e.h = 2.0 * c[kH2] + 2.0 * c[kH2O] + c[kH] + c[kOH];
  e.o = 2.0 * c[kO2] + c[kH2O] + c[kO] + c[kOH];
  return e;
}

Conc ignition_mixture() {
  Conc c{};
  c[kH2] = 2.0;
  c[kO2] = 1.0;
  c[kH] = 1.0e-4;  // radical seed
  return c;
}

namespace {

void rk4_step(Conc& c, double h, IntegrateStats& stats) {
  Conc k1, k2, k3, k4, tmp;
  production_rates(c, k1);
  for (std::size_t s = 0; s < kNumSpecies; ++s) tmp[s] = c[s] + 0.5 * h * k1[s];
  production_rates(tmp, k2);
  for (std::size_t s = 0; s < kNumSpecies; ++s) tmp[s] = c[s] + 0.5 * h * k2[s];
  production_rates(tmp, k3);
  for (std::size_t s = 0; s < kNumSpecies; ++s) tmp[s] = c[s] + h * k3[s];
  production_rates(tmp, k4);
  for (std::size_t s = 0; s < kNumSpecies; ++s) {
    c[s] += h / 6.0 * (k1[s] + 2.0 * k2[s] + 2.0 * k3[s] + k4[s]);
  }
  stats.rhs_evals += 4;
}

}  // namespace

IntegrateStats integrate_rk4_pointwise(std::span<Conc> cells, double dt,
                                       int substeps) {
  EXA_REQUIRE(substeps >= 1);
  IntegrateStats stats;
  const double h = dt / substeps;
  // Each cell walks its own substep loop — the pointwise pattern.
  for (Conc& c : cells) {
    for (int s = 0; s < substeps; ++s) rk4_step(c, h, stats);
  }
  return stats;
}

IntegrateStats integrate_be_batched(std::span<Conc> cells, double dt,
                                    double newton_tol, int max_newton) {
  IntegrateStats stats;
  constexpr std::size_t NS = kNumSpecies;

  // Batched Newton: all cells advance one Newton iteration together and
  // the per-cell dense solves go through the MAGMA-style batched LU (this
  // is how CVODE drives the device in PeleLM(eX), §3.8).
  std::vector<Conc> x(cells.begin(), cells.end());  // Newton iterate
  std::vector<std::uint8_t> converged(cells.size(), 0);

  std::vector<std::size_t> active;   // cells in this iteration's batch
  std::vector<double> jacs;          // batch of (I - dt J) matrices
  std::vector<double> rhs;           // batch of -G vectors
  std::vector<int> pivots;

  for (int it = 0; it < max_newton; ++it) {
    // Assemble the batch: residuals and Jacobians of unconverged cells.
    active.clear();
    jacs.clear();
    rhs.clear();
    for (std::size_t cell = 0; cell < cells.size(); ++cell) {
      if (converged[cell]) continue;

      // G(x) = x - c0 - dt f(x); solve (I - dt J_f) dx = -G.
      Conc f;
      production_rates(x[cell], f);
      ++stats.rhs_evals;
      std::array<double, NS> g;
      double gnorm = 0.0;
      for (std::size_t s = 0; s < NS; ++s) {
        g[s] = x[cell][s] - cells[cell][s] - dt * f[s];
        gnorm = std::max(gnorm, std::fabs(g[s]));
      }
      if (gnorm < newton_tol) {
        converged[cell] = 1;
        continue;
      }

      std::array<double, NS * NS> jac;
      jacobian_fd(x[cell], jac);
      ++stats.jacobian_evals;
      active.push_back(cell);
      for (std::size_t i = 0; i < NS; ++i) {
        for (std::size_t j = 0; j < NS; ++j) {
          jacs.push_back((i == j ? 1.0 : 0.0) - dt * jac[i * NS + j]);
        }
      }
      for (std::size_t s = 0; s < NS; ++s) rhs.push_back(-g[s]);
    }
    if (active.empty()) break;

    // One batched factorization + solve for the whole Newton iteration.
    pivots.assign(NS * active.size(), 0);
    const int info = ml::dgetrf_batched(jacs, NS, active.size(), pivots);
    EXA_REQUIRE_MSG(info == 0, "singular Newton matrix in BE integrator");
    ml::dgetrs_batched(jacs, NS, active.size(), pivots, rhs, 1);
    stats.linear_solves += active.size();
    stats.newton_iters += active.size();

    for (std::size_t b = 0; b < active.size(); ++b) {
      for (std::size_t s = 0; s < NS; ++s) {
        x[active[b]][s] += rhs[b * NS + s];
      }
    }
  }

  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    cells[cell] = x[cell];
  }
  return stats;
}

}  // namespace exa::apps::pele
