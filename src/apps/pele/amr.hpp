#pragma once
/// \file amr.hpp
/// A block-structured AMR-lite substrate in the AMReX mold (§3.8): a
/// domain decomposed into fixed-size boxes with ghost layers, a real
/// ghost-cell exchange, embedded-boundary (EB) flags from an analytic
/// geometry, and a diffusion-like stencil step used to validate ghost
/// exchange against a monolithic-array reference.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace exa::apps::pele {

/// One box of an n-cell^3 patch with `ghost` ghost layers on each side.
struct Box {
  std::size_t n = 0;      ///< interior cells per edge
  std::size_t ghost = 1;
  std::size_t ix = 0, iy = 0, iz = 0;  ///< box coordinates in the box grid
  std::vector<double> data;            ///< (n+2g)^3, ghost-inclusive

  [[nodiscard]] std::size_t stride() const { return n + 2 * ghost; }
  [[nodiscard]] double& at(std::size_t x, std::size_t y, std::size_t z) {
    const std::size_t s = stride();
    return data[(x * s + y) * s + z];
  }
  [[nodiscard]] double at(std::size_t x, std::size_t y, std::size_t z) const {
    const std::size_t s = stride();
    return data[(x * s + y) * s + z];
  }
};

/// A level: a bx^3 grid of boxes covering a (bx*n)^3 domain.
class BoxGrid {
 public:
  BoxGrid(std::size_t boxes_per_edge, std::size_t cells_per_box,
          std::size_t ghost = 1);

  [[nodiscard]] std::size_t boxes_per_edge() const { return bx_; }
  [[nodiscard]] std::size_t cells_per_box() const { return n_; }
  [[nodiscard]] std::size_t domain_cells() const { return bx_ * n_; }
  [[nodiscard]] Box& box(std::size_t i, std::size_t j, std::size_t k);
  [[nodiscard]] const Box& box(std::size_t i, std::size_t j, std::size_t k) const;
  [[nodiscard]] std::size_t box_count() const { return boxes_.size(); }

  /// Initializes interiors from f(global x, y, z).
  void fill(const std::function<double(std::size_t, std::size_t, std::size_t)>& f);

  /// Copies face-adjacent interior data into neighbors' ghost layers
  /// (non-periodic: domain-boundary ghosts replicate the nearest interior
  /// cell). This is the real exchange the §3.8 "asynchronous ghost cell
  /// exchange" optimization reschedules.
  void exchange_ghosts();

  /// One 7-point diffusion step (in place, using ghost data).
  void stencil_step(double alpha);

  /// Flattens interiors into a monolithic (bx*n)^3 array.
  [[nodiscard]] std::vector<double> flatten() const;

  /// Total ghost bytes exchanged per exchange (for the comm model).
  [[nodiscard]] double ghost_bytes_per_exchange() const;

 private:
  std::size_t bx_, n_, g_;
  std::vector<Box> boxes_;
};

/// Reference: one diffusion step on a monolithic array with replicated
/// (Neumann-like) boundaries; for validating BoxGrid::stencil_step.
void reference_stencil_step(std::vector<double>& field, std::size_t n,
                            double alpha);

/// Embedded-boundary flags: cells covered by a sphere of radius r centered
/// in the domain. Returns the flag field (1 = covered) plus the cut-cell
/// count (cells adjacent to the surface), which the EB routines sort.
struct EbFlags {
  std::vector<std::uint8_t> covered;
  std::size_t cut_cells = 0;
};
[[nodiscard]] EbFlags make_sphere_eb(std::size_t n, double radius_fraction);

}  // namespace exa::apps::pele
