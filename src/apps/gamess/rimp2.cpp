#include "apps/gamess/rimp2.hpp"

#include <algorithm>
#include <cmath>

#include "mathlib/dense.hpp"
#include "mathlib/device_blas.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"

namespace exa::apps::gamess {

Fragment make_fragment(std::size_t nocc, std::size_t nvirt, std::size_t naux,
                       support::Rng& rng) {
  EXA_REQUIRE(nocc >= 1 && nvirt >= 1 && naux >= 1);
  Fragment f;
  f.nocc = nocc;
  f.nvirt = nvirt;
  f.naux = naux;
  f.b.resize(nocc * nvirt * naux);
  for (double& v : f.b) {
    v = rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(naux)));
  }
  f.eps_occ.resize(nocc);
  f.eps_virt.resize(nvirt);
  for (std::size_t i = 0; i < nocc; ++i) {
    f.eps_occ[i] = -2.0 + 1.5 * static_cast<double>(i) / std::max<std::size_t>(1, nocc);
  }
  for (std::size_t a = 0; a < nvirt; ++a) {
    f.eps_virt[a] = 0.5 + 2.0 * static_cast<double>(a) / std::max<std::size_t>(1, nvirt);
  }
  return f;
}

double rimp2_energy(const Fragment& f) {
  const std::size_t no = f.nocc;
  const std::size_t nv = f.nvirt;
  const std::size_t na = f.naux;
  std::vector<double> vij(nv * nv);
  double energy = 0.0;

  for (std::size_t i = 0; i < no; ++i) {
    for (std::size_t j = 0; j < no; ++j) {
      // V_ij[a][b] = (ia|jb) = sum_P B[(i a), P] * B[(j b), P]: a GEMM of
      // (nv x na) x (na x nv) with the second operand transposed. Build
      // B_j^T once per pair. The exchange integral (ib|ja) is the same
      // matrix transposed.
      std::vector<double> bjt(na * nv);
      for (std::size_t b = 0; b < nv; ++b) {
        const double* row = f.b_row(j, b);
        for (std::size_t p = 0; p < na; ++p) bjt[p * nv + b] = row[p];
      }
      const std::span<const double> bi(&f.b[(i * nv) * na], nv * na);
      ml::dgemm(bi, bjt, vij, nv, nv, na);

      for (std::size_t a = 0; a < nv; ++a) {
        for (std::size_t b = 0; b < nv; ++b) {
          const double iajb = vij[a * nv + b];
          const double ibja = vij[b * nv + a];
          const double denom =
              f.eps_occ[i] + f.eps_occ[j] - f.eps_virt[a] - f.eps_virt[b];
          energy += iajb * (2.0 * iajb - ibja) / denom;
        }
      }
    }
  }
  return energy;
}

double mp2_energy_direct(const Fragment& f) {
  const std::size_t no = f.nocc;
  const std::size_t nv = f.nvirt;
  const std::size_t na = f.naux;
  auto eri = [&](std::size_t i, std::size_t a, std::size_t j, std::size_t b) {
    const double* ba = f.b_row(i, a);
    const double* bb = f.b_row(j, b);
    double s = 0.0;
    for (std::size_t p = 0; p < na; ++p) s += ba[p] * bb[p];
    return s;
  };
  double energy = 0.0;
  for (std::size_t i = 0; i < no; ++i) {
    for (std::size_t j = 0; j < no; ++j) {
      for (std::size_t a = 0; a < nv; ++a) {
        for (std::size_t b = 0; b < nv; ++b) {
          const double iajb = eri(i, a, j, b);
          const double ibja = eri(i, b, j, a);
          const double denom =
              f.eps_occ[i] + f.eps_occ[j] - f.eps_virt[a] - f.eps_virt[b];
          energy += iajb * (2.0 * iajb - ibja) / denom;
        }
      }
    }
  }
  return energy;
}

double simulate_fragment_time(const arch::GpuArch& gpu, std::size_t nocc,
                              std::size_t nvirt, std::size_t naux,
                              bool tuned_library) {
  if (tuned_library) {
    ml::TuningRegistry::instance().register_gemm("GAMESS", nvirt, nvirt, naux,
                                                 arch::DType::kF64);
  }
  const double pairs = static_cast<double>(nocc) * static_cast<double>(nocc);
  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(pairs * nvirt * nvirt) / 1024);

  // All nocc^2 pair GEMMs go down in ONE batched launch (the MAGMA-style
  // batched interface §3.8 credits for PeleLM applies here too): the
  // per-launch latency amortizes over the batch.
  sim::KernelProfile batched = ml::gemm_profile(
      gpu, arch::DType::kF64, /*matrix_cores=*/true, nvirt, nvirt, naux);
  for (auto& w : batched.work) w.flops *= pairs;
  batched.bytes_read *= pairs;
  batched.bytes_written *= pairs;
  batched.name = "rimp2_pair_gemm_batched";
  const double gemm_s = sim::kernel_timing(gpu, batched, launch).total_s;

  // The pair-energy reduction over all pairs: memory bound.
  sim::KernelProfile reduce;
  reduce.name = "pair_energy_reduce";
  reduce.add_flops(arch::DType::kF64,
                   6.0 * pairs * static_cast<double>(nvirt * nvirt));
  reduce.bytes_read = 16.0 * pairs * static_cast<double>(nvirt * nvirt);
  reduce.bytes_written = 64.0 * pairs;
  reduce.memory_efficiency = 0.8;
  const double reduce_s = sim::kernel_timing(gpu, reduce, launch).total_s;

  // Two batched contractions per pair set (B formation + V assembly).
  return 2.0 * gemm_s + reduce_s;
}

}  // namespace exa::apps::gamess
