#pragma once
/// \file rimp2.hpp
/// GAMESS (§3.1): RI-MP2 correlation energy over molecular fragments.
///
/// The resolution-of-identity MP2 energy is computed two ways:
///  * the production path — per occupied pair (i, j), one DGEMM
///    V_ij = B_i B_j^T over the auxiliary index (the LibCChem/EXESS
///    kernel that hit near-peak device performance);
///  * a direct 4-index reference with identical math.
/// Both must agree to machine precision; MP2 energies are negative.

#include <cstddef>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "support/rng.hpp"

namespace exa::apps::gamess {

/// RI 3-index intermediates B[(i a) x P] plus orbital energies for one
/// fragment.
struct Fragment {
  std::size_t nocc = 0;
  std::size_t nvirt = 0;
  std::size_t naux = 0;
  std::vector<double> b;         ///< (nocc*nvirt) x naux, row-major
  std::vector<double> eps_occ;   ///< ascending, negative
  std::vector<double> eps_virt;  ///< ascending, positive

  [[nodiscard]] const double* b_row(std::size_t i, std::size_t a) const {
    return &b[(i * nvirt + a) * naux];
  }
};

/// Synthesizes a well-conditioned fragment (HOMO-LUMO gap bounded away
/// from zero so denominators are safe).
[[nodiscard]] Fragment make_fragment(std::size_t nocc, std::size_t nvirt,
                                     std::size_t naux, support::Rng& rng);

/// RI-MP2 energy via per-pair GEMMs (production algorithm).
[[nodiscard]] double rimp2_energy(const Fragment& f);

/// Direct 4-index reference (O(nocc^2 nvirt^2 naux), small sizes only).
[[nodiscard]] double mp2_energy_direct(const Fragment& f);

/// Simulated device time of one fragment RI-MP2 on `gpu`: nocc^2 pair
/// GEMMs of (nvirt x naux) x (naux x nvirt) plus the energy reduction.
/// Registers the GEMM shape with the vendor TuningRegistry when
/// `tuned_library` (the §4 early-problem-size collaboration).
[[nodiscard]] double simulate_fragment_time(const arch::GpuArch& gpu,
                                            std::size_t nocc,
                                            std::size_t nvirt,
                                            std::size_t naux,
                                            bool tuned_library);

}  // namespace exa::apps::gamess
