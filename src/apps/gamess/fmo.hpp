#pragma once
/// \file fmo.hpp
/// Fragment Molecular Orbital driver (§3.1): the many-body expansion that
/// makes GAMESS linear scaling — monomer energies plus dimer corrections
/// for fragment pairs within a distance cutoff. Fragments are independent
/// work units, which is what gives the "nearly ideal linear scaling up to
/// 2K nodes".

#include <cstddef>
#include <utility>
#include <vector>

#include "arch/machine.hpp"
#include "support/rng.hpp"

namespace exa::apps::gamess {

/// One fragment's centroid (e.g. a water molecule in the 935-molecule
/// cluster benchmark).
struct FragmentSite {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// Random close-packed cluster of `count` fragment centroids.
[[nodiscard]] std::vector<FragmentSite> make_cluster(std::size_t count,
                                                     support::Rng& rng);

/// Dimer list: fragment pairs within `cutoff` of each other.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> dimer_list(
    const std::vector<FragmentSite>& sites, double cutoff);

/// The many-body-expansion workload: monomers + dimers within cutoff.
struct FmoWorkload {
  std::size_t monomers = 0;
  std::size_t dimers = 0;
  /// Work units per fragment calculation, normalized to the monomer cost.
  [[nodiscard]] double total_units(double dimer_cost_ratio = 2.5) const {
    return static_cast<double>(monomers) +
           dimer_cost_ratio * static_cast<double>(dimers);
  }
};

[[nodiscard]] FmoWorkload make_workload(const std::vector<FragmentSite>& sites,
                                        double cutoff);

/// Strong-scaling model of an FMO run: independent fragment tasks,
/// dynamically load balanced (GDDI), with a small per-batch coordination
/// cost. Returns seconds per SCF iteration on `nodes` nodes.
[[nodiscard]] double fmo_iteration_time(const arch::Machine& machine,
                                        int nodes, const FmoWorkload& work,
                                        double fragment_seconds);

}  // namespace exa::apps::gamess
