#include "apps/gamess/fmo.hpp"

#include <algorithm>
#include <cmath>

#include "net/comm_model.hpp"
#include "support/assert.hpp"

namespace exa::apps::gamess {

std::vector<FragmentSite> make_cluster(std::size_t count, support::Rng& rng) {
  EXA_REQUIRE(count >= 1);
  // Fragments at roughly liquid-water density: edge scales with count^(1/3).
  const double edge = 3.1 * std::cbrt(static_cast<double>(count));
  std::vector<FragmentSite> sites(count);
  for (auto& s : sites) {
    s.x = rng.uniform(0.0, edge);
    s.y = rng.uniform(0.0, edge);
    s.z = rng.uniform(0.0, edge);
  }
  return sites;
}

std::vector<std::pair<std::size_t, std::size_t>> dimer_list(
    const std::vector<FragmentSite>& sites, double cutoff) {
  std::vector<std::pair<std::size_t, std::size_t>> dimers;
  const double rc2 = cutoff * cutoff;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const double dx = sites[i].x - sites[j].x;
      const double dy = sites[i].y - sites[j].y;
      const double dz = sites[i].z - sites[j].z;
      if (dx * dx + dy * dy + dz * dz < rc2) dimers.emplace_back(i, j);
    }
  }
  return dimers;
}

FmoWorkload make_workload(const std::vector<FragmentSite>& sites,
                          double cutoff) {
  FmoWorkload w;
  w.monomers = sites.size();
  w.dimers = dimer_list(sites, cutoff).size();
  return w;
}

double fmo_iteration_time(const arch::Machine& machine, int nodes,
                          const FmoWorkload& work, double fragment_seconds) {
  EXA_REQUIRE(nodes >= 1 && nodes <= machine.node_count);
  EXA_REQUIRE(fragment_seconds > 0.0);
  const int workers = nodes * std::max(1, machine.node.gpus_per_node);
  const double units = work.total_units();

  // Dynamic load balancing (GDDI): with far more tasks than workers the
  // imbalance tail is about half a task per worker.
  const double tasks_per_worker = units / workers;
  const double imbalance = tasks_per_worker > 1.0 ? 0.5 : 0.0;
  const double compute_s = (tasks_per_worker + imbalance) * fragment_seconds;

  // Coordination: monomer-density broadcast each iteration.
  net::CommModel comm(machine, std::max(1, machine.node.gpus_per_node));
  const double density_bytes = 2.0e6;  // fragment densities
  const double coord_s = comm.bcast(density_bytes, workers) +
                         comm.allreduce(8.0 * work.monomers, workers);
  return compute_s + coord_s;
}

}  // namespace exa::apps::gamess
