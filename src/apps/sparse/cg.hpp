#pragma once
/// \file cg.hpp
/// Sparse conjugate-gradient mini-app — the sixth service workload.
///
/// Ginkgo's CUDA→HIP porting testimonial (arxiv 2006.14290) made the
/// sparse-solver motif — CSR SpMV inside a Krylov loop — a first-class
/// readiness story alongside the paper's five applications. This module
/// implements that motif for real: a 27-point-stencil CSR matrix on a
/// structured grid (strictly diagonally dominant, hence SPD), a
/// deterministic parallel SpMV, and a plain CG solve whose iteration
/// counts feed the same DeviceSim/fabric pricing pattern the LAMMPS QEq
/// driver uses. Both halves are bitwise deterministic at any EXA_THREADS.

#include <cstdint>
#include <span>
#include <vector>

#include "arch/machine.hpp"
#include "net/fabric.hpp"

namespace exa::apps::sparse {

/// CSR symmetric positive-definite stencil matrix.
struct StencilMatrix {
  std::size_t n = 0;                 ///< rows (= grid points)
  std::vector<std::size_t> row_ptr;  ///< CSR row offsets, size n + 1
  std::vector<std::size_t> col;      ///< CSR column indices
  std::vector<double> val;           ///< CSR values

  /// Stored nonzeros.
  [[nodiscard]] std::size_t nnz() const { return col.size(); }
};

/// Builds the 27-point stencil operator on an nx × ny × nz grid:
/// every grid point couples to its full 3×3×3 neighborhood with weight
/// −1/‖offset‖², and the diagonal adds a unit dominance margin on top of
/// the absolute off-diagonal sum — strictly diagonally dominant and
/// symmetric, therefore SPD.
[[nodiscard]] StencilMatrix build_stencil_matrix(std::size_t nx,
                                                 std::size_t ny,
                                                 std::size_t nz);

/// y = A·x. Rows write disjoint outputs through a row-local accumulator,
/// so the parallel result is bitwise identical to the serial loop at any
/// EXA_THREADS.
void spmv(const StencilMatrix& a, std::span<const double> x,
          std::span<double> y);

/// Cost ledger of one CG solve (the quantities the perf model prices).
struct CgStats {
  int iterations = 0;              ///< loop trips
  std::uint64_t matrix_reads = 0;  ///< times the CSR arrays were streamed
  int allreduces = 0;              ///< dot-product reduction phases
  bool converged = false;          ///< hit tol before max_iter
};

/// What one CG solve produced.
struct CgResult {
  std::vector<double> x;  ///< the solution
  CgStats stats;          ///< solver cost ledger
};

/// Plain conjugate gradient on A·x = b from a zero initial guess.
/// Converges when ‖r‖ ≤ tol·‖b‖; stops (converged = false) at max_iter.
[[nodiscard]] CgResult cg_solve(const StencilMatrix& a,
                                std::span<const double> b, double tol,
                                int max_iter);

/// Simulated cost of one CG solve on `machine`: per matrix read, a device
/// CSR SpMV (priced via ml::spmv_profile through sim::kernel_timing) plus
/// a halo exchange of the direction vector; per reduction phase, one
/// fabric allreduce of the fused dot products. All times in seconds.
struct SolveModel {
  double spmv_s = 0.0;    ///< one device SpMV sweep
  double reduce_s = 0.0;  ///< one dot-product allreduce
  double halo_s = 0.0;    ///< one direction-vector halo exchange
  double total_s = 0.0;   ///< full solve wall time
  double fom = 0.0;       ///< DOF·iterations per second across the allocation
};

/// Prices `stats` on `machine` with `rows_per_rank` unknowns (27 stored
/// nonzeros each) on every rank. The default `fabric` config reduces to
/// the calibrated CommModel, keeping the model golden-stable.
[[nodiscard]] SolveModel solve_model(const arch::Machine& machine, int nodes,
                                     std::size_t rows_per_rank,
                                     const CgStats& stats,
                                     const net::FabricConfig& fabric = {});

}  // namespace exa::apps::sparse
