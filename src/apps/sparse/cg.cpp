#include "apps/sparse/cg.hpp"

#include <algorithm>
#include <cmath>

#include "mathlib/device_blas.hpp"
#include "net/fabric.hpp"
#include "sim/exec_model.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::apps::sparse {

StencilMatrix build_stencil_matrix(std::size_t nx, std::size_t ny,
                                   std::size_t nz) {
  EXA_REQUIRE_MSG(nx >= 1 && ny >= 1 && nz >= 1,
                  "stencil grid extents must be >= 1");
  const std::size_t n = nx * ny * nz;
  StencilMatrix a;
  a.n = n;
  a.row_ptr.assign(n + 1, 0);

  const auto index = [&](std::size_t x, std::size_t y, std::size_t z) {
    return (z * ny + y) * nx + x;
  };

  // Two passes: count row lengths, then fill. Interior rows carry the
  // full 27-point neighborhood; boundary rows truncate it.
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        std::size_t count = 0;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const auto cx = std::ptrdiff_t(x) + dx;
              const auto cy = std::ptrdiff_t(y) + dy;
              const auto cz = std::ptrdiff_t(z) + dz;
              if (cx < 0 || cy < 0 || cz < 0 || cx >= std::ptrdiff_t(nx) ||
                  cy >= std::ptrdiff_t(ny) || cz >= std::ptrdiff_t(nz)) {
                continue;
              }
              ++count;
            }
          }
        }
        a.row_ptr[index(x, y, z) + 1] = count;
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) a.row_ptr[r + 1] += a.row_ptr[r];
  a.col.resize(a.row_ptr[n]);
  a.val.resize(a.row_ptr[n]);

  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t row = index(x, y, z);
        std::size_t p = a.row_ptr[row];
        double offdiag_sum = 0.0;
        std::size_t diag_slot = 0;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const auto cx = std::ptrdiff_t(x) + dx;
              const auto cy = std::ptrdiff_t(y) + dy;
              const auto cz = std::ptrdiff_t(z) + dz;
              if (cx < 0 || cy < 0 || cz < 0 || cx >= std::ptrdiff_t(nx) ||
                  cy >= std::ptrdiff_t(ny) || cz >= std::ptrdiff_t(nz)) {
                continue;
              }
              const std::size_t c = index(std::size_t(cx), std::size_t(cy),
                                          std::size_t(cz));
              if (c == row) {
                diag_slot = p;  // value patched after the off-diagonal sum
                a.col[p] = c;
                a.val[p] = 0.0;
              } else {
                const double d2 = double(dx * dx + dy * dy + dz * dz);
                a.col[p] = c;
                a.val[p] = -1.0 / d2;
                offdiag_sum += 1.0 / d2;
              }
              ++p;
            }
          }
        }
        // Unit dominance margin: symmetric + strictly diagonally
        // dominant => SPD.
        a.val[diag_slot] = offdiag_sum + 1.0;
      }
    }
  }
  return a;
}

void spmv(const StencilMatrix& a, std::span<const double> x,
          std::span<double> y) {
  EXA_REQUIRE(x.size() >= a.n && y.size() >= a.n);
  support::ThreadPool::global().for_chunks(
      0, a.n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double acc = 0.0;
          for (std::size_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
            acc += a.val[p] * x[a.col[p]];
          }
          y[r] = acc;
        }
      },
      /*grain=*/256);
}

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return dot(a, a); }

}  // namespace

CgResult cg_solve(const StencilMatrix& a, std::span<const double> b,
                  double tol, int max_iter) {
  const std::size_t n = a.n;
  EXA_REQUIRE(b.size() >= n);
  CgResult result;
  result.x.assign(n, 0.0);
  CgStats& stats = result.stats;

  // Zero initial guess: r0 = b, no SpMV needed to form it.
  std::vector<double> r(b.begin(), b.begin() + std::ptrdiff_t(n));
  std::vector<double> p(r);
  std::vector<double> ap(n);
  double rr = norm2(r);
  const double threshold = tol * tol * std::max(norm2(b), 1e-300);
  ++stats.allreduces;  // ||b||, ||r0||

  while (stats.iterations < max_iter) {
    if (rr <= threshold) {
      stats.converged = true;
      break;
    }
    spmv(a, p, ap);
    ++stats.matrix_reads;
    const double pap = dot(p, ap);
    ++stats.allreduces;  // p.Ap
    EXA_REQUIRE_MSG(pap > 0.0, "stencil matrix is not positive definite");
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = norm2(r);
    ++stats.allreduces;  // r.r
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
    ++stats.iterations;
  }
  stats.converged = stats.converged || rr <= threshold;
  return result;
}

SolveModel solve_model(const arch::Machine& machine, int nodes,
                       std::size_t rows_per_rank, const CgStats& stats,
                       const net::FabricConfig& fabric_config) {
  EXA_REQUIRE_MSG(machine.node.has_gpu(),
                  "sparse_cg solve_model needs a GPU machine");
  EXA_REQUIRE(nodes >= 1 && rows_per_rank >= 1);
  const arch::GpuArch& gpu = *machine.node.gpu;
  const int ranks = nodes * machine.node.gpus_per_node;
  const net::Fabric comm(machine, machine.node.gpus_per_node, fabric_config);

  sim::LaunchConfig launch;
  launch.block_threads = 256;
  launch.blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(rows_per_rank) / 256);

  SolveModel model;
  const std::size_t nnz_per_rank = 27 * rows_per_rank;
  const sim::KernelProfile profile =
      ml::spmv_profile(gpu, rows_per_rank, nnz_per_rank, /*vectors=*/1);
  model.spmv_s = sim::kernel_timing(gpu, profile, launch).total_s;
  // Each reduction phase moves the CG dot products (two doubles).
  model.reduce_s = comm.allreduce(16.0, ranks);
  // Halo: one ghost face of the direction vector per neighbor, six faces
  // of a cubic rows_per_rank subdomain.
  const double face_points =
      std::cbrt(static_cast<double>(rows_per_rank));
  model.halo_s = comm.halo_exchange(face_points * face_points * 8.0, 6);

  model.total_s = static_cast<double>(stats.matrix_reads) * model.spmv_s +
                  static_cast<double>(stats.allreduces) * model.reduce_s +
                  static_cast<double>(stats.matrix_reads) * model.halo_s;
  model.fom = model.total_s > 0.0
                  ? static_cast<double>(rows_per_rank) * ranks *
                        std::max(1, stats.iterations) / model.total_s
                  : 0.0;
  return model;
}

}  // namespace exa::apps::sparse
