#pragma once
/// \file file_system.hpp
/// Deterministic virtual-time model of a striped parallel filesystem with
/// an optional node-local burst-buffer tier, plus Darshan-DXT-style
/// access records.
///
/// The model prices the storage path the paper's apps all share: N ranks
/// open a file each, stream their checkpoint/plotfile bytes, and close.
/// Mechanics mirror `net::Fabric`'s transport: every shared resource (one
/// OST, the metadata server, a node's NVMe absorb pipe, a node's drain
/// pipe) is a virtual-time *cursor* — an operation begins at
/// `max(start, cursor)`, occupies the resource for `bytes / bandwidth`
/// seconds, and advances the cursor. Two writers whose stripes land on
/// one OST therefore serialize against each other (fair-share
/// contention), which is exactly the co-scheduled-job interference story
/// `bench/io_scaling` gates.
///
/// Writes are striped round-robin over `stripe_count` OSTs in
/// `stripe_size_bytes` chunks starting at OST `file_id % ost_count`.
/// With a burst buffer configured, a write is absorbed by the writer's
/// node-local tier (completion = absorb completion) and drained to the
/// PFS in the background — immediately (write-through) or on `flush()`
/// (write-back); bytes that exceed the remaining capacity spill
/// synchronously to the PFS.
///
/// Like `RankSim`, schedules are issued by one driver thread; all methods
/// mutate cursor state and must be externally serialized. Every
/// operation appends a DXT-style `AccessRecord` and, when the tracer is
/// enabled, a Chrome span on lanes `io/ost<k>`, `io/bb<n>`, `io/mds`.
///
/// Units: all times seconds, all sizes bytes.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "io/io_model.hpp"

namespace exa::io {

/// Handle for an open simulated file (index into the file table).
struct FileHandle {
  int id = -1;  ///< file-table index; -1 means empty
  /// True when the handle refers to an opened file.
  [[nodiscard]] bool valid() const { return id >= 0; }
};

/// One Darshan-DXT-style access: which rank touched which extent of
/// which file on which backing resource, and when.
struct AccessRecord {
  enum class Op : std::uint8_t {
    kOpen,    ///< metadata-server open
    kWrite,   ///< extent landed directly on one OST
    kClose,   ///< metadata-server close
    kAbsorb,  ///< extent absorbed by the writer's node-local burst buffer
    kDrain,   ///< burst-buffer extent drained toward the PFS
  };
  Op op = Op::kWrite;
  int rank = 0;          ///< issuing rank (drains: the node's first rank)
  std::string file;      ///< file path as passed to open()
  int ost = -1;          ///< backing OST; -1 = burst buffer / metadata
  double offset = 0.0;   ///< file offset of the extent (bytes)
  double bytes = 0.0;    ///< extent length (bytes)
  double start_s = 0.0;  ///< operation begin (virtual seconds)
  double end_s = 0.0;    ///< operation end (virtual seconds)
};

[[nodiscard]] std::string to_string(AccessRecord::Op op);

/// Result of open(): the handle plus the virtual time the file is usable
/// (after the metadata server processed the open).
struct OpenResult {
  FileHandle handle;
  double ready_s = 0.0;
};

/// The storage model: per-OST / per-node virtual-time cursors plus byte
/// accounting. Deterministic — the same call sequence yields bit-equal
/// times regardless of host parallelism.
class FileSystem {
 public:
  /// Validates `config` (throws support::Error on out-of-range fields).
  explicit FileSystem(IoConfig config = {});

  [[nodiscard]] const IoConfig& config() const { return config_; }

  // --- per-rank file API -------------------------------------------------

  /// Opens `path` for `rank` at virtual time `start_s`, charging one
  /// metadata op. `stripe_count` overrides the config default (0 keeps
  /// it; the override is capped by ost_count at validation).
  OpenResult open(int rank, std::string path, double start_s,
                  int stripe_count = 0);
  /// Writes `bytes` at `offset` through the configured tiers; returns the
  /// virtual completion time (>= start_s). Zero-byte writes are free.
  double write(FileHandle handle, double offset, double bytes,
               double start_s);
  /// Closes the file (one metadata op); returns the completion time.
  double close(FileHandle handle, double start_s);

  // --- burst-buffer control ---------------------------------------------

  /// Schedules drains for `node`'s write-back backlog and waits for every
  /// pending drain of that node; returns when its buffer is empty.
  double flush(int node, double start_s);
  /// flush() over all nodes; returns when every buffered byte landed.
  double drain_all(double start_s);
  /// Retires drains that completed by `now_s` (updates the resident /
  /// landed ledgers without scheduling new work).
  void settle(double now_s);

  // --- accounting (the conservation ledger) -----------------------------

  /// Bytes accepted by write() so far.
  [[nodiscard]] double bytes_written() const { return bytes_written_; }
  /// Bytes that landed on OSTs (direct writes + retired drains).
  [[nodiscard]] double bytes_landed() const { return bytes_landed_; }
  /// Bytes absorbed by burst buffers and not yet retired.
  [[nodiscard]] double bytes_resident() const;
  /// Bytes landed on one OST.
  [[nodiscard]] double ost_bytes(int ost) const;
  /// Virtual time `ost`'s service queue is busy until.
  [[nodiscard]] double ost_busy_until(int ost) const;

  // --- DXT records -------------------------------------------------------

  /// Retained access records, in issue order (capped by
  /// config.max_records).
  [[nodiscard]] const std::vector<AccessRecord>& records() const {
    return records_;
  }
  /// Accesses priced but not retained once the cap was hit.
  [[nodiscard]] std::uint64_t records_dropped() const { return dropped_; }

 private:
  struct File {
    std::string path;
    int rank = 0;
    int first_ost = 0;
    int stripe_count = 1;
    bool open = false;
  };
  /// One scheduled background drain, retired when virtual time passes
  /// `end_s`.
  struct DrainEntry {
    int file = -1;
    double offset = 0.0;
    double bytes = 0.0;
    double end_s = 0.0;
  };
  /// A write-back extent absorbed but not yet scheduled for draining.
  struct BacklogEntry {
    int file = -1;
    double offset = 0.0;
    double bytes = 0.0;
    int rank = 0;
  };
  struct BurstBuffer {
    double absorb_until_s = 0.0;  ///< writer-facing NVMe cursor
    double drain_until_s = 0.0;   ///< background drain-pipe cursor
    double resident_bytes = 0.0;  ///< absorbed minus retired
    std::deque<DrainEntry> pending;    ///< scheduled, end_s ascending
    std::vector<BacklogEntry> backlog; ///< write-back, awaiting flush
  };

  /// Charges `bytes` at `offset` through the striped OST cursors; returns
  /// completion. Appends one kWrite record per touched OST.
  double pfs_write(int file_id, int rank, double offset, double bytes,
                   double start_s);
  /// One serialized metadata-server operation.
  double metadata_op(AccessRecord::Op op, int rank, int file_id,
                     double start_s);
  /// Credits a drained extent to its OSTs (ledger only, no cursor
  /// charge — the drain pipe already priced the transfer).
  void account_landing(int file_id, double offset, double bytes);
  /// Retires `node`'s pending drains completed by `now_s`.
  void retire(int node, double now_s);
  /// Moves `node`'s write-back backlog onto the drain pipe.
  void schedule_backlog(BurstBuffer& bb, int node, double start_s);
  [[nodiscard]] int ost_of(const File& file, std::uint64_t chunk) const;
  [[nodiscard]] int node_of_rank(int rank) const {
    return rank / config_.ranks_per_node;
  }
  BurstBuffer& buffer_of(int node);
  const File& checked_file(FileHandle handle, bool must_be_open) const;
  void record(AccessRecord rec);

  IoConfig config_;
  std::vector<File> files_;
  std::vector<double> ost_cursor_;  ///< per-OST busy-until (seconds)
  std::vector<double> ost_bytes_;   ///< per-OST landed bytes
  double mds_cursor_ = 0.0;         ///< metadata-server busy-until
  std::vector<BurstBuffer> buffers_;  ///< per node, grown on demand
  double bytes_written_ = 0.0;
  double bytes_landed_ = 0.0;
  std::vector<AccessRecord> records_;
  std::uint64_t dropped_ = 0;
  /// Scratch for per-OST aggregation inside one pfs_write call.
  std::vector<int> touched_;
};

}  // namespace exa::io
