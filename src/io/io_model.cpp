#include "io/io_model.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace exa::io {

namespace {

/// A bandwidth knob is valid when it is positive; +inf means "free".
bool valid_bandwidth(double bytes_per_s) {
  return bytes_per_s > 0.0 && !std::isnan(bytes_per_s);
}

/// True when the bandwidth adds no time (the quiet limit).
bool free_bandwidth(double bytes_per_s) {
  return std::isinf(bytes_per_s);
}

}  // namespace

std::string to_string(BurstBufferPolicy policy) {
  switch (policy) {
    case BurstBufferPolicy::kNone: return "none";
    case BurstBufferPolicy::kWriteThrough: return "write-through";
    case BurstBufferPolicy::kWriteBack: return "write-back";
  }
  return "?";
}

void IoConfig::validate() const {
  EXA_REQUIRE_MSG(pfs.ost_count >= 1, "IoConfig: ost_count must be >= 1");
  EXA_REQUIRE_MSG(pfs.stripe_count >= 1,
                  "IoConfig: stripe_count must be >= 1");
  EXA_REQUIRE_MSG(pfs.stripe_count <= pfs.ost_count,
                  "IoConfig: stripe_count must not exceed ost_count");
  EXA_REQUIRE_MSG(pfs.stripe_size_bytes > 0.0,
                  "IoConfig: stripe_size_bytes must be > 0");
  EXA_REQUIRE_MSG(valid_bandwidth(pfs.ost_bandwidth_bytes_per_s),
                  "IoConfig: ost_bandwidth_bytes_per_s must be > 0");
  EXA_REQUIRE_MSG(pfs.metadata_op_s >= 0.0 && !std::isnan(pfs.metadata_op_s),
                  "IoConfig: metadata_op_s must be >= 0");
  EXA_REQUIRE_MSG(ranks_per_node >= 1,
                  "IoConfig: ranks_per_node must be >= 1");
  EXA_REQUIRE_MSG(trace_ost_lanes >= 0, "IoConfig: trace_ost_lanes < 0");
  EXA_REQUIRE_MSG(trace_bb_lanes >= 0, "IoConfig: trace_bb_lanes < 0");
  if (burst_buffer.policy != BurstBufferPolicy::kNone) {
    EXA_REQUIRE_MSG(burst_buffer.capacity_bytes >= 0.0,
                    "IoConfig: burst-buffer capacity_bytes must be >= 0");
    EXA_REQUIRE_MSG(
        valid_bandwidth(burst_buffer.absorb_bandwidth_bytes_per_s),
        "IoConfig: absorb_bandwidth_bytes_per_s must be > 0");
    EXA_REQUIRE_MSG(valid_bandwidth(burst_buffer.drain_bandwidth_bytes_per_s),
                    "IoConfig: drain_bandwidth_bytes_per_s must be > 0");
  }
}

bool IoConfig::quiet() const {
  const bool pfs_quiet = free_bandwidth(pfs.ost_bandwidth_bytes_per_s) &&
                         pfs.metadata_op_s == 0.0;
  if (burst_buffer.policy == BurstBufferPolicy::kNone) return pfs_quiet;
  return pfs_quiet &&
         free_bandwidth(burst_buffer.absorb_bandwidth_bytes_per_s) &&
         free_bandwidth(burst_buffer.drain_bandwidth_bytes_per_s);
}

IoConfig IoConfig::quiet_config() { return IoConfig{}; }

IoConfig IoConfig::lustre() {
  IoConfig config;
  config.pfs.ost_count = 64;
  config.pfs.ost_bandwidth_bytes_per_s = 5.0e9;
  config.pfs.stripe_count = 4;
  config.pfs.stripe_size_bytes = 1.0 * 1024 * 1024;
  config.pfs.metadata_op_s = 50.0e-6;
  return config;
}

IoConfig IoConfig::lustre_with_burst_buffer() {
  IoConfig config = lustre();
  config.burst_buffer.policy = BurstBufferPolicy::kWriteThrough;
  config.burst_buffer.capacity_bytes = 1.5e12;
  config.burst_buffer.absorb_bandwidth_bytes_per_s = 5.0e9;
  config.burst_buffer.drain_bandwidth_bytes_per_s = 2.5e9;
  return config;
}

IoConfig IoConfig::preset(const std::string& name) {
  if (name == "quiet") return quiet_config();
  if (name == "lustre") return lustre();
  if (name == "bb") return lustre_with_burst_buffer();
  EXA_REQUIRE_MSG(false, "unknown io preset '" + name +
                             "' (expected quiet | lustre | bb)");
  return {};
}

}  // namespace exa::io
