#pragma once
/// \file io_model.hpp
/// Configuration of the storage model: a Lustre-like parallel filesystem
/// (OSTs, striping, per-OST bandwidth, metadata cost) plus an optional
/// node-local burst-buffer tier.
///
/// Every application in the paper checkpoints and writes analysis output
/// at scale (Pele plotfiles §3.8, GESTS field dumps §3.3, LAMMPS restart
/// dumps §3.10), yet the simulator priced compute (`exa::sim`) and the
/// network (`exa::net`) while treating storage as free. `IoConfig` is the
/// knob set `exa::io::FileSystem` prices those writes against.
///
/// **Quiet default (golden-gated):** a default-constructed `IoConfig` is
/// the *free* filesystem — infinite bandwidth everywhere and zero
/// metadata cost — so every operation completes at the virtual time it
/// started and adds exactly 0.0 seconds to any total. App drivers carry
/// an `IoConfig` member and all pre-existing golden baselines stay
/// bit-stable. `lustre()` / `lustre_with_burst_buffer()` are calibrated
/// non-trivial presets.
///
/// Units: all times seconds, all sizes bytes, all bandwidths bytes/s.

#include <limits>
#include <string>

namespace exa::io {

/// How the node-local burst-buffer tier (if any) completes writes.
enum class BurstBufferPolicy {
  kNone,          ///< no burst buffer: writes go straight to the PFS
  kWriteThrough,  ///< absorb locally, drain to the PFS immediately
  kWriteBack,     ///< absorb locally, drain only on flush()/drain_all()
};

[[nodiscard]] std::string to_string(BurstBufferPolicy policy);

/// The Lustre-like parallel-filesystem tier: `ost_count` object storage
/// targets each serving `ost_bandwidth_bytes_per_s`, files striped
/// round-robin over `stripe_count` OSTs in `stripe_size_bytes` chunks,
/// and one metadata server charging `metadata_op_s` per open/close.
struct PfsConfig {
  /// Object storage targets (count, >= 1).
  int ost_count = 8;
  /// Sustained write bandwidth of one OST (bytes/s; +inf = free).
  double ost_bandwidth_bytes_per_s = std::numeric_limits<double>::infinity();
  /// OSTs one file stripes over (count, >= 1, <= ost_count).
  int stripe_count = 4;
  /// Round-robin stripe chunk size (bytes, > 0).
  double stripe_size_bytes = 1.0 * 1024 * 1024;
  /// Metadata-server cost of one open or close, serialized through the
  /// single MDS (seconds, >= 0; 0 = free).
  double metadata_op_s = 0.0;
};

/// The node-local burst-buffer tier: per-node NVMe with its own absorb
/// bandwidth, finite capacity, and a background drain pipe to the PFS.
struct BurstBufferConfig {
  BurstBufferPolicy policy = BurstBufferPolicy::kNone;
  /// Usable capacity per node (bytes, >= 0). Writes that do not fit spill
  /// synchronously to the PFS.
  double capacity_bytes = 1.5e12;
  /// Writer-facing absorb bandwidth per node (bytes/s; +inf = free).
  double absorb_bandwidth_bytes_per_s =
      std::numeric_limits<double>::infinity();
  /// Background drain bandwidth per node toward the PFS (bytes/s;
  /// +inf = free).
  double drain_bandwidth_bytes_per_s =
      std::numeric_limits<double>::infinity();
};

/// Build-time configuration of one `FileSystem`.
struct IoConfig {
  PfsConfig pfs;
  BurstBufferConfig burst_buffer;
  /// Simulated ranks sharing one node (count, >= 1) — maps a writing rank
  /// to its node's burst buffer.
  int ranks_per_node = 8;
  /// OSTs that get their own Chrome trace lane ("io/ost<k>") when the
  /// tracer is enabled (count; first k OSTs).
  int trace_ost_lanes = 8;
  /// Nodes whose burst buffer gets a trace lane ("io/bb<n>") (count).
  int trace_bb_lanes = 4;
  /// Upper bound on retained DXT access records; further accesses are
  /// still priced but not recorded (count).
  std::size_t max_records = std::size_t{1} << 20;

  /// Throws support::Error when any field is out of its documented range
  /// (mirrors the CommModel ranks>=1 guards).
  void validate() const;

  /// True when every cost in the config is zero (infinite bandwidths,
  /// zero metadata): the filesystem adds no virtual time at all.
  [[nodiscard]] bool quiet() const;

  /// The free filesystem (same as default construction).
  [[nodiscard]] static IoConfig quiet_config();
  /// A calibrated Lustre-like tier: 64 OSTs x 5 GB/s, 4 x 1 MiB stripes,
  /// 50 us metadata ops.
  [[nodiscard]] static IoConfig lustre();
  /// `lustre()` plus a write-through node-local burst buffer (5 GB/s
  /// absorb, 2.5 GB/s background drain, 1.5 TB capacity).
  [[nodiscard]] static IoConfig lustre_with_burst_buffer();

  /// Parses a preset name ("quiet" | "lustre" | "bb"); throws
  /// support::Error on anything else. Backs the shared bench `--io=` flag.
  [[nodiscard]] static IoConfig preset(const std::string& name);
};

}  // namespace exa::io
