#include "io/file_system.hpp"

#include <algorithm>
#include <cmath>

#include "io/dxt.hpp"
#include "support/assert.hpp"
#include "trace/tracer.hpp"

namespace exa::io {

namespace {

/// Cursor charge on one shared resource: free resources (infinite
/// bandwidth / zero metadata cost) take zero time and skip the queue
/// entirely, so a quiet filesystem adds exactly 0.0 seconds no matter in
/// what order operations are issued.
struct Occupancy {
  double begin_s = 0.0;
  double end_s = 0.0;
};

Occupancy occupy(double& cursor_s, double start_s, double duration_s) {
  if (duration_s == 0.0) return {start_s, start_s};
  Occupancy occ;
  occ.begin_s = std::max(start_s, cursor_s);
  occ.end_s = occ.begin_s + duration_s;
  cursor_s = occ.end_s;
  return occ;
}

}  // namespace

std::string to_string(AccessRecord::Op op) {
  switch (op) {
    case AccessRecord::Op::kOpen: return "open";
    case AccessRecord::Op::kWrite: return "write";
    case AccessRecord::Op::kClose: return "close";
    case AccessRecord::Op::kAbsorb: return "absorb";
    case AccessRecord::Op::kDrain: return "drain";
  }
  return "?";
}

FileSystem::FileSystem(IoConfig config) : config_(config) {
  config_.validate();
  ost_cursor_.assign(static_cast<std::size_t>(config_.pfs.ost_count), 0.0);
  ost_bytes_.assign(static_cast<std::size_t>(config_.pfs.ost_count), 0.0);
}

OpenResult FileSystem::open(int rank, std::string path, double start_s,
                            int stripe_count) {
  EXA_REQUIRE_MSG(rank >= 0, "open: rank must be >= 0");
  EXA_REQUIRE_MSG(std::isfinite(start_s), "open: start time must be finite");
  if (stripe_count == 0) stripe_count = config_.pfs.stripe_count;
  EXA_REQUIRE_MSG(stripe_count >= 1 && stripe_count <= config_.pfs.ost_count,
                  "open: stripe_count must be in [1, ost_count]");
  File file;
  file.path = std::move(path);
  file.rank = rank;
  file.first_ost = static_cast<int>(files_.size()) % config_.pfs.ost_count;
  file.stripe_count = stripe_count;
  file.open = true;
  files_.push_back(std::move(file));
  const FileHandle handle{static_cast<int>(files_.size()) - 1};
  const double ready_s =
      metadata_op(AccessRecord::Op::kOpen, rank, handle.id, start_s);
  return {handle, ready_s};
}

double FileSystem::write(FileHandle handle, double offset, double bytes,
                         double start_s) {
  const File& file = checked_file(handle, true);
  EXA_REQUIRE_MSG(std::isfinite(offset) && offset >= 0.0,
                  "write: offset must be finite and >= 0");
  EXA_REQUIRE_MSG(std::isfinite(bytes) && bytes >= 0.0,
                  "write: bytes must be finite and >= 0");
  EXA_REQUIRE_MSG(std::isfinite(start_s), "write: start time must be finite");
  if (bytes == 0.0) return start_s;
  bytes_written_ += bytes;

  const BurstBufferConfig& bbc = config_.burst_buffer;
  if (bbc.policy == BurstBufferPolicy::kNone) {
    return pfs_write(handle.id, file.rank, offset, bytes, start_s);
  }

  const int node = node_of_rank(file.rank);
  BurstBuffer& bb = buffer_of(node);
  retire(node, start_s);
  const double available =
      std::max(0.0, bbc.capacity_bytes - bb.resident_bytes);
  const double absorbed = std::min(bytes, available);
  const double spilled = bytes - absorbed;
  double completion_s = start_s;

  if (absorbed > 0.0) {
    const Occupancy abs = occupy(bb.absorb_until_s, start_s,
                                 absorbed / bbc.absorb_bandwidth_bytes_per_s);
    bb.resident_bytes += absorbed;
    completion_s = std::max(completion_s, abs.end_s);
    record({AccessRecord::Op::kAbsorb, file.rank, file.path, -1, offset,
            absorbed, abs.begin_s, abs.end_s});
    if (bbc.policy == BurstBufferPolicy::kWriteThrough) {
      const Occupancy drain =
          occupy(bb.drain_until_s, abs.end_s,
                 absorbed / bbc.drain_bandwidth_bytes_per_s);
      bb.pending.push_back({handle.id, offset, absorbed, drain.end_s});
      record({AccessRecord::Op::kDrain, file.rank, file.path, -1, offset,
              absorbed, drain.begin_s, drain.end_s});
    } else {
      bb.backlog.push_back({handle.id, offset, absorbed, file.rank});
    }
  }
  if (spilled > 0.0) {
    // The overflow bypasses the full buffer and pays the PFS price
    // synchronously, concurrent with the absorb.
    completion_s = std::max(
        completion_s,
        pfs_write(handle.id, file.rank, offset + absorbed, spilled, start_s));
  }
  return completion_s;
}

double FileSystem::close(FileHandle handle, double start_s) {
  const File& file = checked_file(handle, true);
  EXA_REQUIRE_MSG(std::isfinite(start_s), "close: start time must be finite");
  files_[static_cast<std::size_t>(handle.id)].open = false;
  return metadata_op(AccessRecord::Op::kClose, file.rank, handle.id, start_s);
}

double FileSystem::flush(int node, double start_s) {
  EXA_REQUIRE_MSG(node >= 0, "flush: node must be >= 0");
  EXA_REQUIRE_MSG(std::isfinite(start_s), "flush: start time must be finite");
  if (static_cast<std::size_t>(node) >= buffers_.size()) return start_s;
  BurstBuffer& bb = buffers_[static_cast<std::size_t>(node)];
  retire(node, start_s);
  schedule_backlog(bb, node, start_s);
  const double end_s =
      bb.pending.empty() ? start_s : std::max(start_s, bb.pending.back().end_s);
  retire(node, end_s);
  return end_s;
}

double FileSystem::drain_all(double start_s) {
  double end_s = start_s;
  for (std::size_t node = 0; node < buffers_.size(); ++node) {
    end_s = std::max(end_s, flush(static_cast<int>(node), start_s));
  }
  return end_s;
}

void FileSystem::settle(double now_s) {
  for (std::size_t node = 0; node < buffers_.size(); ++node) {
    retire(static_cast<int>(node), now_s);
  }
}

double FileSystem::bytes_resident() const {
  double total = 0.0;
  for (const BurstBuffer& bb : buffers_) total += bb.resident_bytes;
  return total;
}

double FileSystem::ost_bytes(int ost) const {
  EXA_REQUIRE_MSG(ost >= 0 && ost < config_.pfs.ost_count,
                  "ost_bytes: ost out of range");
  return ost_bytes_[static_cast<std::size_t>(ost)];
}

double FileSystem::ost_busy_until(int ost) const {
  EXA_REQUIRE_MSG(ost >= 0 && ost < config_.pfs.ost_count,
                  "ost_busy_until: ost out of range");
  return ost_cursor_[static_cast<std::size_t>(ost)];
}

double FileSystem::pfs_write(int file_id, int rank, double offset,
                             double bytes, double start_s) {
  const File& file = files_[static_cast<std::size_t>(file_id)];
  const double stripe = config_.pfs.stripe_size_bytes;
  const double bw = config_.pfs.ost_bandwidth_bytes_per_s;

  /// Per-OST aggregation of this call's chunks into one DXT record each.
  struct Extent {
    int ost = -1;
    double offset = 0.0;
    double bytes = 0.0;
    double begin_s = 0.0;
    double end_s = 0.0;
  };
  std::vector<Extent> extents;
  extents.reserve(static_cast<std::size_t>(file.stripe_count));

  // Walk integer chunk indices rather than stepping the double cursor by
  // each chunk's size: with non-representable stripe sizes a fractional
  // chunk can round below one ulp of the cursor and stall it forever.
  // Pinning the cursor to exact chunk boundaries guarantees progress.
  double completion_s = start_s;
  double cursor = offset;
  double remaining = bytes;
  auto chunk_index = static_cast<std::uint64_t>(offset / stripe);
  while (remaining > 0.0) {
    const double chunk_end = static_cast<double>(chunk_index + 1) * stripe;
    const double chunk = std::min(remaining, std::max(0.0, chunk_end - cursor));
    if (chunk > 0.0) {
      const int ost = ost_of(file, chunk_index);
      const Occupancy occ =
          occupy(ost_cursor_[static_cast<std::size_t>(ost)], start_s,
                 chunk / bw);
      ost_bytes_[static_cast<std::size_t>(ost)] += chunk;
      bytes_landed_ += chunk;
      completion_s = std::max(completion_s, occ.end_s);

      auto it = std::find_if(extents.begin(), extents.end(),
                             [ost](const Extent& e) { return e.ost == ost; });
      if (it == extents.end()) {
        extents.push_back({ost, cursor, chunk, occ.begin_s, occ.end_s});
      } else {
        it->bytes += chunk;
        it->begin_s = std::min(it->begin_s, occ.begin_s);
        it->end_s = std::max(it->end_s, occ.end_s);
      }
      remaining -= chunk;
    }
    cursor = chunk_end;
    ++chunk_index;
  }
  for (const Extent& e : extents) {
    record({AccessRecord::Op::kWrite, rank, file.path, e.ost, e.offset,
            e.bytes, e.begin_s, e.end_s});
  }
  return completion_s;
}

double FileSystem::metadata_op(AccessRecord::Op op, int rank, int file_id,
                               double start_s) {
  const Occupancy occ =
      occupy(mds_cursor_, start_s, config_.pfs.metadata_op_s);
  record({op, rank, files_[static_cast<std::size_t>(file_id)].path, -1, 0.0,
          0.0, occ.begin_s, occ.end_s});
  return occ.end_s;
}

void FileSystem::account_landing(int file_id, double offset, double bytes) {
  const File& file = files_[static_cast<std::size_t>(file_id)];
  const double stripe = config_.pfs.stripe_size_bytes;
  // Same integer-index walk as pfs_write: never step the cursor by a
  // possibly sub-ulp fractional chunk.
  double cursor = offset;
  double remaining = bytes;
  auto chunk_index = static_cast<std::uint64_t>(offset / stripe);
  while (remaining > 0.0) {
    const double chunk_end = static_cast<double>(chunk_index + 1) * stripe;
    const double chunk = std::min(remaining, std::max(0.0, chunk_end - cursor));
    if (chunk > 0.0) {
      ost_bytes_[static_cast<std::size_t>(ost_of(file, chunk_index))] += chunk;
      remaining -= chunk;
    }
    cursor = chunk_end;
    ++chunk_index;
  }
  bytes_landed_ += bytes;
}

void FileSystem::retire(int node, double now_s) {
  if (static_cast<std::size_t>(node) >= buffers_.size()) return;
  BurstBuffer& bb = buffers_[static_cast<std::size_t>(node)];
  while (!bb.pending.empty() && bb.pending.front().end_s <= now_s) {
    const DrainEntry& entry = bb.pending.front();
    account_landing(entry.file, entry.offset, entry.bytes);
    bb.resident_bytes -= entry.bytes;
    bb.pending.pop_front();
  }
  // An empty buffer holds exactly nothing: the running +=/-= above can
  // leave a ±ulp residue (floating-point addition does not associate),
  // and the conservation ledger promises resident == 0.0 once every
  // absorbed byte has drained.
  if (bb.pending.empty() && bb.backlog.empty()) bb.resident_bytes = 0.0;
}

void FileSystem::schedule_backlog(BurstBuffer& bb, int node, double start_s) {
  (void)node;
  const BurstBufferConfig& bbc = config_.burst_buffer;
  for (const BacklogEntry& entry : bb.backlog) {
    const Occupancy drain = occupy(bb.drain_until_s, start_s,
                                   entry.bytes / bbc.drain_bandwidth_bytes_per_s);
    bb.pending.push_back({entry.file, entry.offset, entry.bytes, drain.end_s});
    record({AccessRecord::Op::kDrain, entry.rank,
            files_[static_cast<std::size_t>(entry.file)].path, -1,
            entry.offset, entry.bytes, drain.begin_s, drain.end_s});
  }
  bb.backlog.clear();
}

int FileSystem::ost_of(const File& file, std::uint64_t chunk) const {
  const auto within =
      static_cast<int>(chunk % static_cast<std::uint64_t>(file.stripe_count));
  return (file.first_ost + within) % config_.pfs.ost_count;
}

FileSystem::BurstBuffer& FileSystem::buffer_of(int node) {
  if (static_cast<std::size_t>(node) >= buffers_.size()) {
    buffers_.resize(static_cast<std::size_t>(node) + 1);
  }
  return buffers_[static_cast<std::size_t>(node)];
}

const FileSystem::File& FileSystem::checked_file(FileHandle handle,
                                                 bool must_be_open) const {
  EXA_REQUIRE_MSG(handle.valid() &&
                      static_cast<std::size_t>(handle.id) < files_.size(),
                  "invalid file handle");
  const File& file = files_[static_cast<std::size_t>(handle.id)];
  if (must_be_open) {
    EXA_REQUIRE_MSG(file.open, "file is not open: " + file.path);
  }
  return file;
}

void FileSystem::record(AccessRecord rec) {
  auto& tracer = trace::Tracer::instance();
  if (tracer.enabled()) {
    std::string track;
    switch (rec.op) {
      case AccessRecord::Op::kWrite:
        if (rec.ost >= 0 && rec.ost < config_.trace_ost_lanes) {
          track = "io/ost" + std::to_string(rec.ost);
        }
        break;
      case AccessRecord::Op::kAbsorb:
      case AccessRecord::Op::kDrain: {
        const int node = node_of_rank(rec.rank);
        if (node < config_.trace_bb_lanes) {
          track = "io/bb" + std::to_string(node);
        }
        break;
      }
      case AccessRecord::Op::kOpen:
      case AccessRecord::Op::kClose:
        track = "io/mds";
        break;
    }
    if (!track.empty()) {
      tracer.complete(to_string(rec.op) + "/r" + std::to_string(rec.rank),
                      track, rec.start_s, rec.end_s - rec.start_s, "io");
    }
  }
  DxtLog::instance().record(rec);
  if (records_.size() < config_.max_records) {
    records_.push_back(std::move(rec));
  } else {
    ++dropped_;
  }
}

}  // namespace exa::io
