#pragma once
/// \file checkpoint.hpp
/// Collective checkpoint helpers over `FileSystem`: the one storage
/// pattern every app in the paper shares — N ranks each open a
/// file-per-process, stream their state, and close.
///
/// Two forms: a free-standing one over explicit start times (what the
/// analytic app drivers use to price Pele plotfiles, GESTS field dumps
/// and LAMMPS restarts), and one coupled to `net::RankSim` — each rank's
/// write begins at its own virtual clock and the clock is advanced to the
/// I/O completion, so checkpoints compose with overlapped communication
/// schedules on the same per-rank timelines.
///
/// Units: all times seconds, all sizes bytes.

#include <string>

#include "io/file_system.hpp"
#include "net/rank_sim.hpp"

namespace exa::io {

/// Outcome of one collective checkpoint.
struct CheckpointStats {
  int ranks = 0;
  double bytes_per_rank = 0.0;
  double begin_s = 0.0;  ///< earliest rank's start (seconds)
  double end_s = 0.0;    ///< latest rank's close completion (seconds)
  /// Wall time of the collective from first start to last completion
  /// (seconds).
  [[nodiscard]] double makespan_s() const { return end_s - begin_s; }
};

/// Checkpoints `ranks` ranks of `bytes_per_rank` each through `fs`,
/// file-per-process under `path_prefix` ("<prefix>/r<rank>"), all
/// starting at `start_s`. Returns the collective outcome.
CheckpointStats checkpoint(FileSystem& fs, int ranks, double bytes_per_rank,
                           double start_s = 0.0,
                           const std::string& path_prefix = "ckpt");

/// RankSim-coupled form: rank r's open/write/close starts at
/// `sim.now(r)` and the rank's virtual clock is advanced to its close
/// completion.
CheckpointStats checkpoint(FileSystem& fs, net::RankSim& sim,
                           double bytes_per_rank,
                           const std::string& path_prefix = "ckpt");

/// Convenience: the wall time of one collective checkpoint on a fresh
/// filesystem built from `config`. Exactly 0.0 for a quiet config — the
/// guarantee the app drivers' golden-stable defaults rest on.
[[nodiscard]] double checkpoint_time(const IoConfig& config, int ranks,
                                     double bytes_per_rank);

}  // namespace exa::io
