#include "io/dxt.hpp"

#include <fstream>
#include <sstream>

#include "support/assert.hpp"
#include "trace/json.hpp"

namespace exa::io {

AccessRecord::Op op_from_string(const std::string& name) {
  if (name == "open") return AccessRecord::Op::kOpen;
  if (name == "write") return AccessRecord::Op::kWrite;
  if (name == "close") return AccessRecord::Op::kClose;
  if (name == "absorb") return AccessRecord::Op::kAbsorb;
  if (name == "drain") return AccessRecord::Op::kDrain;
  EXA_REQUIRE_MSG(false, "unknown DXT op '" + name + "'");
  return AccessRecord::Op::kWrite;
}

DxtLog& DxtLog::instance() {
  static DxtLog log;
  return log;
}

void DxtLog::enable() {
  clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void DxtLog::disable() { enabled_.store(false, std::memory_order_relaxed); }

void DxtLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

void DxtLog::record(const AccessRecord& rec) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(rec);
}

std::vector<AccessRecord> DxtLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t DxtLog::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::string dxt_jsonl_line(const AccessRecord& rec) {
  std::ostringstream line;
  line << "{\"module\":\"exa-io\",\"op\":\"" << to_string(rec.op)
       << "\",\"rank\":" << rec.rank << ",\"file\":\""
       << trace::json_escape(rec.file) << "\",\"ost\":" << rec.ost
       << ",\"offset\":" << trace::json_number(rec.offset)
       << ",\"length\":" << trace::json_number(rec.bytes)
       << ",\"start\":" << trace::json_number(rec.start_s)
       << ",\"end\":" << trace::json_number(rec.end_s) << "}";
  return line.str();
}

void write_dxt_jsonl(const std::string& path,
                     const std::vector<AccessRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  EXA_REQUIRE_MSG(out.good(), "cannot open DXT log for writing: " + path);
  for (const AccessRecord& rec : records) out << dxt_jsonl_line(rec) << '\n';
  out.flush();
  EXA_REQUIRE_MSG(out.good(), "failed writing DXT log: " + path);
}

std::vector<AccessRecord> load_dxt_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXA_REQUIRE_MSG(in.good(), "cannot open DXT log: " + path);
  std::vector<AccessRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const trace::JsonValue value = trace::json_parse(line);
      const auto number = [&](const char* key) {
        const trace::JsonValue* v = value.find(key);
        EXA_REQUIRE_MSG(v != nullptr && v->is_number(),
                        std::string("missing number field '") + key + "'");
        return v->as_number();
      };
      const trace::JsonValue* op = value.find("op");
      const trace::JsonValue* file = value.find("file");
      EXA_REQUIRE_MSG(op != nullptr && op->is_string(), "missing 'op'");
      EXA_REQUIRE_MSG(file != nullptr && file->is_string(), "missing 'file'");
      AccessRecord rec;
      rec.op = op_from_string(op->as_string());
      rec.rank = static_cast<int>(number("rank"));
      rec.file = file->as_string();
      rec.ost = static_cast<int>(number("ost"));
      rec.offset = number("offset");
      rec.bytes = number("length");
      rec.start_s = number("start");
      rec.end_s = number("end");
      records.push_back(std::move(rec));
    } catch (const support::Error& err) {
      throw support::Error("DXT log " + path + ":" +
                           std::to_string(line_no) + ": " + err.what());
    }
  }
  return records;
}

}  // namespace exa::io
