#include "io/checkpoint.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace exa::io {

namespace {

/// The phased collective: every rank opens, then every rank writes, then
/// every rank closes. Phasing matters because each shared cursor (the
/// MDS, the OSTs) is a FIFO in *issue* order — interleaving rank r's
/// close (at its write-completion time) before rank r+1's open (at the
/// collective start) would queue the open behind it and serialize the
/// whole collective. `start_of(rank)` gives each rank's start time.
template <typename StartFn>
CheckpointStats phased_checkpoint(FileSystem& fs, int ranks,
                                  double bytes_per_rank,
                                  const std::string& path_prefix,
                                  StartFn&& start_of,
                                  std::vector<double>* done_out = nullptr) {
  CheckpointStats stats;
  stats.ranks = ranks;
  stats.bytes_per_rank = bytes_per_rank;
  stats.begin_s = start_of(0);
  std::vector<OpenResult> opened(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    const double start_s = start_of(rank);
    stats.begin_s = std::min(stats.begin_s, start_s);
    opened[static_cast<std::size_t>(rank)] =
        fs.open(rank, path_prefix + "/r" + std::to_string(rank), start_s);
  }
  std::vector<double> written(static_cast<std::size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    const OpenResult& o = opened[static_cast<std::size_t>(rank)];
    written[static_cast<std::size_t>(rank)] =
        fs.write(o.handle, 0.0, bytes_per_rank, o.ready_s);
  }
  stats.end_s = stats.begin_s;
  if (done_out) done_out->assign(static_cast<std::size_t>(ranks), 0.0);
  for (int rank = 0; rank < ranks; ++rank) {
    const double done_s =
        fs.close(opened[static_cast<std::size_t>(rank)].handle,
                 written[static_cast<std::size_t>(rank)]);
    if (done_out) (*done_out)[static_cast<std::size_t>(rank)] = done_s;
    stats.end_s = std::max(stats.end_s, done_s);
  }
  return stats;
}

}  // namespace

CheckpointStats checkpoint(FileSystem& fs, int ranks, double bytes_per_rank,
                           double start_s, const std::string& path_prefix) {
  EXA_REQUIRE_MSG(ranks >= 1, "checkpoint: ranks must be >= 1");
  EXA_REQUIRE_MSG(bytes_per_rank >= 0.0,
                  "checkpoint: bytes_per_rank must be >= 0");
  return phased_checkpoint(fs, ranks, bytes_per_rank, path_prefix,
                           [start_s](int) { return start_s; });
}

CheckpointStats checkpoint(FileSystem& fs, net::RankSim& sim,
                           double bytes_per_rank,
                           const std::string& path_prefix) {
  EXA_REQUIRE_MSG(bytes_per_rank >= 0.0,
                  "checkpoint: bytes_per_rank must be >= 0");
  std::vector<double> done;
  const CheckpointStats stats = phased_checkpoint(
      fs, sim.ranks(), bytes_per_rank, path_prefix,
      [&sim](int rank) { return sim.now(rank); }, &done);
  for (int rank = 0; rank < sim.ranks(); ++rank) {
    sim.advance_to(rank, done[static_cast<std::size_t>(rank)]);
  }
  return stats;
}

double checkpoint_time(const IoConfig& config, int ranks,
                       double bytes_per_rank) {
  FileSystem fs(config);
  return checkpoint(fs, ranks, bytes_per_rank).end_s;
}

}  // namespace exa::io
