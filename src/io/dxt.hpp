#pragma once
/// \file dxt.hpp
/// Darshan-DXT-style I/O trace capture and JSONL round-trip.
///
/// Darshan's DXT module records one row per POSIX access — rank, file,
/// offset, length, start/end timestamps — and the bbThemis-style
/// conflict analyses consume exactly those rows. We mirror that shape:
/// every `FileSystem` operation is an `AccessRecord`, the process-global
/// `DxtLog` collects them across all filesystems of a run (the capture
/// side of the shared bench `--io-trace=<path>` flag), and
/// `write_dxt_jsonl` / `load_dxt_jsonl` round-trip them as JsonLines:
///
///     {"module":"exa-io","op":"write","rank":3,"file":"ckpt/r3",
///      "ost":12,"offset":0,"length":1048576,"start":0.001,"end":0.0015}
///
/// Like the Tracer/Profiler singletons, recording is a single relaxed
/// atomic load while disabled, so `FileSystem` forwards unconditionally.

#include <string>
#include <vector>
#include <atomic>
#include <mutex>

#include "io/file_system.hpp"

namespace exa::io {

/// Parses an op name emitted by `to_string(AccessRecord::Op)`; throws
/// support::Error on anything else.
[[nodiscard]] AccessRecord::Op op_from_string(const std::string& name);

/// Process-global DXT record sink (capture side of `--io-trace`).
class DxtLog {
 public:
  static DxtLog& instance();

  /// Starts capture (clears any previous records).
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Appends one record; no-op while disabled.
  void record(const AccessRecord& rec);

  /// All records captured since enable(), in issue order.
  [[nodiscard]] std::vector<AccessRecord> snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  DxtLog() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<AccessRecord> records_;
};

/// One JSONL line for a record (no trailing newline).
[[nodiscard]] std::string dxt_jsonl_line(const AccessRecord& rec);

/// Writes records as a DXT JSONL file; throws support::Error on I/O
/// failure.
void write_dxt_jsonl(const std::string& path,
                     const std::vector<AccessRecord>& records);

/// Loads a DXT JSONL file back; blank lines are skipped; malformed lines
/// throw support::Error naming the line number.
[[nodiscard]] std::vector<AccessRecord> load_dxt_jsonl(
    const std::string& path);

}  // namespace exa::io
