#pragma once
/// \file parallel.hpp
/// Kokkos-style parallel dispatch over the simulated device runtime.
///
/// parallel_for / parallel_reduce execute the functor for real on host
/// threads and charge one simulated kernel launch on the current HIP
/// device, with a cost profile derived from a per-work-item estimate.
/// This is how the portability-framework mini-apps (E3SM §3.5, LAMMPS
/// Kokkos backend §3.10) drive the performance model without writing raw
/// hip::Kernel plumbing.

#include <functional>
#include <string>

#include "hip/hip_runtime.hpp"
#include "pfw/view.hpp"
#include "sim/kernel_profile.hpp"

namespace exa::pfw {

/// Per-work-item cost estimate for the launch profile.
struct WorkCost {
  double flops = 10.0;
  double bytes_read = 16.0;
  double bytes_written = 8.0;
  int registers = 48;
  /// Convergent-run length (0 = fully convergent); see KernelProfile.
  double coherent_run_length = 0.0;
};

/// Executes body(i) for i in [0, n) on host threads and charges one
/// simulated kernel launch named `label`.
void parallel_for(const std::string& label, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  const WorkCost& cost = {});

/// Sum-reduction: returns sum over i of body(i); charges a launch with a
/// reduction-shaped profile.
[[nodiscard]] double parallel_reduce(const std::string& label, std::size_t n,
                                     const std::function<double(std::size_t)>& body,
                                     const WorkCost& cost = {});

/// Device fence (hipDeviceSynchronize).
void fence();

/// Virtual seconds charged by pfw dispatches since runtime configuration
/// (reads the current device's kernel-busy counter).
[[nodiscard]] double device_busy_seconds();

/// Allocates a device-resident view, charging the current device's
/// allocation path (direct hipMalloc-style latency, or the pool when the
/// device is in pooled mode — the YAKL allocator story).
template <typename T>
[[nodiscard]] View<T> create_device_view(const std::string& label,
                                         std::size_t n0, std::size_t n1 = 1,
                                         std::size_t n2 = 1,
                                         std::size_t n3 = 1) {
  auto& dev = hip::Runtime::instance().current_device();
  // Charge the allocation through the device's memory manager and release
  // it immediately: the view's own buffer is host-backed (shared_ptr),
  // while capacity/latency accounting lives in the device model.
  void* charge = dev.malloc_device(sizeof(T) * n0 * n1 * n2 * n3);
  dev.free_device(charge);
  return View<T>(label, n0, n1, n2, n3, MemSpace::kDevice);
}

}  // namespace exa::pfw
