#pragma once
/// \file parallel.hpp
/// Kokkos-style parallel dispatch over the simulated device runtime.
///
/// parallel_for / parallel_reduce execute the functor for real on host
/// threads and charge one simulated kernel launch on the current HIP
/// device, with a cost profile derived from a per-work-item estimate.
/// This is how the portability-framework mini-apps (E3SM §3.5, LAMMPS
/// Kokkos backend §3.10) drive the performance model without writing raw
/// hip::Kernel plumbing.
///
/// The dispatchers are header templates: the body inlines into the
/// ThreadPool chunk loop (support::ThreadPool::for_each /for_chunks)
/// instead of paying a std::function call per index, and each label keeps
/// a cached, interned launch state (KernelProfile + LaunchConfig) that is
/// only rebuilt when (n, cost) change — so a steady-state launch performs
/// no heap allocation. The exec-model cost itself is memoized inside
/// DeviceSim (see device_sim.hpp), completing the fast path.
///
/// parallel_reduce combines fixed-boundary chunk partials in chunk order:
/// chunk boundaries depend only on n, never on the pool size, so sums are
/// bitwise identical across runs and thread counts (no mutex, no atomics).

#include <cstddef>
#include <string_view>

#include "hip/hip_runtime.hpp"
#include "pfw/view.hpp"
#include "sim/exec_model.hpp"
#include "sim/kernel_profile.hpp"
#include "support/reduce.hpp"
#include "support/thread_pool.hpp"

namespace exa::pfw {

/// Per-work-item cost estimate for the launch profile.
struct WorkCost {
  double flops = 10.0;
  double bytes_read = 16.0;
  double bytes_written = 8.0;
  int registers = 48;
  /// Convergent-run length (0 = fully convergent); see KernelProfile.
  double coherent_run_length = 0.0;

  friend bool operator==(const WorkCost&, const WorkCost&) = default;
};

namespace detail {

/// Cached launch description for one dispatch label: a reusable
/// KernelProfile (name interned once) plus the derived LaunchConfig,
/// rebuilt only when the range length or cost estimate changes. Not
/// thread-safe per state — pfw dispatch, like the device runtime it
/// drives, is single-threaded per device.
struct LaunchState {
  sim::KernelProfile profile;
  sim::LaunchConfig cfg;
  std::size_t n = static_cast<std::size_t>(-1);
  WorkCost cost;
  bool reduce_shaped = false;
  /// Timing computed by the last launch of this (unchanged) profile, valid
  /// while cost_epoch matches the device's (0 = never computed; real
  /// epochs start at 1). Steady-state launches replay it without touching
  /// the exec model.
  sim::KernelTiming timing;
  std::uint64_t cost_epoch = 0;
};

/// Returns the process-wide launch state for `label` (creating it on first
/// use). Reduce-shaped states add the per-block-partials traffic to the
/// profile, so they are cached separately from plain for-states.
[[nodiscard]] LaunchState& launch_state(std::string_view label,
                                        bool reduce_shaped);

/// Rebuilds the profile/config for (n, cost) when they differ from the
/// cached values; no-op (and no allocation) on the steady state.
void refresh(LaunchState& state, std::size_t n, const WorkCost& cost);

/// Charges one simulated launch of the cached profile on the current
/// device, replaying the cached timing when the device epoch still
/// matches; aborts on launch failure.
void launch(LaunchState& state);

/// Marks the host-side dispatch window of a pfw launch on the "pfw" track
/// (the kernel itself is traced by DeviceSim on its stream track), and
/// labels exa::check diagnostics with the dispatch label while it lives.
/// No-op unless tracing or the checker is enabled.
class DispatchSpan {
 public:
  explicit DispatchSpan(const std::string& label);
  ~DispatchSpan();

  DispatchSpan(const DispatchSpan&) = delete;
  DispatchSpan& operator=(const DispatchSpan&) = delete;

 private:
  const std::string* label_ = nullptr;
  double sim_begin_ = 0.0;
  bool site_pushed_ = false;
};

/// Deterministic chunk-ordered reduction, hoisted to the support layer
/// (support/reduce.hpp) so net::Fabric's phase engine shares the exact
/// combination order; re-exported here for existing pfw call sites.
using support::deterministic_reduce;
using support::kReduceSlots;
using support::reduce_grain;

}  // namespace detail

/// Executes body(i) for i in [0, n) on host threads and charges one
/// simulated kernel launch named `label`.
template <typename Body>
void parallel_for(std::string_view label, std::size_t n, Body&& body,
                  const WorkCost& cost = {}) {
  if (n == 0) return;
  detail::LaunchState& state = detail::launch_state(label, false);
  detail::refresh(state, n, cost);
  const detail::DispatchSpan span(state.profile.name);
  detail::launch(state);
  support::ThreadPool::global().for_each(0, n, body);
}

/// Chunked variant: body(chunk_begin, chunk_end) per pool slice, for
/// bodies whose inner loop vectorizes or that carry per-chunk scratch.
template <typename ChunkBody>
void parallel_for_chunks(std::string_view label, std::size_t n,
                         ChunkBody&& body, const WorkCost& cost = {}) {
  if (n == 0) return;
  detail::LaunchState& state = detail::launch_state(label, false);
  detail::refresh(state, n, cost);
  const detail::DispatchSpan span(state.profile.name);
  detail::launch(state);
  support::ThreadPool::global().for_chunks(0, n, body);
}

/// Sum-reduction: returns sum over i of body(i); charges a launch with a
/// reduction-shaped profile. Bitwise deterministic across runs and pool
/// sizes (see detail::deterministic_reduce).
template <typename Body>
[[nodiscard]] double parallel_reduce(std::string_view label, std::size_t n,
                                     Body&& body, const WorkCost& cost = {}) {
  if (n == 0) return 0.0;
  detail::LaunchState& state = detail::launch_state(label, true);
  detail::refresh(state, n, cost);
  const detail::DispatchSpan span(state.profile.name);
  detail::launch(state);
  return detail::deterministic_reduce(
      support::ThreadPool::global(), n, [&body](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        for (std::size_t i = lo; i < hi; ++i) partial += body(i);
        return partial;
      });
}

/// Reduction over chunks: chunk_body(chunk_begin, chunk_end) returns the
/// chunk's partial sum, letting vectorizable inner loops run without a
/// per-index call. Same deterministic combination as parallel_reduce.
template <typename ChunkBody>
[[nodiscard]] double parallel_reduce_chunks(std::string_view label,
                                            std::size_t n, ChunkBody&& body,
                                            const WorkCost& cost = {}) {
  if (n == 0) return 0.0;
  detail::LaunchState& state = detail::launch_state(label, true);
  detail::refresh(state, n, cost);
  const detail::DispatchSpan span(state.profile.name);
  detail::launch(state);
  return detail::deterministic_reduce(support::ThreadPool::global(), n, body);
}

/// Charges one simulated launch named `label` with no functional work —
/// the pure launch fast path, used by benches measuring launch throughput
/// and by timing-only call sites.
void charge_launch(std::string_view label, std::size_t n,
                   const WorkCost& cost = {});

/// Device fence (hipDeviceSynchronize).
void fence();

/// Virtual seconds charged by pfw dispatches since runtime configuration
/// (reads the current device's kernel-busy counter).
[[nodiscard]] double device_busy_seconds();

/// Allocates a device-resident view, charging the current device's
/// allocation path (direct hipMalloc-style latency, or the pool when the
/// device is in pooled mode — the YAKL allocator story).
template <typename T>
[[nodiscard]] View<T> create_device_view(const std::string& label,
                                         std::size_t n0, std::size_t n1 = 1,
                                         std::size_t n2 = 1,
                                         std::size_t n3 = 1) {
  auto& dev = hip::Runtime::instance().current_device();
  // Charge the allocate+free pair through the device's memory manager in
  // one accounting call: the view's own buffer is host-backed
  // (shared_ptr), so only latency/capacity accounting lives in the device
  // model — and pooled-mode usage tracking cannot transiently spike.
  dev.charge_transient_alloc(sizeof(T) * n0 * n1 * n2 * n3);
  return View<T>(label, n0, n1, n2, n3, MemSpace::kDevice);
}

}  // namespace exa::pfw
