#pragma once
/// \file view.hpp
/// Multi-dimensional array views for the portability frameworks (pfw).
///
/// §3.5 describes E3SM-MMF using *two* C++ portability libraries — Kokkos
/// for the cloud micro/macrophysics and YAKL for the dycore — glued by "an
/// interoperation layer ... that allows an intermediate representation of
/// multi-dimensional array objects". This module provides that trio:
/// a Kokkos-flavored view, a YAKL-flavored array, and the intermediate
/// representation both can convert through without copying.

#include <array>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>

#include "check/checker.hpp"
#include "support/assert.hpp"

namespace exa::pfw {

/// Memory space of a view. Host data lives on the heap; device data lives
/// in a (host-backed) allocation charged against the simulated GPU.
enum class MemSpace { kHost, kDevice };

/// The neutral intermediate representation: shape + strides + a shared
/// buffer. Both frameworks construct from and expose this — the §3.5
/// interop layer.
template <typename T>
struct ArrayIR {
  std::shared_ptr<T[]> data;
  std::array<std::size_t, 4> extents{1, 1, 1, 1};
  int rank = 0;
  MemSpace space = MemSpace::kHost;
  std::string label;

  [[nodiscard]] std::size_t size() const {
    return std::accumulate(extents.begin(), extents.end(), std::size_t{1},
                           std::multiplies<>());
  }
};

/// Kokkos-flavored view: rank fixed at construction, layout-right
/// (row-major, C style), reference-counted.
template <typename T>
class View {
 public:
  View() = default;

  explicit View(std::string label, std::size_t n0, std::size_t n1 = 1,
                std::size_t n2 = 1, std::size_t n3 = 1,
                MemSpace space = MemSpace::kHost)
      : ir_{nullptr, {n0, n1, n2, n3},
            n3 > 1 ? 4 : (n2 > 1 ? 3 : (n1 > 1 ? 2 : 1)), space,
            std::move(label)} {
    EXA_REQUIRE(n0 >= 1 && n1 >= 1 && n2 >= 1 && n3 >= 1);
    ir_.data = std::shared_ptr<T[]>(new T[ir_.size()]());
  }

  /// Wraps an intermediate representation without copying (the interop
  /// path: a YAKL array viewed as Kokkos).
  explicit View(ArrayIR<T> ir) : ir_(std::move(ir)) {
    EXA_REQUIRE_MSG(ir_.data != nullptr, "cannot view a null ArrayIR");
  }

  [[nodiscard]] const std::string& label() const { return ir_.label; }
  [[nodiscard]] int rank() const { return ir_.rank; }
  [[nodiscard]] std::size_t extent(int dim) const {
    EXA_REQUIRE(dim >= 0 && dim < 4);
    return ir_.extents[static_cast<std::size_t>(dim)];
  }
  [[nodiscard]] std::size_t size() const { return ir_.size(); }
  [[nodiscard]] MemSpace space() const { return ir_.space; }
  [[nodiscard]] T* data() const { return ir_.data.get(); }
  [[nodiscard]] long use_count() const { return ir_.data.use_count(); }

  // Layout-right indexing.
  T& operator()(std::size_t i) const { return at(i, 0, 0, 0); }
  T& operator()(std::size_t i, std::size_t j) const { return at(i, j, 0, 0); }
  T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return at(i, j, k, 0);
  }
  T& operator()(std::size_t i, std::size_t j, std::size_t k,
                std::size_t l) const {
    return at(i, j, k, l);
  }

  /// Exposes the intermediate representation (shares, never copies).
  [[nodiscard]] ArrayIR<T> to_ir() const { return ir_; }

 private:
  T& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    EXA_ASSERT(i < ir_.extents[0] && j < ir_.extents[1] &&
               k < ir_.extents[2] && l < ir_.extents[3]);
    const auto& e = ir_.extents;
    return ir_.data[((i * e[1] + j) * e[2] + k) * e[3] + l];
  }

  ArrayIR<T> ir_;
};

/// YAKL-flavored array: same storage model, Fortran-ish conveniences
/// (create-from-ir, deep_copy), allocations optionally drawn from the
/// framework's device pool (see runtime.hpp).
template <typename T>
class Array {
 public:
  Array() = default;

  explicit Array(std::string label, std::size_t n0, std::size_t n1 = 1,
                 std::size_t n2 = 1, std::size_t n3 = 1,
                 MemSpace space = MemSpace::kHost)
      : view_(std::move(label), n0, n1, n2, n3, space) {}

  explicit Array(ArrayIR<T> ir) : view_(std::move(ir)) {}

  [[nodiscard]] const std::string& label() const { return view_.label(); }
  [[nodiscard]] int rank() const { return view_.rank(); }
  [[nodiscard]] std::size_t extent(int dim) const { return view_.extent(dim); }
  [[nodiscard]] std::size_t size() const { return view_.size(); }
  [[nodiscard]] T* data() const { return view_.data(); }

  template <typename... Idx>
  T& operator()(Idx... idx) const {
    return view_(static_cast<std::size_t>(idx)...);
  }

  [[nodiscard]] ArrayIR<T> to_ir() const { return view_.to_ir(); }

 private:
  View<T> view_;
};

/// Element-wise copy between any two same-shape views/arrays (host side;
/// device transfer accounting is the runtime's job). When the exa::check
/// validator is armed, both sides are annotated as host accesses, so a
/// deep_copy touching a buffer an in-flight async copy still owns is
/// diagnosed.
template <typename Src, typename Dst>
void deep_copy(const Src& src, const Dst& dst) {
  EXA_REQUIRE_MSG(src.size() == dst.size(), "deep_copy shape mismatch");
  auto sir = src.to_ir();
  auto dir = dst.to_ir();
  if (check::Checker::armed()) {
    check::annotate_host_read(sir.data.get(),
                              sir.size() * sizeof(*sir.data.get()),
                              "pfw::deep_copy");
    check::annotate_host_write(dir.data.get(),
                               dir.size() * sizeof(*dir.data.get()),
                               "pfw::deep_copy");
  }
  std::copy(sir.data.get(), sir.data.get() + sir.size(), dir.data.get());
}

}  // namespace exa::pfw
