#include "pfw/parallel.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "check/checker.hpp"
#include "support/assert.hpp"
#include "trace/tracer.hpp"

namespace exa::pfw {

namespace detail {

namespace {
/// The tracer singleton, bound once at static-init time so the per-dispatch
/// enabled() check skips the function-local-static guard in instance().
trace::Tracer& g_tracer = trace::Tracer::instance();
}  // namespace

LaunchState& launch_state(std::string_view label, bool reduce_shaped) {
  // Registries keyed by a string_view into the interned label, which is
  // stable for the process lifetime. For-states and reduce-states cache
  // separately (their profiles differ). Lookup is locked; the returned
  // state itself follows the runtime's single-threaded dispatch model.
  static std::mutex mutex;
  static std::unordered_map<std::string_view, std::unique_ptr<LaunchState>>
      registries[2];
  // One-entry front cache per thread: tight relaunch loops (one label
  // launched repeatedly) skip the lock + hash with a content compare.
  static thread_local LaunchState* last[2] = {nullptr, nullptr};
  LaunchState*& cached = last[reduce_shaped ? 1 : 0];
  if (cached != nullptr && cached->profile.name == label) return *cached;
  auto& registry = registries[reduce_shaped ? 1 : 0];
  const std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = registry.find(label); it != registry.end()) {
    cached = it->second.get();
    return *cached;
  }
  auto state = std::make_unique<LaunchState>();
  const std::string& name = sim::interned_label(label);
  state->profile.name = name;
  state->reduce_shaped = reduce_shaped;
  LaunchState* stable = state.get();
  registry.emplace(std::string_view(name), std::move(state));
  cached = stable;
  return *stable;
}

void refresh(LaunchState& state, std::size_t n, const WorkCost& cost) {
  if (state.n == n && state.cost == cost) return;
  state.n = n;
  state.cost = cost;
  state.cost_epoch = 0;  // profile content changes below
  sim::KernelProfile& p = state.profile;
  const double dn = static_cast<double>(n);
  p.work.clear();
  p.add_flops(arch::DType::kF64, cost.flops * dn);
  p.bytes_read = cost.bytes_read * dn;
  p.bytes_written = cost.bytes_written * dn;
  if (state.reduce_shaped) p.bytes_written += 4096.0;  // per-block partials
  p.registers_per_thread = cost.registers;
  p.coherent_run_length = cost.coherent_run_length;
  state.cfg.block_threads = 256;
  state.cfg.blocks = std::max<std::uint64_t>(1, (n + 255) / 256);
}

void launch(LaunchState& state) {
  // Steady state: profile unchanged (refresh would have zeroed the epoch),
  // same device instance + tuning — the cached timing replays without
  // touching the exec model; otherwise it is recomputed and recached.
  const hip::hipError_t err = hip::hipLaunchCachedEXA(
      state.profile, state.cfg, &state.timing, &state.cost_epoch);
  EXA_REQUIRE(err == hip::hipSuccess);
}

DispatchSpan::DispatchSpan(const std::string& label) {
  if (check::Checker::armed()) {
    check::Checker::instance().push_site(label);
    site_pushed_ = true;
  }
  if (!g_tracer.enabled()) return;
  label_ = &label;
  sim_begin_ = hip::Runtime::instance().current_device().host_now();
}

DispatchSpan::~DispatchSpan() {
  if (site_pushed_) check::Checker::instance().pop_site();
  if (label_ == nullptr) return;
  auto& dev = hip::Runtime::instance().current_device();
  g_tracer.complete(*label_, "pfw", sim_begin_, dev.host_now() - sim_begin_,
                    "pfw");
}

}  // namespace detail

void charge_launch(std::string_view label, std::size_t n,
                   const WorkCost& cost) {
  if (n == 0) return;
  detail::LaunchState& state = detail::launch_state(label, false);
  detail::refresh(state, n, cost);
  const detail::DispatchSpan span(state.profile.name);
  detail::launch(state);
}

void fence() { (void)hip::hipDeviceSynchronize(); }

double device_busy_seconds() {
  return hip::Runtime::instance().current_device().counters().kernel_busy_s;
}

}  // namespace exa::pfw
