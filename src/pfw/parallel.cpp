#include "pfw/parallel.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"
#include "trace/tracer.hpp"

namespace exa::pfw {

namespace {

/// Marks the host-side dispatch window of a pfw launch on the "pfw"
/// track (the kernel itself is traced by DeviceSim on its stream track).
class DispatchSpan {
 public:
  explicit DispatchSpan(const std::string& label) {
    if (!trace::Tracer::instance().enabled()) return;
    label_ = &label;
    sim_begin_ = hip::Runtime::instance().current_device().host_now();
  }
  ~DispatchSpan() {
    if (label_ == nullptr) return;
    auto& dev = hip::Runtime::instance().current_device();
    trace::Tracer::instance().complete(*label_, "pfw", sim_begin_,
                                       dev.host_now() - sim_begin_, "pfw");
  }

 private:
  const std::string* label_ = nullptr;
  double sim_begin_ = 0.0;
};

sim::KernelProfile make_profile(const std::string& label, std::size_t n,
                                const WorkCost& cost) {
  sim::KernelProfile p;
  p.name = label;
  const double dn = static_cast<double>(n);
  p.add_flops(arch::DType::kF64, cost.flops * dn);
  p.bytes_read = cost.bytes_read * dn;
  p.bytes_written = cost.bytes_written * dn;
  p.registers_per_thread = cost.registers;
  p.coherent_run_length = cost.coherent_run_length;
  return p;
}

sim::LaunchConfig make_launch(std::size_t n) {
  sim::LaunchConfig cfg;
  cfg.block_threads = 256;
  cfg.blocks = std::max<std::uint64_t>(1, (n + 255) / 256);
  return cfg;
}

}  // namespace

void parallel_for(const std::string& label, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  const WorkCost& cost) {
  if (n == 0) return;
  const DispatchSpan span(label);
  hip::Kernel k;
  k.profile = make_profile(label, n, cost);
  k.bulk_body = [n, &body] {
    support::ThreadPool::global().parallel_for(0, n, body);
  };
  const hip::hipError_t err = hip::hipLaunchKernelEXA(k, make_launch(n));
  EXA_REQUIRE(err == hip::hipSuccess);
}

double parallel_reduce(const std::string& label, std::size_t n,
                       const std::function<double(std::size_t)>& body,
                       const WorkCost& cost) {
  if (n == 0) return 0.0;
  const DispatchSpan span(label);
  double total = 0.0;
  std::mutex mutex;
  hip::Kernel k;
  k.profile = make_profile(label, n, cost);
  k.profile.bytes_written += 4096.0;  // per-block partials
  k.bulk_body = [n, &body, &total, &mutex] {
    support::ThreadPool::global().parallel_for_chunks(
        0, n, [&body, &total, &mutex](std::size_t lo, std::size_t hi) {
          double partial = 0.0;
          for (std::size_t i = lo; i < hi; ++i) partial += body(i);
          const std::lock_guard<std::mutex> lock(mutex);
          total += partial;
        });
  };
  const hip::hipError_t err = hip::hipLaunchKernelEXA(k, make_launch(n));
  EXA_REQUIRE(err == hip::hipSuccess);
  return total;
}

void fence() { (void)hip::hipDeviceSynchronize(); }

double device_busy_seconds() {
  return hip::Runtime::instance().current_device().counters().kernel_busy_s;
}

}  // namespace exa::pfw
