#pragma once
/// \file property.hpp
/// exa::qa — seeded property-based testing with integrated shrinking.
///
/// The paper's porting campaigns repeatedly found that hand-written test
/// cases missed the bug classes that mattered (§GAMESS hipify remnants,
/// §Pele lifetime bugs discovered late on scarce hardware). This core
/// generates randomized cases from an explicit seed, and when a property
/// fails it *shrinks* the failure to a minimal counterexample and prints
/// the seed, so every failure replays bit-exactly on any machine.
///
/// Design: generators draw raw 64-bit values from a `Gen`, which records
/// every draw onto a "choice tape". Shrinking operates on the tape —
/// truncating it and shrinking individual entries — and replays the
/// property against candidate tapes (draws past the end of a replayed
/// tape return 0, the minimal value). This gives integrated shrinking for
/// arbitrary composed generators without per-type shrinkers: for an
/// op-sequence fuzzer, a truncated tape *is* a shorter op sequence.
///
/// Environment overrides (printed in every failure report):
///   EXA_QA_SEED   base seed (decimal or 0x hex) — replays a failure
///   EXA_QA_ITERS  iteration count per property

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace exa::qa {

/// Thrown (via `require`) when a property's body observes a violation.
/// Deliberately not derived from support::Error: the runner distinguishes
/// "property failed" from "generator/system contract broke" in reports.
class PropertyFailure {
 public:
  explicit PropertyFailure(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  std::string message_;
};

/// Fails the enclosing property when `cond` is false.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw PropertyFailure(message);
}

/// The choice source handed to a property body. Records draws in normal
/// operation; replays a (possibly mutated) tape while shrinking.
class Gen {
 public:
  /// Recording generator seeded from `seed`.
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  /// Replaying generator: returns `tape` entries in order, then zeros.
  explicit Gen(std::vector<std::uint64_t> tape)
      : rng_(0), replay_(true), tape_(std::move(tape)) {}

  /// One raw draw — every other generator bottoms out here.
  std::uint64_t u64() {
    if (replay_) {
      if (pos_ >= tape_.size()) return 0;
      return tape_[pos_++];
    }
    const std::uint64_t v = rng_.next();
    tape_.push_back(v);
    return v;
  }

  /// Uniform in [0, n). Plain modulo keeps the tape→value map monotone
  /// (smaller tape entry → smaller result), which is what makes entry
  /// shrinking converge; the bias is irrelevant for test-case generation.
  std::uint64_t range(std::uint64_t n) { return n == 0 ? 0 : u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range_int(std::int64_t lo, std::int64_t hi) {
    if (lo >= hi) return lo;
    return lo + static_cast<std::int64_t>(
                    range(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1); a zeroed tape entry maps to 0.0.
  double uniform() { return static_cast<double>(u64() >> 11) * 0x1.0p-53; }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// True with probability `p`. Shrinks toward false (a zeroed tape entry
  /// maps to uniform() == 0, which is never >= 1 - p for p < 1).
  bool chance(double p) { return uniform() >= 1.0 - p; }

  /// Index into a container of `n` elements.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(range(n));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// A size in [lo, hi] that shrinks toward `lo`.
  std::size_t size(std::size_t lo, std::size_t hi) {
    return static_cast<std::size_t>(
        range_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
  }

  [[nodiscard]] const std::vector<std::uint64_t>& tape() const { return tape_; }
  [[nodiscard]] std::size_t draws() const {
    return replay_ ? pos_ : tape_.size();
  }

 private:
  support::Rng rng_;
  bool replay_ = false;
  std::vector<std::uint64_t> tape_;
  std::size_t pos_ = 0;
};

/// Runner configuration. Defaults are deterministic (fixed seed) so CI
/// runs are reproducible; set EXA_QA_SEED to explore or replay.
struct PropertyOptions {
  std::uint64_t seed = 0x5eed'ba5e'0f00'dull;
  int iterations = 100;
  /// Upper bound on candidate tapes tried while shrinking a failure.
  int max_shrink_attempts = 2000;
  /// When true (default) EXA_QA_SEED / EXA_QA_ITERS override the above.
  bool read_env = true;
};

struct PropertyResult {
  bool ok = true;
  int iterations_run = 0;
  /// Set on failure: the seed whose iteration 0 reproduces the failure.
  std::uint64_t failing_seed = 0;
  int shrink_attempts = 0;
  std::size_t minimal_tape_size = 0;
  std::string message;  ///< failure message from the minimal counterexample
  std::string report;   ///< full human-readable report (seed, replay hint)
};

/// Runs `body` against `iterations` fresh generators. On failure, shrinks
/// the recorded tape to a minimal counterexample, re-runs the body once
/// more on it (so side effects like log lines describe the minimal case),
/// and formats a replay report. The per-iteration seed is printed; setting
/// EXA_QA_SEED to it makes iteration 0 reproduce the failure.
[[nodiscard]] PropertyResult run_property(
    const std::string& name, const std::function<void(Gen&)>& body,
    const PropertyOptions& options = {});

/// Derives the seed for iteration `iter` of a run with base seed `seed`.
[[nodiscard]] std::uint64_t iteration_seed(std::uint64_t seed, int iter);

/// Defines a property as a gtest test: the block body receives
/// `exa::qa::Gen& g` and fails via `exa::qa::require` (or by throwing).
///
///   EXA_PROPERTY(FftProps, RoundTripIsIdentity) {
///     const std::size_t n = std::size_t{1} << g.size(0, 10);
///     ...
///     exa::qa::require(err < 1e-10, "round-trip error " + std::to_string(err));
///   }
#define EXA_PROPERTY(Suite, Name)                                           \
  static void exa_qa_prop_##Suite##_##Name(::exa::qa::Gen& g);              \
  TEST(Suite, Name) {                                                       \
    const auto exa_qa_result = ::exa::qa::run_property(                     \
        #Suite "." #Name, exa_qa_prop_##Suite##_##Name);                    \
    EXPECT_TRUE(exa_qa_result.ok) << exa_qa_result.report;                  \
  }                                                                         \
  static void exa_qa_prop_##Suite##_##Name(::exa::qa::Gen& g)

}  // namespace exa::qa
