#pragma once
/// \file golden.hpp
/// Golden-baseline gates for the paper-artifact benches.
///
/// Every figure/table regenerator can emit its headline metrics to a JSON
/// baseline (`--emit-golden=<file>`) and later be gated against a
/// checked-in baseline (`--check-golden=<file>`). Baselines store a
/// per-metric relative tolerance, so deliberate model changes re-emit the
/// file in one step while accidental drift — a cost-model constant nudged,
/// a dispatch path regressed — fails the `golden`-labeled ctests.
///
/// Format (tests/golden/*.json):
///   {
///     "schema": "exa-golden-v1",
///     "metrics": {
///       "fig1.geomean_ratio": { "value": 0.998, "rel_tol": 0.02 }
///     }
///   }

#include <string>
#include <vector>

namespace exa::qa {

struct GoldenMetric {
  std::string name;
  double value = 0.0;
  /// Allowed relative deviation from the baseline value (e.g. 0.02 = 2%).
  double rel_tol = 0.0;
};

struct GoldenFile {
  std::vector<GoldenMetric> metrics;
};

/// Parses a baseline file; throws support::Error on malformed input.
[[nodiscard]] GoldenFile golden_load(const std::string& path);

/// Writes `golden` as a baseline file (metrics sorted by name, so emitted
/// baselines diff cleanly). Throws support::Error on I/O failure.
void golden_write(const std::string& path, const GoldenFile& golden);

struct GoldenCompareResult {
  bool ok = true;
  std::size_t compared = 0;
  /// One line per violation: value drift, missing metric, or a measured
  /// metric absent from the baseline (strict in both directions).
  std::vector<std::string> failures;

  [[nodiscard]] std::string report() const;
};

/// Compares measured metrics against a baseline. Strict both ways: every
/// baseline metric must be measured, every measured metric must be in the
/// baseline, and |measured - baseline| must stay within the baseline's
/// rel_tol (relative to |baseline|; exact match required when the
/// baseline value is 0).
[[nodiscard]] GoldenCompareResult golden_compare(
    const GoldenFile& baseline, const std::vector<GoldenMetric>& measured);

}  // namespace exa::qa
