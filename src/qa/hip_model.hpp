#pragma once
/// \file hip_model.hpp
/// Reference interpreter for the HIP shim + exa::check checker.
///
/// A deliberately small, obviously-correct model of what every shim call
/// must do: the hipError_t it returns and the checker rules it fires.
/// The model-based fuzzer (hip_fuzz.hpp) generates random valid *and*
/// invalid call sequences, executes them against the real shim, and
/// asserts per-call return codes and per-rule diagnostic counts agree
/// with this interpreter — cross-validating the launch fast path (PR 3)
/// and the happens-before checker (PR 4) against each other.
///
/// The model receives the same observable inputs the checker does (real
/// pointer values from the executed hipMalloc, stream keys, event
/// identities) and mirrors the checker's address-range logic, including
/// allocator address reuse: a new allocation overlapping a tombstoned
/// range erases the tombstone, exactly as the checker must.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/checker.hpp"

namespace exa::qa {

/// Per-rule diagnostic counts, indexed by check::Rule.
struct RuleCounts {
  std::uint64_t c[check::kRuleCount] = {};

  std::uint64_t& operator[](check::Rule r) { return c[static_cast<int>(r)]; }
  std::uint64_t operator[](check::Rule r) const {
    return c[static_cast<int>(r)];
  }
  friend bool operator==(const RuleCounts&, const RuleCounts&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Reads the live checker's counters into a RuleCounts.
[[nodiscard]] RuleCounts checker_counts();

/// Error codes mirrored as plain ints so the model does not include the
/// hip headers (values match hip::hipError_t; asserted in hip_fuzz.cpp).
enum class ModelError {
  kSuccess = 0,
  kInvalidValue = 1,
  kOutOfMemory = 2,
  kInvalidDevice = 3,
  kInvalidDevicePointer = 4,
  kInvalidResourceHandle = 5,
  kNotReady = 6,
};

[[nodiscard]] const char* to_string(ModelError err);

/// The reference interpreter. One instance models one runtime generation
/// (devices created by one Runtime::configure call).
class HipModel {
 public:
  explicit HipModel(int device_count);

  [[nodiscard]] const RuleCounts& rules() const { return rules_; }
  [[nodiscard]] int current_device() const { return current_; }

  // Each call mirrors one shim entry point: it returns the predicted
  // hipError_t and advances the model's checker state. Handles are the
  // caller's indices into its own stream/event tables; the model tracks
  // their device/liveness itself.

  ModelError set_device(int device);
  /// `ptr` is the address the *real* hipMalloc returned (the model needs
  /// it to mirror range overlap); pass nullptr for a failed/invalid call.
  ModelError malloc(const void* ptr, std::size_t bytes);
  ModelError free(const void* ptr);
  /// kind: 1 = H2D, 2 = D2H, 3 = D2D (matches hipMemcpyKind).
  ModelError memcpy_sync(const void* dst, const void* src, std::size_t bytes,
                         int kind);
  /// `stream` < 0 designates the default stream of the current device.
  ModelError memcpy_async(const void* dst, const void* src, std::size_t bytes,
                          int kind, int stream);
  ModelError memset(const void* dst, std::size_t bytes);
  /// Timing-only launch (hipLaunchTimedEXA / hipLaunchCachedEXA).
  ModelError launch(int stream);
  /// A buffer use declared on a hip::Kernel (mirrors check::BufferUse).
  struct BufUse {
    const void* ptr = nullptr;
    std::size_t bytes = 0;
    bool write = true;
  };
  /// Full hipLaunchKernelEXA: validates declared buffers (which bumps the
  /// stream once on its own) and then performs the timed launch (a second
  /// bump), matching the shim's two-hook sequence.
  ModelError launch_kernel(int stream, const std::vector<BufUse>& buffers);

  /// Returns the model's stream id for the new stream (mirrors
  /// DeviceSim::create_stream numbering) — used only for diagnostics.
  ModelError stream_create(int* handle_out);
  ModelError stream_destroy(int stream);
  ModelError stream_synchronize(int stream);
  ModelError device_synchronize();

  ModelError event_create(int* handle_out);
  ModelError event_destroy(int event);
  ModelError event_record(int event, int stream);
  ModelError event_synchronize(int event);
  ModelError stream_wait_event(int stream, int event);
  ModelError event_elapsed(int start, int stop);

  /// Predicts the leak diagnostics a teardown (Runtime::configure while
  /// armed) adds, and accounts them into rules().
  void teardown_leak_scan();

  /// True when [ptr, ptr+bytes) lies fully inside one live allocation —
  /// the fuzz executor's host-memory-safety gate for ops the shim would
  /// really execute.
  [[nodiscard]] bool range_in_live_alloc(const void* ptr,
                                         std::size_t bytes) const;

 private:
  using VectorClock = std::unordered_map<std::uint64_t, std::uint64_t>;

  struct Alloc {
    std::uintptr_t base = 0;
    std::size_t bytes = 0;
    int device = 0;
    bool live = true;
  };
  struct Stream {
    int device = 0;
    int id = 0;  ///< 0 is a device's default stream
    bool live = true;
  };
  struct Event {
    int device = 0;
    bool live = true;
    bool recorded = false;
    std::uint64_t record_stream = 0;  ///< packed key
    std::uint64_t record_seq = 0;
    VectorClock vc;
  };
  struct DevWrite {
    std::uintptr_t lo = 0, hi = 0;
    std::uint64_t stream = 0;  ///< packed key
    std::uint64_t seq = 0;
  };
  struct HostPin {
    std::uintptr_t lo = 0, hi = 0;
    std::uint64_t stream = 0;
    std::uint64_t seq = 0;
    bool device_writes = false;
  };

  [[nodiscard]] static std::uint64_t pack(int device, int id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(device))
            << 32) |
           static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] std::uint64_t default_key() const { return pack(current_, 0); }
  /// Packed key of a caller stream handle; -1 = default stream.
  [[nodiscard]] std::uint64_t key_of(int stream) const;

  void fire(check::Rule rule) { ++rules_[rule]; }
  std::uint64_t bump(std::uint64_t stream_key);
  void join(VectorClock& dst, const VectorClock& src);
  [[nodiscard]] bool covers(const VectorClock& vc, std::uint64_t stream_key,
                            std::uint64_t seq) const;
  [[nodiscard]] Alloc* find_alloc(const void* p);
  void record_dev_write(const void* ptr, std::size_t bytes,
                        std::uint64_t stream_key, std::uint64_t seq);
  /// Mirror of Checker::check_access: fires at most one rule per access,
  /// returns false on a use-after-free veto.
  [[nodiscard]] bool check_access(const void* ptr, std::size_t bytes,
                                  bool write, bool host_side,
                                  std::uint64_t stream_key);
  void foreign_device_check(const void* dst, const void* src, int device);

  int device_count_ = 1;
  int current_ = 0;
  std::vector<int> next_stream_id_;  ///< per device, mirrors DeviceSim

  RuleCounts rules_;
  std::unordered_map<std::uint64_t, std::uint64_t> seq_;
  std::unordered_map<std::uint64_t, VectorClock> stream_vc_;
  VectorClock host_vc_;
  std::map<std::uintptr_t, Alloc> allocs_;
  std::unordered_map<const void*, int> ptr_owner_;  ///< mirrors Runtime ptrs
  /// The simulator's live-allocation census (successful mallocs minus
  /// successful frees) — can exceed the checker-tracked live count when a
  /// stale free tombstones a reused range without freeing it for real.
  std::size_t sim_live_ = 0;
  std::vector<Stream> streams_;  ///< indexed by caller handle
  std::vector<Event> events_;    ///< indexed by caller handle
  std::vector<DevWrite> dev_writes_;
  std::vector<HostPin> host_pins_;
};

}  // namespace exa::qa
