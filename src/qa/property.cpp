#include "qa/property.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <sstream>

#include "support/log.hpp"

namespace exa::qa {

namespace {

/// Outcome of running a property body against one generator.
struct RunOutcome {
  bool failed = false;
  std::string message;
};

RunOutcome run_once(const std::function<void(Gen&)>& body, Gen& g) {
  try {
    body(g);
  } catch (const PropertyFailure& f) {
    return {true, f.message()};
  } catch (const std::exception& e) {
    return {true, std::string("unhandled exception: ") + e.what()};
  } catch (...) {
    return {true, "unhandled non-standard exception"};
  }
  return {false, {}};
}

RunOutcome replay_tape(const std::function<void(Gen&)>& body,
                       const std::vector<std::uint64_t>& tape) {
  Gen g(tape);
  return run_once(body, g);
}

/// Total-order "smaller" for counterexamples: fewer draws first, then
/// smaller entry values. Truncation therefore always wins over mutation.
bool tape_less(const std::vector<std::uint64_t>& a,
               const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

/// Greedy tape shrinking: alternately try truncations, chunk deletions,
/// and per-entry reductions until a fixed point or the attempt budget.
std::vector<std::uint64_t> shrink_tape(const std::function<void(Gen&)>& body,
                                       std::vector<std::uint64_t> best,
                                       int budget, int* attempts_out) {
  int attempts = 0;
  const auto still_fails = [&](const std::vector<std::uint64_t>& cand) {
    ++attempts;
    return replay_tape(body, cand).failed;
  };

  bool progressed = true;
  while (progressed && attempts < budget) {
    progressed = false;

    // Truncations: drop the back half, quarter, ..., one entry.
    for (std::size_t cut = best.size(); cut >= 1 && attempts < budget;
         cut /= 2) {
      if (cut > best.size()) continue;
      std::vector<std::uint64_t> cand(best.begin(),
                                      best.end() - static_cast<long>(cut));
      if (tape_less(cand, best) && still_fails(cand)) {
        best = std::move(cand);
        progressed = true;
        break;
      }
      if (cut == 1) break;
    }

    // Chunk deletions from the middle (removes one op from a sequence).
    for (std::size_t chunk = std::max<std::size_t>(1, best.size() / 8);
         chunk >= 1 && attempts < budget; chunk /= 2) {
      for (std::size_t at = 0; at + chunk <= best.size() && attempts < budget;
           at += chunk) {
        std::vector<std::uint64_t> cand = best;
        cand.erase(cand.begin() + static_cast<long>(at),
                   cand.begin() + static_cast<long>(at + chunk));
        if (still_fails(cand)) {
          best = std::move(cand);
          progressed = true;
        }
      }
      if (chunk == 1) break;
    }

    // Entry shrinking: zero, then binary-search each entry downward.
    for (std::size_t i = 0; i < best.size() && attempts < budget; ++i) {
      if (best[i] == 0) continue;
      std::vector<std::uint64_t> cand = best;
      cand[i] = 0;
      if (still_fails(cand)) {
        best = std::move(cand);
        progressed = true;
        continue;
      }
      cand = best;
      cand[i] = best[i] / 2;
      if (cand[i] != best[i] && still_fails(cand)) {
        best = std::move(cand);
        progressed = true;
      }
    }
  }
  *attempts_out = attempts;
  return best;
}

bool env_u64(const char* name, std::uint64_t* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  *out = std::strtoull(v, nullptr, 0);  // base 0: accepts decimal and 0x...
  return true;
}

}  // namespace

std::uint64_t iteration_seed(std::uint64_t seed, int iter) {
  // SplitMix64 over (seed, iter) decorrelates consecutive iterations, so
  // replaying a printed per-iteration seed as the base seed regenerates
  // the same tape at iteration 0.
  support::SplitMix64 sm(seed ^ (0x9e37'79b9'7f4a'7c15ull *
                                 static_cast<std::uint64_t>(iter + 1)));
  return iter == 0 ? seed : sm.next();
}

PropertyResult run_property(const std::string& name,
                            const std::function<void(Gen&)>& body,
                            const PropertyOptions& options) {
  PropertyOptions opts = options;
  if (opts.read_env) {
    std::uint64_t v = 0;
    if (env_u64("EXA_QA_SEED", &v)) opts.seed = v;
    if (env_u64("EXA_QA_ITERS", &v) && v > 0) {
      opts.iterations = static_cast<int>(std::min<std::uint64_t>(v, 1u << 24));
    }
  }

  PropertyResult result;
  for (int iter = 0; iter < opts.iterations; ++iter) {
    const std::uint64_t seed = iteration_seed(opts.seed, iter);
    Gen g(seed);
    const RunOutcome outcome = run_once(body, g);
    result.iterations_run = iter + 1;
    if (!outcome.failed) continue;

    result.ok = false;
    result.failing_seed = seed;
    const std::vector<std::uint64_t> minimal = shrink_tape(
        body, g.tape(), opts.max_shrink_attempts, &result.shrink_attempts);
    result.minimal_tape_size = minimal.size();
    // Re-run the minimal counterexample so the recorded message (and any
    // side-channel output the body produces) describes it, not the
    // original unshrunk failure.
    const RunOutcome min_outcome = replay_tape(body, minimal);
    result.message = min_outcome.failed ? min_outcome.message : outcome.message;

    std::ostringstream os;
    os << "property '" << name << "' failed at iteration " << iter
       << " (seed 0x" << std::hex << seed << std::dec << ")\n"
       << "  minimal counterexample after " << result.shrink_attempts
       << " shrink attempts (" << g.tape().size() << " -> " << minimal.size()
       << " draws):\n  " << result.message << "\n"
       << "  replay: EXA_QA_SEED=0x" << std::hex << seed << std::dec << " (fails at iteration 0)";
    result.report = os.str();
    support::log_warn(result.report);
    return result;
  }
  return result;
}

}  // namespace exa::qa
