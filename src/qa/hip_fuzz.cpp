#include "qa/hip_fuzz.hpp"

#include <array>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "hip/hip_runtime.hpp"
#include "qa/hip_model.hpp"

namespace exa::qa {

namespace {

// The model deliberately avoids the hip headers; pin its error values to
// the real enum here, where both are visible.
static_assert(static_cast<int>(ModelError::kSuccess) == hip::hipSuccess);
static_assert(static_cast<int>(ModelError::kInvalidValue) ==
              hip::hipErrorInvalidValue);
static_assert(static_cast<int>(ModelError::kOutOfMemory) ==
              hip::hipErrorOutOfMemory);
static_assert(static_cast<int>(ModelError::kInvalidDevice) ==
              hip::hipErrorInvalidDevice);
static_assert(static_cast<int>(ModelError::kInvalidDevicePointer) ==
              hip::hipErrorInvalidDevicePointer);
static_assert(static_cast<int>(ModelError::kInvalidResourceHandle) ==
              hip::hipErrorInvalidResourceHandle);
static_assert(static_cast<int>(ModelError::kNotReady) == hip::hipErrorNotReady);

constexpr std::size_t kStagingBuffers = 4;
constexpr std::size_t kStagingBytes = 4096;
constexpr std::size_t kMaxAllocBytes = 4096;

/// Arms the checker for one sequence and guarantees a clean global state
/// on every exit path (including a thrown divergence mid-sequence).
class ArmGuard {
 public:
  ArmGuard() {
    auto& checker = check::Checker::instance();
    checker.set_mode(check::Mode::kOff);
    checker.clear();
  }
  ~ArmGuard() {
    auto& checker = check::Checker::instance();
    checker.set_mode(check::Mode::kOff);
    checker.clear();
    // Leave the runtime in its default shape for whatever runs next
    // (reconfigured while disarmed: no leak scan).
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
  }
  ArmGuard(const ArmGuard&) = delete;
  ArmGuard& operator=(const ArmGuard&) = delete;
};

class FuzzExecutor {
 public:
  FuzzExecutor(Gen& g, const FuzzConfig& cfg, FuzzStats* stats)
      : g_(g), cfg_(cfg), stats_(stats), model_(cfg.devices) {
    for (auto& s : staging_) s.assign(kStagingBytes, 0);
  }

  void run() {
    hip::Runtime::instance().configure(arch::mi250x_gcd(), cfg_.devices);
    check::Checker::instance().set_mode(check::Mode::kOn);
    check::Checker::instance().clear();

    const int n_ops = 4 + static_cast<int>(g_.range(
                              static_cast<std::uint64_t>(cfg_.max_ops)));
    for (int i = 0; i < n_ops; ++i) step();
    teardown();

    if (stats_ != nullptr) {
      ++stats_->sequences;
      stats_->diagnostics += check::Checker::instance().total();
    }
  }

 private:
  struct DevBuf {
    void* ptr = nullptr;
    std::size_t bytes = 0;
    bool live = true;
  };
  struct StreamRec {
    hip::hipStream_t h = nullptr;
    bool destroyed = false;
  };
  struct EventRec {
    hip::hipEvent_t h = nullptr;
    bool destroyed = false;
  };

  // --- bookkeeping -------------------------------------------------------

  void log(std::string line) {
    oplog_.push_back(std::move(line));
    if (stats_ != nullptr) ++stats_->ops;
  }

  [[nodiscard]] std::string trace_tail() const {
    std::ostringstream os;
    const std::size_t from = oplog_.size() > 24 ? oplog_.size() - 24 : 0;
    for (std::size_t i = from; i < oplog_.size(); ++i) {
      os << "\n    [" << i << "] " << oplog_[i];
    }
    return os.str();
  }

  void compare(int got, ModelError predicted) {
    require(got == static_cast<int>(predicted),
            std::string("return-code divergence: shim returned ") +
                hip::hipGetErrorString(static_cast<hip::hipError_t>(got)) +
                ", model predicted " + to_string(predicted) + trace_tail());
    const RuleCounts actual = checker_counts();
    require(actual == model_.rules(),
            "diagnostic-count divergence: checker " + actual.to_string() +
                ", model " + model_.rules().to_string() + trace_tail());
  }

  /// True when [ptr, ptr+bytes) may really be read/written by the host
  /// process right now: fully inside one live model allocation or one
  /// staging buffer. Ops the shim would execute outside such ranges are
  /// skipped (the checker's veto protects most cases; this guards the
  /// stale-pointer-into-reused-range overflow it cannot see).
  [[nodiscard]] bool range_safe(const void* ptr, std::size_t bytes) const {
    if (bytes == 0) return true;
    const auto lo = reinterpret_cast<std::uintptr_t>(ptr);
    const auto hi = lo + bytes;
    for (const auto& s : staging_) {
      const auto base = reinterpret_cast<std::uintptr_t>(s.data());
      if (lo >= base && hi <= base + s.size()) return true;
    }
    return model_.range_in_live_alloc(ptr, bytes);
  }

  [[nodiscard]] static bool overlaps(const void* a, const void* b,
                                     std::size_t bytes) {
    const auto la = reinterpret_cast<std::uintptr_t>(a);
    const auto lb = reinterpret_cast<std::uintptr_t>(b);
    return la < lb + bytes && lb < la + bytes;
  }

  /// Stream operand for one op: -1 = default stream (~1/3), otherwise any
  /// created stream — including destroyed ones, which is the point.
  [[nodiscard]] int pick_stream() {
    if (streams_.empty() || g_.chance(0.34)) return -1;
    return static_cast<int>(g_.index(streams_.size()));
  }

  [[nodiscard]] hip::hipStream_t stream_handle(int s) const {
    return s < 0 ? nullptr : streams_[static_cast<std::size_t>(s)].h;
  }

  [[nodiscard]] static std::string sname(int s) {
    return s < 0 ? "default" : "s" + std::to_string(s);
  }

  // --- ops ---------------------------------------------------------------

  void step() {
    const std::uint64_t w = g_.range(100);
    if (w < 8) return op_set_device();
    if (w < 22) return op_malloc();
    if (w < 34) return op_free();
    if (w < 48) return op_memcpy();
    if (w < 55) return op_memset();
    if (w < 68) return op_launch();
    if (w < 74) return op_stream_create();
    if (w < 79) return op_stream_destroy();
    if (w < 86) return op_sync();
    return op_event();
  }

  void op_set_device() {
    const int d = static_cast<int>(g_.index(
        static_cast<std::size_t>(cfg_.devices)));
    log("hipSetDevice(" + std::to_string(d) + ")");
    compare(hip::hipSetDevice(d), model_.set_device(d));
  }

  void op_malloc() {
    const std::size_t bytes = 1 + g_.range(kMaxAllocBytes);
    void* p = nullptr;
    // The fuzzer's whole job is to drive the raw shim API; the pooled view
    // wrapper would hide the very paths under test.
    // exa-lint: allow(raw-device-alloc)
    const int got = hip::hipMalloc(&p, bytes);
    const ModelError predicted = model_.malloc(p, bytes);
    bufs_.push_back(DevBuf{p, bytes, true});
    log("hipMalloc(" + std::to_string(bytes) + ") -> buf" +
        std::to_string(bufs_.size() - 1) + " dev" +
        std::to_string(model_.current_device()));
    compare(got, predicted);
  }

  void op_free() {
    if (bufs_.empty()) return op_malloc();
    // Any buffer, live or stale: stale picks exercise double-free and
    // use-after-free; a live buffer owned by another device exercises the
    // foreign-device free path.
    const std::size_t i = g_.index(bufs_.size());
    DevBuf& b = bufs_[i];
    log("hipFree(buf" + std::to_string(i) + (b.live ? "" : " stale") +
        ") from dev" + std::to_string(model_.current_device()));
    // Deliberate raw free: stale picks exercise double-free detection.
    // exa-lint: allow(raw-device-alloc)
    const int got = hip::hipFree(b.ptr);
    const ModelError predicted = model_.free(b.ptr);
    if (predicted == ModelError::kSuccess) b.live = false;
    compare(got, predicted);
  }

  void op_memcpy() {
    if (bufs_.empty()) return op_malloc();
    const bool async = g_.chance(0.5);
    const std::uint64_t variant = g_.range(10);  // 0-3 H2D, 4-7 D2H, 8 D2D, 9 H2H
    const std::size_t di = g_.index(bufs_.size());
    const std::size_t si = g_.index(bufs_.size());
    const std::size_t hi = g_.index(kStagingBuffers);
    const std::size_t hj = g_.index(kStagingBuffers);
    const int stream = async ? pick_stream() : -1;

    const void* src = nullptr;
    void* dst = nullptr;
    int kind = 0;
    std::size_t bytes = 0;
    std::string what;
    if (variant < 4) {
      kind = hip::hipMemcpyHostToDevice;
      dst = bufs_[di].ptr;
      src = staging_[hi].data();
      bytes = 1 + g_.range(bufs_[di].bytes);
      what = "H2D host" + std::to_string(hi) + " -> buf" + std::to_string(di);
    } else if (variant < 8) {
      kind = hip::hipMemcpyDeviceToHost;
      dst = staging_[hi].data();
      src = bufs_[si].ptr;
      bytes = 1 + g_.range(bufs_[si].bytes);
      what = "D2H buf" + std::to_string(si) + " -> host" + std::to_string(hi);
    } else if (variant == 8) {
      kind = hip::hipMemcpyDeviceToDevice;
      dst = bufs_[di].ptr;
      src = bufs_[si].ptr;
      bytes = 1 + g_.range(std::min(bufs_[di].bytes, bufs_[si].bytes));
      what = "D2D buf" + std::to_string(si) + " -> buf" + std::to_string(di);
    } else {
      kind = hip::hipMemcpyHostToHost;
      dst = staging_[hi].data();
      src = staging_[hj].data();
      bytes = 1 + g_.range(kStagingBytes);
      what = "H2H host" + std::to_string(hj) + " -> host" + std::to_string(hi);
    }

    if (overlaps(dst, src, bytes)) {
      if (stats_ != nullptr) ++stats_->skipped;
      return;  // std::memcpy with overlapping ranges is UB in the shim
    }
    // Probe the model on a copy: if the shim would execute the copy (i.e.
    // return success) into memory that is no longer fully live — a stale
    // pointer whose range was partially reused — skip the op rather than
    // corrupt the test process's heap.
    {
      HipModel probe = model_;
      const ModelError would =
          async ? probe.memcpy_async(dst, src, bytes, kind, stream)
                : probe.memcpy_sync(dst, src, bytes, kind);
      if (would == ModelError::kSuccess &&
          !(range_safe(dst, bytes) && range_safe(src, bytes))) {
        if (stats_ != nullptr) ++stats_->skipped;
        return;
      }
    }

    log(std::string(async ? "hipMemcpyAsync " : "hipMemcpy ") + what + " " +
        std::to_string(bytes) + "B" +
        (async ? " on " + sname(stream) : std::string()));
    if (async) {
      compare(hip::hipMemcpyAsync(dst, src, bytes,
                                  static_cast<hip::hipMemcpyKind>(kind),
                                  stream_handle(stream)),
              model_.memcpy_async(dst, src, bytes, kind, stream));
    } else {
      compare(hip::hipMemcpy(dst, src, bytes,
                             static_cast<hip::hipMemcpyKind>(kind)),
              model_.memcpy_sync(dst, src, bytes, kind));
    }
  }

  void op_memset() {
    if (bufs_.empty()) return op_malloc();
    const std::size_t i = g_.index(bufs_.size());
    const std::size_t bytes = 1 + g_.range(bufs_[i].bytes);
    void* dst = bufs_[i].ptr;
    {
      HipModel probe = model_;
      if (probe.memset(dst, bytes) == ModelError::kSuccess &&
          !range_safe(dst, bytes)) {
        if (stats_ != nullptr) ++stats_->skipped;
        return;
      }
    }
    log("hipMemset(buf" + std::to_string(i) + ", " + std::to_string(bytes) +
        "B)");
    compare(hip::hipMemset(dst, 0, bytes), model_.memset(dst, bytes));
  }

  void op_launch() {
    const int stream = pick_stream();
    const std::uint64_t flavor = g_.range(3);
    sim::KernelProfile profile;
    profile.name = "qa_fuzz_kernel";
    profile.bytes_written = 1024.0;
    const sim::LaunchConfig cfg{1 + g_.range(8), 64};

    if (flavor == 0) {
      log("hipLaunchTimedEXA on " + sname(stream));
      compare(hip::hipLaunchTimedEXA(profile, cfg, stream_handle(stream)),
              model_.launch(stream));
      return;
    }
    if (flavor == 1) {
      sim::KernelTiming timing{};
      std::uint64_t epoch = 0;
      log("hipLaunchCachedEXA on " + sname(stream));
      compare(hip::hipLaunchCachedEXA(profile, cfg, &timing, &epoch,
                                      stream_handle(stream)),
              model_.launch(stream));
      return;
    }

    // Buffered kernel: annotate 0-2 buffers; attach a functional body
    // (which exercises the thread pool under EXA_THREADS) only when every
    // written range is genuinely live host memory.
    hip::Kernel kernel;
    kernel.profile = profile;
    std::vector<HipModel::BufUse> model_bufs;
    bool body_safe = true;
    std::string desc;
    const std::size_t n_bufs = bufs_.empty() ? 0 : g_.index(3);
    for (std::size_t k = 0; k < n_bufs; ++k) {
      const std::size_t i = g_.index(bufs_.size());
      const std::size_t bytes = 1 + g_.range(bufs_[i].bytes);
      const bool write = g_.chance(0.6);
      kernel.buffers.push_back(
          check::BufferUse{bufs_[i].ptr, bytes, write});
      model_bufs.push_back(HipModel::BufUse{bufs_[i].ptr, bytes, write});
      if (!range_safe(bufs_[i].ptr, bytes)) body_safe = false;
      desc += (write ? " w:buf" : " r:buf") + std::to_string(i);
    }
    if (body_safe && !kernel.buffers.empty() &&
        kernel.buffers.front().write) {
      auto* out = static_cast<unsigned char*>(
          const_cast<void*>(kernel.buffers.front().ptr));
      const std::size_t n = kernel.buffers.front().bytes;
      kernel.body = [out, n](const hip::KernelContext& ctx) {
        if (ctx.global_id < n) {
          out[ctx.global_id] = static_cast<unsigned char>(ctx.global_id);
        }
      };
    }
    log("hipLaunchKernelEXA on " + sname(stream) + desc);
    compare(hip::hipLaunchKernelEXA(kernel, cfg, stream_handle(stream)),
            model_.launch_kernel(stream, model_bufs));
  }

  void op_stream_create() {
    hip::hipStream_t h = nullptr;
    const int got = hip::hipStreamCreate(&h);
    int handle = -1;
    const ModelError predicted = model_.stream_create(&handle);
    streams_.push_back(StreamRec{h, false});
    log("hipStreamCreate -> s" + std::to_string(streams_.size() - 1) +
        " dev" + std::to_string(model_.current_device()));
    compare(got, predicted);
  }

  void op_stream_destroy() {
    if (streams_.empty()) return op_stream_create();
    const std::size_t i = g_.index(streams_.size());
    StreamRec& s = streams_[i];
    log("hipStreamDestroy(s" + std::to_string(i) +
        (s.destroyed ? " destroyed)" : ")"));
    const int got = hip::hipStreamDestroy(s.h);
    const ModelError predicted = model_.stream_destroy(static_cast<int>(i));
    if (predicted == ModelError::kSuccess) s.destroyed = true;
    compare(got, predicted);
  }

  void op_sync() {
    if (g_.chance(0.4)) {
      log("hipDeviceSynchronize dev" +
          std::to_string(model_.current_device()));
      compare(hip::hipDeviceSynchronize(), model_.device_synchronize());
      return;
    }
    const int s = pick_stream();
    log("hipStreamSynchronize(" + sname(s) + ")");
    compare(hip::hipStreamSynchronize(stream_handle(s)),
            model_.stream_synchronize(s));
  }

  void op_event() {
    const std::uint64_t which = g_.range(6);
    if (events_.empty() || which == 0) {
      hip::hipEvent_t h = nullptr;
      const int got = hip::hipEventCreate(&h);
      int handle = -1;
      const ModelError predicted = model_.event_create(&handle);
      events_.push_back(EventRec{h, false});
      log("hipEventCreate -> e" + std::to_string(events_.size() - 1));
      compare(got, predicted);
      return;
    }
    const std::size_t i = g_.index(events_.size());
    EventRec& e = events_[i];
    switch (which) {
      case 1: {
        log("hipEventDestroy(e" + std::to_string(i) + ")");
        const int got = hip::hipEventDestroy(e.h);
        const ModelError predicted =
            model_.event_destroy(static_cast<int>(i));
        if (predicted == ModelError::kSuccess) e.destroyed = true;
        compare(got, predicted);
        return;
      }
      case 2: {
        const int s = pick_stream();
        log("hipEventRecord(e" + std::to_string(i) + ", " + sname(s) + ")");
        compare(hip::hipEventRecord(e.h, stream_handle(s)),
                model_.event_record(static_cast<int>(i), s));
        return;
      }
      case 3: {
        log("hipEventSynchronize(e" + std::to_string(i) + ")");
        compare(hip::hipEventSynchronize(e.h),
                model_.event_synchronize(static_cast<int>(i)));
        return;
      }
      case 4: {
        const int s = pick_stream();
        log("hipStreamWaitEvent(" + sname(s) + ", e" + std::to_string(i) +
            ")");
        compare(hip::hipStreamWaitEvent(stream_handle(s), e.h),
                model_.stream_wait_event(s, static_cast<int>(i)));
        return;
      }
      default: {
        const std::size_t j = g_.index(events_.size());
        float ms = 0.0f;
        log("hipEventElapsedTime(e" + std::to_string(i) + ", e" +
            std::to_string(j) + ")");
        compare(hip::hipEventElapsedTime(&ms, e.h, events_[j].h),
                model_.event_elapsed(static_cast<int>(i),
                                     static_cast<int>(j)));
        return;
      }
    }
  }

  void teardown() {
    // Reconfiguring while armed leak-scans the outgoing generation; the
    // model predicts one leak diagnostic per live alloc/stream/event.
    model_.teardown_leak_scan();
    log("teardown (Runtime::configure while armed)");
    hip::Runtime::instance().configure(arch::mi250x_gcd(), 1);
    const RuleCounts actual = checker_counts();
    require(actual == model_.rules(),
            "teardown leak divergence: checker " + actual.to_string() +
                ", model " + model_.rules().to_string() + trace_tail());
  }

  Gen& g_;
  const FuzzConfig& cfg_;
  FuzzStats* stats_;
  HipModel model_;
  std::vector<DevBuf> bufs_;
  std::vector<StreamRec> streams_;
  std::vector<EventRec> events_;
  std::array<std::vector<unsigned char>, kStagingBuffers> staging_;
  std::vector<std::string> oplog_;
};

}  // namespace

void fuzz_one_sequence(Gen& g, const FuzzConfig& cfg, FuzzStats* stats) {
  const ArmGuard guard;
  FuzzExecutor(g, cfg, stats).run();
}

PropertyResult run_fuzz(std::uint64_t seed, int sequences,
                        const FuzzConfig& cfg, FuzzStats* stats) {
  PropertyOptions options;
  options.seed = seed;
  options.iterations = sequences;
  return run_property(
      "hip_fuzz",
      [&cfg, stats](Gen& g) { fuzz_one_sequence(g, cfg, stats); }, options);
}

}  // namespace exa::qa
