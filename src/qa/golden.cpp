#include "qa/golden.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/assert.hpp"
#include "trace/json.hpp"

namespace exa::qa {

GoldenFile golden_load(const std::string& path) {
  std::ifstream in(path);
  EXA_REQUIRE_MSG(in.good(), "golden baseline not readable: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  const trace::JsonValue doc = trace::json_parse(text.str());

  const trace::JsonValue* schema = doc.find("schema");
  EXA_REQUIRE_MSG(schema != nullptr && schema->is_string() &&
                  schema->as_string() == "exa-golden-v1",
              "golden baseline missing schema marker: " + path);
  const trace::JsonValue* metrics = doc.find("metrics");
  EXA_REQUIRE_MSG(metrics != nullptr && metrics->is_object(),
              "golden baseline missing metrics object: " + path);

  GoldenFile golden;
  for (const auto& [name, entry] : metrics->as_object()) {
    const trace::JsonValue* value = entry.find("value");
    const trace::JsonValue* rel_tol = entry.find("rel_tol");
    EXA_REQUIRE_MSG(value != nullptr && value->is_number() && rel_tol != nullptr &&
                    rel_tol->is_number(),
                "golden metric '" + name + "' malformed in " + path);
    golden.metrics.push_back(
        GoldenMetric{name, value->as_number(), rel_tol->as_number()});
  }
  return golden;
}

void golden_write(const std::string& path, const GoldenFile& golden) {
  trace::JsonValue::Object metrics;  // std::map: sorted, stable diffs
  for (const GoldenMetric& m : golden.metrics) {
    trace::JsonValue::Object entry;
    entry["value"] = trace::JsonValue(m.value);
    entry["rel_tol"] = trace::JsonValue(m.rel_tol);
    metrics[m.name] = trace::JsonValue(std::move(entry));
  }
  trace::JsonValue::Object doc;
  doc["schema"] = trace::JsonValue("exa-golden-v1");
  doc["metrics"] = trace::JsonValue(std::move(metrics));

  std::ofstream out(path);
  EXA_REQUIRE_MSG(out.good(), "cannot write golden baseline: " + path);
  out << trace::JsonValue(std::move(doc)).dump() << "\n";
  EXA_REQUIRE_MSG(out.good(), "short write on golden baseline: " + path);
}

std::string GoldenCompareResult::report() const {
  std::ostringstream os;
  os << "golden: " << (ok ? "OK" : "FAIL") << " (" << compared
     << " metrics compared, " << failures.size() << " violations)";
  for (const std::string& f : failures) os << "\n  " << f;
  return os.str();
}

GoldenCompareResult golden_compare(const GoldenFile& baseline,
                                   const std::vector<GoldenMetric>& measured) {
  GoldenCompareResult result;
  const auto find_measured = [&](const std::string& name) -> const GoldenMetric* {
    for (const GoldenMetric& m : measured) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };

  for (const GoldenMetric& b : baseline.metrics) {
    const GoldenMetric* m = find_measured(b.name);
    if (m == nullptr) {
      result.failures.push_back("metric '" + b.name +
                                "' in baseline but not measured");
      continue;
    }
    ++result.compared;
    const double denom = std::abs(b.value);
    const double drift = std::abs(m->value - b.value);
    const bool within =
        denom > 0.0 ? drift <= b.rel_tol * denom : drift == 0.0;
    if (!within) {
      std::ostringstream os;
      os << "metric '" << b.name << "' drifted: baseline "
         << trace::json_number(b.value) << ", measured "
         << trace::json_number(m->value) << " (rel "
         << trace::json_number(denom > 0.0 ? drift / denom : drift)
         << " > tol " << trace::json_number(b.rel_tol) << ")";
      result.failures.push_back(os.str());
    }
  }
  for (const GoldenMetric& m : measured) {
    const bool known = std::any_of(
        baseline.metrics.begin(), baseline.metrics.end(),
        [&](const GoldenMetric& b) { return b.name == m.name; });
    if (!known) {
      result.failures.push_back("metric '" + m.name +
                                "' measured but not in baseline "
                                "(re-emit the golden file)");
    }
  }
  result.ok = result.failures.empty();
  return result;
}

}  // namespace exa::qa
