#pragma once
/// \file hip_fuzz.hpp
/// Model-based fuzzing of the HIP shim against the qa::HipModel reference
/// interpreter.
///
/// Each fuzz case generates one random sequence of valid *and* invalid
/// shim calls — allocations, frees (double, foreign-device, stale),
/// copies (sync/async, overlapping streams, shared host staging), memsets,
/// launches (timed / cached / buffered kernels), stream and event
/// lifecycle including destroyed-handle reuse, unrecorded waits, and
/// cross-device hipStreamWaitEvent edges — executes it against the real
/// runtime with exa::check armed, and requires that after every call the
/// shim's return code and the checker's per-rule diagnostic counts match
/// the model's prediction. The sequence ends with a teardown
/// (Runtime::configure while armed) whose leak diagnostics are predicted
/// too.
///
/// Divergences throw PropertyFailure carrying the executed op trace, so
/// the property runner shrinks the tape to a minimal op sequence and
/// prints a replayable seed.

#include <cstdint>

#include "qa/property.hpp"

namespace exa::qa {

struct FuzzConfig {
  /// Simulated devices per sequence (>= 2 exercises cross-device edges).
  int devices = 2;
  /// Upper bound on generated ops per sequence (the actual count is drawn).
  int max_ops = 40;
};

/// Aggregate statistics across fuzz cases (for reporting and CI logs).
struct FuzzStats {
  std::uint64_t sequences = 0;
  std::uint64_t ops = 0;          ///< shim calls issued
  std::uint64_t skipped = 0;      ///< ops skipped as host-memory-unsafe
  std::uint64_t diagnostics = 0;  ///< checker diagnostics (all rules)
};

/// One fuzz case; usable directly as an EXA_PROPERTY body. Throws
/// PropertyFailure (via qa::require) on any shim/model divergence.
void fuzz_one_sequence(Gen& g, const FuzzConfig& cfg = {},
                       FuzzStats* stats = nullptr);

/// Runs `sequences` independent fuzz cases derived from `seed`, with
/// shrinking and seed-replay reporting via the property runner.
[[nodiscard]] PropertyResult run_fuzz(std::uint64_t seed, int sequences,
                                      const FuzzConfig& cfg = {},
                                      FuzzStats* stats = nullptr);

}  // namespace exa::qa
