#pragma once
/// \file generators.hpp
/// Reusable generators over the domains the repo's numerics care about:
/// matrix shapes, well-conditioned dense matrices, SPD matrices,
/// permutations, and device data types. All draw through qa::Gen so every
/// generated case shrinks and replays with the property core.

#include <complex>
#include <cstddef>
#include <numeric>
#include <vector>

#include "arch/dtype.hpp"
#include "qa/property.hpp"

namespace exa::qa {

/// A power of two in [2^lo, 2^hi] (FFT sizes; shrinks toward 2^lo).
inline std::size_t gen_pow2(Gen& g, unsigned lo, unsigned hi) {
  return std::size_t{1} << g.size(lo, hi);
}

/// Entries uniform in [-1, 1] — bounded, so norms stay O(n).
inline std::vector<double> gen_vector(Gen& g, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = g.uniform(-1.0, 1.0);
  return v;
}

/// Dense n x n row-major matrix with entries in [-1, 1].
inline std::vector<double> gen_matrix(Gen& g, std::size_t n) {
  return gen_vector(g, n * n);
}

/// Diagonally dominant n x n matrix: a random matrix with n added to the
/// diagonal. Guaranteed nonsingular with condition number O(n), so LU
/// residual bounds are tight and shrinking never walks into a singular
/// corner case.
inline std::vector<double> gen_diag_dominant(Gen& g, std::size_t n) {
  std::vector<double> a = gen_matrix(g, n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] += static_cast<double>(n);
  }
  return a;
}

/// Symmetric positive-definite n x n matrix: B^T B / n + I for random B.
inline std::vector<double> gen_spd(Gen& g, std::size_t n) {
  const std::vector<double> b = gen_matrix(g, n);
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += b[k * n + i] * b[k * n + j];
      const double v = s / static_cast<double>(n) + (i == j ? 1.0 : 0.0);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  return a;
}

/// Complex diagonally dominant matrix (zgetrf inputs).
inline std::vector<std::complex<double>> gen_zmatrix_dominant(Gen& g,
                                                              std::size_t n) {
  std::vector<std::complex<double>> a(n * n);
  for (auto& x : a) x = {g.uniform(-1.0, 1.0), g.uniform(-1.0, 1.0)};
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] += static_cast<double>(n);
  }
  return a;
}

/// Random permutation of [0, n) via Fisher-Yates (draws shrink toward the
/// identity permutation).
inline std::vector<std::size_t> gen_permutation(Gen& g, std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[g.index(i)]);
  }
  return p;
}

/// The permutation matrix of `perm` (row i of P*A is row perm[i] of A).
inline std::vector<double> permutation_matrix(const std::vector<std::size_t>& perm) {
  const std::size_t n = perm.size();
  std::vector<double> p(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) p[i * n + perm[i]] = 1.0;
  return p;
}

/// One of the numeric device data types (for generated kernel profiles).
inline arch::DType gen_dtype(Gen& g) {
  static const std::vector<arch::DType> kTypes = {
      arch::DType::kF64, arch::DType::kF32, arch::DType::kF16,
      arch::DType::kI32};
  return g.pick(kTypes);
}

}  // namespace exa::qa
