#include "qa/hip_model.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace exa::qa {

namespace {

/// Mirrors the checker's retention caps (checker.cpp): counts are
/// unbounded, but the write/pin tables drop their oldest entry at the cap,
/// which changes *which* overlap a later access reports first.
constexpr std::size_t kMaxRangeEntries = 4096;

[[nodiscard]] std::uintptr_t addr(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

}  // namespace

std::string RuleCounts::to_string() const {
  std::ostringstream os;
  os << "{";
  for (int r = 0; r < check::kRuleCount; ++r) {
    if (c[r] == 0) continue;
    os << " " << check::rule_id(static_cast<check::Rule>(r)) << ":" << c[r];
  }
  os << " }";
  return os.str();
}

RuleCounts checker_counts() {
  RuleCounts counts;
  auto& checker = check::Checker::instance();
  for (int r = 0; r < check::kRuleCount; ++r) {
    counts.c[r] = checker.count(static_cast<check::Rule>(r));
  }
  return counts;
}

const char* to_string(ModelError err) {
  switch (err) {
    case ModelError::kSuccess: return "hipSuccess";
    case ModelError::kInvalidValue: return "hipErrorInvalidValue";
    case ModelError::kOutOfMemory: return "hipErrorOutOfMemory";
    case ModelError::kInvalidDevice: return "hipErrorInvalidDevice";
    case ModelError::kInvalidDevicePointer: return "hipErrorInvalidDevicePointer";
    case ModelError::kInvalidResourceHandle: return "hipErrorInvalidResourceHandle";
    case ModelError::kNotReady: return "hipErrorNotReady";
  }
  return "hipErrorUnknown";
}

HipModel::HipModel(int device_count)
    : device_count_(device_count),
      next_stream_id_(static_cast<std::size_t>(device_count), 1) {
  EXA_REQUIRE(device_count >= 1);
}

std::uint64_t HipModel::key_of(int stream) const {
  if (stream < 0) return default_key();
  const Stream& s = streams_[static_cast<std::size_t>(stream)];
  return pack(s.device, s.id);
}

std::uint64_t HipModel::bump(std::uint64_t stream_key) {
  const std::uint64_t seq = ++seq_[stream_key];
  stream_vc_[stream_key][stream_key] = seq;
  return seq;
}

void HipModel::join(VectorClock& dst, const VectorClock& src) {
  for (const auto& [k, v] : src) {
    auto& slot = dst[k];
    slot = std::max(slot, v);
  }
}

bool HipModel::covers(const VectorClock& vc, std::uint64_t stream_key,
                      std::uint64_t seq) const {
  const auto it = vc.find(stream_key);
  return it != vc.end() && it->second >= seq;
}

HipModel::Alloc* HipModel::find_alloc(const void* p) {
  if (allocs_.empty()) return nullptr;
  const std::uintptr_t a = addr(p);
  auto it = allocs_.upper_bound(a);
  if (it == allocs_.begin()) return nullptr;
  --it;
  Alloc& alloc = it->second;
  if (a >= alloc.base && a < alloc.base + alloc.bytes) return &alloc;
  return nullptr;
}

void HipModel::record_dev_write(const void* ptr, std::size_t bytes,
                                std::uint64_t stream_key, std::uint64_t seq) {
  if (ptr == nullptr || bytes == 0) return;
  const std::uintptr_t lo = addr(ptr);
  const std::uintptr_t hi = lo + bytes;
  dev_writes_.erase(std::remove_if(dev_writes_.begin(), dev_writes_.end(),
                                   [&](const DevWrite& w) {
                                     return w.stream == stream_key &&
                                            w.lo < hi && lo < w.hi;
                                   }),
                    dev_writes_.end());
  if (dev_writes_.size() >= kMaxRangeEntries) {
    dev_writes_.erase(dev_writes_.begin());
  }
  dev_writes_.push_back(DevWrite{lo, hi, stream_key, seq});
}

bool HipModel::check_access(const void* ptr, std::size_t bytes, bool write,
                            bool host_side, std::uint64_t stream_key) {
  if (ptr == nullptr || bytes == 0) return true;
  if (Alloc* alloc = find_alloc(ptr); alloc != nullptr && !alloc->live) {
    fire(check::Rule::kUseAfterFree);
    return false;  // the checker vetoes the call
  }
  const std::uintptr_t lo = addr(ptr);
  const std::uintptr_t hi = lo + bytes;
  for (const DevWrite& w : dev_writes_) {
    if (!(w.lo < hi && lo < w.hi)) continue;
    const bool ordered =
        host_side ? covers(host_vc_, w.stream, w.seq)
                  : (w.stream == stream_key ||
                     covers(stream_vc_[stream_key], w.stream, w.seq));
    if (ordered) continue;
    fire(check::Rule::kMissingSync);
    break;  // the checker reports only the first unordered overlap
  }
  if (host_side) {
    for (const HostPin& pin : host_pins_) {
      if (!(pin.lo < hi && lo < pin.hi)) continue;
      if (covers(host_vc_, pin.stream, pin.seq)) continue;
      if (!write && !pin.device_writes) continue;  // two reads never race
      fire(check::Rule::kAsyncRace);
      break;
    }
  }
  return true;
}

void HipModel::foreign_device_check(const void* dst, const void* src,
                                    int device) {
  for (const void* p : {dst, src}) {
    Alloc* alloc = find_alloc(p);
    if (alloc != nullptr && alloc->live && alloc->device != device) {
      fire(check::Rule::kStreamMisuse);
      break;
    }
  }
}

bool HipModel::range_in_live_alloc(const void* ptr, std::size_t bytes) const {
  if (allocs_.empty()) return false;
  const std::uintptr_t lo = addr(ptr);
  auto it = allocs_.upper_bound(lo);
  if (it == allocs_.begin()) return false;
  --it;
  const Alloc& a = it->second;
  return a.live && lo >= a.base && lo + bytes <= a.base + a.bytes;
}

// --- device management ---------------------------------------------------

ModelError HipModel::set_device(int device) {
  if (device < 0 || device >= device_count_) return ModelError::kInvalidDevice;
  current_ = device;
  return ModelError::kSuccess;
}

// --- memory --------------------------------------------------------------

ModelError HipModel::malloc(const void* ptr, std::size_t bytes) {
  if (bytes == 0) return ModelError::kInvalidValue;
  EXA_REQUIRE(ptr != nullptr);  // the executor passes the real result
  const std::uintptr_t lo = addr(ptr);
  const std::uintptr_t hi = lo + bytes;
  // The allocator may hand back a previously freed range: the checker
  // drops overlapped tombstones and stale write records.
  for (auto it = allocs_.begin(); it != allocs_.end();) {
    const Alloc& a = it->second;
    if (!a.live && a.base < hi && lo < a.base + a.bytes) {
      it = allocs_.erase(it);
    } else {
      ++it;
    }
  }
  dev_writes_.erase(std::remove_if(dev_writes_.begin(), dev_writes_.end(),
                                   [&](const DevWrite& w) {
                                     return w.lo < hi && lo < w.hi;
                                   }),
                    dev_writes_.end());
  allocs_[lo] = Alloc{lo, bytes, current_, /*live=*/true};
  ptr_owner_[ptr] = current_;
  ++sim_live_;  // the sim's census, distinct from checker-style tracking
  return ModelError::kSuccess;
}

ModelError HipModel::free(const void* ptr) {
  if (ptr == nullptr) return ModelError::kSuccess;
  const auto owner_it = ptr_owner_.find(ptr);
  const int owner = owner_it == ptr_owner_.end() ? -1 : owner_it->second;
  // Checker::on_free runs before the shim's own error paths, so its
  // diagnostics fire even when the call then errors out.
  if (Alloc* alloc = find_alloc(ptr); alloc != nullptr) {
    if (!alloc->live) {
      fire(check::Rule::kDoubleFree);
    } else if (owner >= 0 && owner != current_) {
      fire(check::Rule::kStreamMisuse);  // foreign-device free; stays live
    } else {
      // Freeing while an in-flight write still targets the range is a
      // use-after-free on real hardware.
      const std::uintptr_t lo = alloc->base;
      const std::uintptr_t hi = lo + alloc->bytes;
      for (const DevWrite& w : dev_writes_) {
        if (w.lo < hi && lo < w.hi && !covers(host_vc_, w.stream, w.seq)) {
          fire(check::Rule::kUseAfterFree);
          break;
        }
      }
      alloc->live = false;
    }
  }
  if (owner < 0) return ModelError::kInvalidDevicePointer;
  if (owner != current_) return ModelError::kInvalidValue;
  ptr_owner_.erase(owner_it);
  // Only a successful shim free releases the sim-side allocation; the
  // error paths above leave the sim census untouched.
  --sim_live_;
  return ModelError::kSuccess;
}

namespace {
struct CopySides {
  bool dst_device = false;
  bool src_device = false;
};
CopySides sides_of(int kind) {
  // kind mirrors hipMemcpyKind: 1 = H2D, 2 = D2H, 3 = D2D.
  return CopySides{kind == 1 || kind == 3, kind == 2 || kind == 3};
}
}  // namespace

ModelError HipModel::memcpy_sync(const void* dst, const void* src,
                                 std::size_t bytes, int kind) {
  if (dst == nullptr || src == nullptr) return ModelError::kInvalidValue;
  const CopySides s = sides_of(kind);
  const std::uint64_t key = default_key();
  bool ok = check_access(src, bytes, /*write=*/false, !s.src_device, key);
  if (!check_access(dst, bytes, /*write=*/true, !s.dst_device, key)) ok = false;
  if (!ok) return ModelError::kInvalidValue;  // vetoed
  foreign_device_check(dst, src, current_);
  const std::uint64_t seq = bump(key);
  if (s.dst_device) record_dev_write(dst, bytes, key, seq);
  join(host_vc_, stream_vc_[key]);  // a sync copy blocks the host
  return ModelError::kSuccess;
}

ModelError HipModel::memcpy_async(const void* dst, const void* src,
                                  std::size_t bytes, int kind, int stream) {
  if (dst == nullptr || src == nullptr) return ModelError::kInvalidValue;
  if (stream >= 0 && !streams_[static_cast<std::size_t>(stream)].live) {
    fire(check::Rule::kStreamMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  const CopySides s = sides_of(kind);
  const std::uint64_t key = key_of(stream);
  const int stream_device = static_cast<int>(key >> 32);
  bool ok = check_access(src, bytes, /*write=*/false, !s.src_device, key);
  if (!check_access(dst, bytes, /*write=*/true, !s.dst_device, key)) ok = false;
  if (!ok) return ModelError::kInvalidValue;
  foreign_device_check(dst, src, stream_device);
  const std::uint64_t seq = bump(key);
  if (s.dst_device) record_dev_write(dst, bytes, key, seq);
  if (host_pins_.size() >= kMaxRangeEntries) {
    host_pins_.erase(host_pins_.begin());
  }
  if (kind == 1) {  // H2D: the host source is pinned until synchronized
    host_pins_.push_back(
        HostPin{addr(src), addr(src) + bytes, key, seq, false});
  } else if (kind == 2) {  // D2H: the device is writing the host range
    host_pins_.push_back(HostPin{addr(dst), addr(dst) + bytes, key, seq, true});
  }
  return ModelError::kSuccess;
}

ModelError HipModel::memset(const void* dst, std::size_t bytes) {
  if (dst == nullptr) return ModelError::kInvalidValue;
  const std::uint64_t key = default_key();
  if (!check_access(dst, bytes, /*write=*/true, /*host_side=*/false, key)) {
    return ModelError::kInvalidValue;
  }
  if (Alloc* alloc = find_alloc(dst);
      alloc != nullptr && alloc->live && alloc->device != current_) {
    fire(check::Rule::kStreamMisuse);
  }
  const std::uint64_t seq = bump(key);
  record_dev_write(dst, bytes, key, seq);
  return ModelError::kSuccess;
}

// --- launches ------------------------------------------------------------

ModelError HipModel::launch(int stream) {
  if (stream >= 0 && !streams_[static_cast<std::size_t>(stream)].live) {
    fire(check::Rule::kStreamMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  (void)bump(key_of(stream));
  return ModelError::kSuccess;
}

ModelError HipModel::launch_kernel(int stream,
                                   const std::vector<BufUse>& buffers) {
  if (!buffers.empty()) {
    // on_launch_buffers runs before the destroyed-stream check in the
    // timed launch underneath, and uses the handle's key even when the
    // stream is destroyed.
    const std::uint64_t key = key_of(stream);
    const int key_device = static_cast<int>(key >> 32);
    for (const BufUse& b : buffers) {
      if (!check_access(b.ptr, b.bytes, b.write, /*host_side=*/false, key)) {
        return ModelError::kInvalidValue;  // vetoed before any bump
      }
      // Per-buffer foreign-device check (no break: every buffer reports).
      if (Alloc* alloc = find_alloc(b.ptr);
          alloc != nullptr && alloc->live && alloc->device != key_device) {
        fire(check::Rule::kStreamMisuse);
      }
    }
    const std::uint64_t seq = bump(key);
    for (const BufUse& b : buffers) {
      if (b.write) record_dev_write(b.ptr, b.bytes, key, seq);
    }
  }
  return launch(stream);
}

// --- streams -------------------------------------------------------------

ModelError HipModel::stream_create(int* handle_out) {
  Stream s;
  s.device = current_;
  s.id = next_stream_id_[static_cast<std::size_t>(current_)]++;
  streams_.push_back(s);
  *handle_out = static_cast<int>(streams_.size()) - 1;
  return ModelError::kSuccess;
}

ModelError HipModel::stream_destroy(int stream) {
  Stream& s = streams_[static_cast<std::size_t>(stream)];
  if (!s.live) {
    fire(check::Rule::kStreamMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  join(host_vc_, stream_vc_[pack(s.device, s.id)]);  // destroy drains
  s.live = false;
  return ModelError::kSuccess;
}

ModelError HipModel::stream_synchronize(int stream) {
  if (stream >= 0 && !streams_[static_cast<std::size_t>(stream)].live) {
    fire(check::Rule::kStreamMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  join(host_vc_, stream_vc_[key_of(stream)]);
  return ModelError::kSuccess;
}

ModelError HipModel::device_synchronize() {
  for (const auto& [key, vc] : stream_vc_) {
    if (static_cast<int>(key >> 32) == current_) join(host_vc_, vc);
  }
  return ModelError::kSuccess;
}

// --- events --------------------------------------------------------------

ModelError HipModel::event_create(int* handle_out) {
  Event e;
  e.device = current_;
  events_.push_back(std::move(e));
  *handle_out = static_cast<int>(events_.size()) - 1;
  return ModelError::kSuccess;
}

ModelError HipModel::event_destroy(int event) {
  Event& e = events_[static_cast<std::size_t>(event)];
  if (!e.live) {
    fire(check::Rule::kEventMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  e.live = false;
  return ModelError::kSuccess;
}

ModelError HipModel::event_record(int event, int stream) {
  Event& e = events_[static_cast<std::size_t>(event)];
  if (!e.live) {
    fire(check::Rule::kEventMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  if (stream >= 0 && !streams_[static_cast<std::size_t>(stream)].live) {
    fire(check::Rule::kStreamMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  const std::uint64_t key = key_of(stream);
  e.device = static_cast<int>(key >> 32);  // records migrate the event
  e.recorded = true;
  e.record_stream = key;
  e.record_seq = bump(key);
  e.vc = stream_vc_[key];
  return ModelError::kSuccess;
}

ModelError HipModel::event_synchronize(int event) {
  Event& e = events_[static_cast<std::size_t>(event)];
  if (!e.live || !e.recorded) {
    fire(check::Rule::kEventMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  join(host_vc_, e.vc);
  return ModelError::kSuccess;
}

ModelError HipModel::stream_wait_event(int stream, int event) {
  Event& e = events_[static_cast<std::size_t>(event)];
  if (!e.live) {
    fire(check::Rule::kEventMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  if (stream >= 0 && !streams_[static_cast<std::size_t>(stream)].live) {
    fire(check::Rule::kStreamMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  if (!e.recorded) {
    // HIP semantics: the wait is a completed no-op; the checker flags the
    // ordering bug but the call still succeeds.
    fire(check::Rule::kEventMisuse);
    return ModelError::kSuccess;
  }
  join(stream_vc_[key_of(stream)], e.vc);
  return ModelError::kSuccess;
}

ModelError HipModel::event_elapsed(int start, int stop) {
  Event& s = events_[static_cast<std::size_t>(start)];
  Event& p = events_[static_cast<std::size_t>(stop)];
  if (!s.live || !p.live || !s.recorded || !p.recorded) {
    // One diagnostic regardless of how many operands are bad: destroyed
    // handles win over never-recorded in the shim's dispatch.
    fire(check::Rule::kEventMisuse);
    return ModelError::kInvalidResourceHandle;
  }
  if (s.device != p.device) return ModelError::kInvalidValue;  // no diag
  if (s.record_stream == p.record_stream && s.record_seq > p.record_seq) {
    fire(check::Rule::kEventMisuse);  // stop recorded before start
  }
  return ModelError::kSuccess;
}

// --- teardown ------------------------------------------------------------

void HipModel::teardown_leak_scan() {
  std::size_t tracked_live = 0;
  for (const auto& [base, alloc] : allocs_) {
    if (alloc.live) {
      ++tracked_live;
      fire(check::Rule::kLeak);
    }
  }
  for (const Stream& s : streams_) {
    if (s.live) fire(check::Rule::kLeak);
  }
  for (const Event& e : events_) {
    if (e.live) fire(check::Rule::kLeak);
  }
  // Census cross-check against the simulator's own live count. The two
  // can disagree: a hipFree of a stale pointer that lands *inside* a
  // live reused range tombstones the checker's tracking entry, but the
  // shim (owner lookup failed) never frees the sim allocation — so the
  // sim census exceeds tracked_live and the checker emits one extra
  // "allocated outside the shim" leak diagnostic.
  if (sim_live_ > tracked_live) fire(check::Rule::kLeak);
}

}  // namespace exa::qa
