#pragma once
/// \file offload.hpp
/// An OpenMP-target-offload-flavored API over the simulated device — the
/// §2.2 playbook as code:
///
///  * structured TARGET DATA regions (RAII) holding *persistent* device
///    arrays mapped once;
///  * TARGET UPDATE TO/FROM for host/device synchronization inside a
///    region, with NOWAIT for concurrent execution;
///  * unstructured TARGET ENTER/EXIT DATA pairs;
///  * USE_DEVICE_PTR to obtain the device pointer for GPU-aware MPI;
///  * TARGET TEAMS DISTRIBUTE PARALLEL FOR loop offload.
///
/// Mapping semantics are real: the device copy is distinct storage, and
/// host code observes stale data until an UPDATE FROM — exactly the bug
/// class the §5 trainings covered.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hip/hip_runtime.hpp"

namespace exa::omp {

/// Data-motion direction of a map clause.
enum class MapType { kTo, kFrom, kToFrom, kAlloc };

/// The device data environment: tracks host->device mappings with
/// reference counts (OpenMP present-table semantics).
class DeviceDataEnvironment {
 public:
  static DeviceDataEnvironment& instance();

  /// Maps [host, host+bytes) onto the device; increments the refcount if
  /// already present. kTo/kToFrom copy host content to the device.
  void enter(void* host, std::size_t bytes, MapType type);
  /// Decrements the refcount; on release, kFrom/kToFrom copy device
  /// content back and the device buffer is freed.
  void exit(void* host, MapType type);
  /// TARGET UPDATE TO/FROM for a present mapping.
  void update_to(void* host, bool nowait = false);
  void update_from(void* host, bool nowait = false);
  /// USE_DEVICE_PTR: the device pointer of a present mapping.
  [[nodiscard]] void* use_device_ptr(void* host) const;
  [[nodiscard]] bool is_present(const void* host) const;
  [[nodiscard]] std::size_t mapped_count() const { return table_.size(); }
  /// Drops every mapping (no copy-back); used when the runtime is
  /// reconfigured under the environment's feet.
  void reset();

  /// Device-side buffer access for the loop executor (data lives there
  /// between kernels — the persistence the paper's §2.2 recommends).
  [[nodiscard]] std::span<std::byte> device_span(void* host) const;

 private:
  struct Mapping {
    void* device = nullptr;
    std::size_t bytes = 0;
    int refcount = 0;
  };
  std::map<void*, Mapping> table_;
};

/// RAII structured TARGET DATA region.
class TargetData {
 public:
  struct Clause {
    void* host;
    std::size_t bytes;
    MapType type;
  };
  explicit TargetData(std::vector<Clause> clauses);
  ~TargetData();
  TargetData(const TargetData&) = delete;
  TargetData& operator=(const TargetData&) = delete;

 private:
  std::vector<Clause> clauses_;
};

/// Convenience clause builders.
template <typename T>
TargetData::Clause map_to(std::span<T> data) {
  return {data.data(), data.size_bytes(), MapType::kTo};
}
template <typename T>
TargetData::Clause map_from(std::span<T> data) {
  return {data.data(), data.size_bytes(), MapType::kFrom};
}
template <typename T>
TargetData::Clause map_tofrom(std::span<T> data) {
  return {data.data(), data.size_bytes(), MapType::kToFrom};
}
template <typename T>
TargetData::Clause map_alloc(std::span<T> data) {
  return {data.data(), data.size_bytes(), MapType::kAlloc};
}

/// Per-iteration cost estimate for target_teams_distribute (same role as
/// pfw::WorkCost).
struct LoopCost {
  double flops = 10.0;
  double bytes = 24.0;
  int registers = 48;
};

/// TARGET TEAMS DISTRIBUTE PARALLEL FOR: executes body(i) over the
/// *device* copies of the mapped arrays. `spans` lists the mappings the
/// loop touches; the body receives device-side element access through the
/// DeviceView helper below.
void target_teams_distribute(const std::string& name, std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             const LoopCost& cost = {});

/// Typed device-side view of a mapped host array (what the compiler's
/// implicit device pointers give an offloaded loop body).
template <typename T>
class DeviceView {
 public:
  explicit DeviceView(std::span<T> host_array)
      : data_(reinterpret_cast<T*>(
            DeviceDataEnvironment::instance().device_span(host_array.data())
                .data())),
        size_(host_array.size()) {}

  [[nodiscard]] T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  T* data_;
  std::size_t size_;
};

}  // namespace exa::omp
