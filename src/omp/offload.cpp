#include "omp/offload.hpp"

#include <cstring>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::omp {

DeviceDataEnvironment& DeviceDataEnvironment::instance() {
  static DeviceDataEnvironment env;
  return env;
}

namespace {

hip::Runtime& rt() { return hip::Runtime::instance(); }

}  // namespace

void DeviceDataEnvironment::enter(void* host, std::size_t bytes,
                                  MapType type) {
  EXA_REQUIRE(host != nullptr);
  EXA_REQUIRE(bytes > 0);
  const auto it = table_.find(host);
  if (it != table_.end()) {
    // Present-table semantics: nested maps just bump the refcount; no
    // data motion for an already-present object.
    EXA_REQUIRE_MSG(it->second.bytes == bytes,
                    "remapping a host object with a different size");
    ++it->second.refcount;
    return;
  }
  Mapping m;
  m.bytes = bytes;
  m.refcount = 1;
  m.device = rt().current_device().malloc_device(bytes);
  rt().register_ptr(m.device, rt().current());
  if (type == MapType::kTo || type == MapType::kToFrom) {
    std::memcpy(m.device, host, bytes);
    rt().current_device().transfer_sync(sim::TransferKind::kHostToDevice,
                                        static_cast<double>(bytes));
  }
  table_.emplace(host, m);
}

void DeviceDataEnvironment::exit(void* host, MapType type) {
  const auto it = table_.find(host);
  EXA_REQUIRE_MSG(it != table_.end(), "exit of an unmapped host object");
  Mapping& m = it->second;
  if (--m.refcount > 0) return;
  if (type == MapType::kFrom || type == MapType::kToFrom) {
    std::memcpy(host, m.device, m.bytes);
    rt().current_device().transfer_sync(sim::TransferKind::kDeviceToHost,
                                        static_cast<double>(m.bytes));
  }
  rt().unregister_ptr(m.device);
  rt().current_device().free_device(m.device);
  table_.erase(it);
}

void DeviceDataEnvironment::update_to(void* host, bool nowait) {
  const auto it = table_.find(host);
  EXA_REQUIRE_MSG(it != table_.end(), "TARGET UPDATE of an unmapped object");
  std::memcpy(it->second.device, host, it->second.bytes);
  if (nowait) {
    rt().current_device().transfer_async(
        0, sim::TransferKind::kHostToDevice,
        static_cast<double>(it->second.bytes));
  } else {
    rt().current_device().transfer_sync(
        sim::TransferKind::kHostToDevice,
        static_cast<double>(it->second.bytes));
  }
}

void DeviceDataEnvironment::update_from(void* host, bool nowait) {
  const auto it = table_.find(host);
  EXA_REQUIRE_MSG(it != table_.end(), "TARGET UPDATE of an unmapped object");
  std::memcpy(host, it->second.device, it->second.bytes);
  if (nowait) {
    rt().current_device().transfer_async(
        0, sim::TransferKind::kDeviceToHost,
        static_cast<double>(it->second.bytes));
  } else {
    rt().current_device().transfer_sync(
        sim::TransferKind::kDeviceToHost,
        static_cast<double>(it->second.bytes));
  }
}

void* DeviceDataEnvironment::use_device_ptr(void* host) const {
  const auto it = table_.find(host);
  EXA_REQUIRE_MSG(it != table_.end(), "USE_DEVICE_PTR of an unmapped object");
  return it->second.device;
}

bool DeviceDataEnvironment::is_present(const void* host) const {
  return table_.count(const_cast<void*>(host)) > 0;
}

void DeviceDataEnvironment::reset() { table_.clear(); }

std::span<std::byte> DeviceDataEnvironment::device_span(void* host) const {
  const auto it = table_.find(host);
  EXA_REQUIRE_MSG(it != table_.end(),
                  "offloaded loop touches an unmapped host object");
  return {static_cast<std::byte*>(it->second.device), it->second.bytes};
}

TargetData::TargetData(std::vector<Clause> clauses)
    : clauses_(std::move(clauses)) {
  for (const Clause& c : clauses_) {
    DeviceDataEnvironment::instance().enter(c.host, c.bytes, c.type);
  }
}

TargetData::~TargetData() {
  // Release in reverse order, as nested regions unwind.
  for (auto it = clauses_.rbegin(); it != clauses_.rend(); ++it) {
    DeviceDataEnvironment::instance().exit(it->host, it->type);
  }
}

void target_teams_distribute(const std::string& name, std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             const LoopCost& cost) {
  if (n == 0) return;
  sim::KernelProfile profile;
  profile.name = name;
  const double dn = static_cast<double>(n);
  profile.add_flops(arch::DType::kF64, cost.flops * dn);
  profile.bytes_read = 0.7 * cost.bytes * dn;
  profile.bytes_written = 0.3 * cost.bytes * dn;
  profile.registers_per_thread = cost.registers;
  sim::LaunchConfig cfg;
  cfg.block_threads = 256;
  cfg.blocks = std::max<std::uint64_t>(1, (n + 255) / 256);
  const hip::hipError_t err = hip::hipLaunchTimedEXA(profile, cfg);
  EXA_REQUIRE(err == hip::hipSuccess);
  support::ThreadPool::global().for_each(
      0, n, [&body](std::size_t i) { body(i); });
}

}  // namespace exa::omp
