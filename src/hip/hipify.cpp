#include "hip/hipify.hpp"

#include <algorithm>
#include <cctype>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace exa::hip::hipify {

namespace {

using support::is_identifier_char;

std::vector<Mapping> build_table() {
  std::vector<Mapping> t;
  auto add = [&t](const char* cuda, const char* hip, bool deprecated = false) {
    t.push_back(Mapping{cuda, hip, deprecated});
  };

  // Headers.
  add("cuda_runtime.h", "hip/hip_runtime.h");
  add("cuda_runtime_api.h", "hip/hip_runtime_api.h");
  add("cuda.h", "hip/hip_runtime.h");
  add("cuda_fp16.h", "hip/hip_fp16.h");

  // Device & context management.
  add("cudaGetDeviceCount", "hipGetDeviceCount");
  add("cudaSetDevice", "hipSetDevice");
  add("cudaGetDevice", "hipGetDevice");
  add("cudaDeviceSynchronize", "hipDeviceSynchronize");
  add("cudaDeviceReset", "hipDeviceReset");
  add("cudaGetDeviceProperties", "hipGetDeviceProperties");
  add("cudaDeviceProp", "hipDeviceProp_t");
  add("cudaDriverGetVersion", "hipDriverGetVersion");
  add("cudaRuntimeGetVersion", "hipRuntimeGetVersion");

  // Memory.
  add("cudaMalloc", "hipMalloc");
  add("cudaMallocManaged", "hipMallocManaged");
  add("cudaMallocHost", "hipHostMalloc");
  add("cudaHostAlloc", "hipHostMalloc");
  add("cudaFree", "hipFree");
  add("cudaFreeHost", "hipHostFree");
  add("cudaMemcpy", "hipMemcpy");
  add("cudaMemcpyAsync", "hipMemcpyAsync");
  add("cudaMemset", "hipMemset");
  add("cudaMemsetAsync", "hipMemsetAsync");
  add("cudaMemGetInfo", "hipMemGetInfo");
  add("cudaMemPrefetchAsync", "hipMemPrefetchAsync");
  add("cudaMemcpyKind", "hipMemcpyKind");
  add("cudaMemcpyHostToHost", "hipMemcpyHostToHost");
  add("cudaMemcpyHostToDevice", "hipMemcpyHostToDevice");
  add("cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost");
  add("cudaMemcpyDeviceToDevice", "hipMemcpyDeviceToDevice");
  add("cudaMemcpyDefault", "hipMemcpyDefault");

  // Streams & events.
  add("cudaStream_t", "hipStream_t");
  add("cudaStreamCreate", "hipStreamCreate");
  add("cudaStreamDestroy", "hipStreamDestroy");
  add("cudaStreamSynchronize", "hipStreamSynchronize");
  add("cudaStreamQuery", "hipStreamQuery");
  add("cudaStreamWaitEvent", "hipStreamWaitEvent");
  add("cudaEvent_t", "hipEvent_t");
  add("cudaEventCreate", "hipEventCreate");
  add("cudaEventDestroy", "hipEventDestroy");
  add("cudaEventRecord", "hipEventRecord");
  add("cudaEventSynchronize", "hipEventSynchronize");
  add("cudaEventElapsedTime", "hipEventElapsedTime");

  // Errors.
  add("cudaError_t", "hipError_t");
  add("cudaError", "hipError_t");
  add("cudaSuccess", "hipSuccess");
  add("cudaErrorMemoryAllocation", "hipErrorOutOfMemory");
  add("cudaErrorInvalidValue", "hipErrorInvalidValue");
  add("cudaErrorNotReady", "hipErrorNotReady");
  add("cudaGetErrorString", "hipGetErrorString");
  add("cudaGetLastError", "hipGetLastError");
  add("cudaPeekAtLastError", "hipPeekAtLastError");

  // Launch bookkeeping.
  add("cudaLaunchKernel", "hipLaunchKernel");
  add("cudaFuncSetCacheConfig", "hipFuncSetCacheConfig");
  add("cudaFuncAttributes", "hipFuncAttributes");
  add("cudaOccupancyMaxActiveBlocksPerMultiprocessor",
      "hipOccupancyMaxActiveBlocksPerMultiprocessor");

  // Outdated CUDA (pre-4.0 "thread" naming): still translated, but flagged
  // as the manual-review cases §2.1 calls out.
  add("cudaThreadSynchronize", "hipDeviceSynchronize", /*deprecated=*/true);
  add("cudaThreadExit", "hipDeviceReset", /*deprecated=*/true);
  add("cudaThreadSetLimit", "hipDeviceSetLimit", /*deprecated=*/true);
  add("cudaMemcpyToSymbol", "hipMemcpyToSymbol", /*deprecated=*/true);
  add("cudaMemcpyFromSymbol", "hipMemcpyFromSymbol", /*deprecated=*/true);
  add("cudaBindTexture", "hipBindTexture", /*deprecated=*/true);
  add("cudaUnbindTexture", "hipUnbindTexture", /*deprecated=*/true);

  // Libraries: cuBLAS -> hipBLAS (interfaces "close to or identical", §3.6).
  add("cublasHandle_t", "hipblasHandle_t");
  add("cublasCreate", "hipblasCreate");
  add("cublasDestroy", "hipblasDestroy");
  add("cublasSgemm", "hipblasSgemm");
  add("cublasDgemm", "hipblasDgemm");
  add("cublasZgemm", "hipblasZgemm");
  add("cublasGemmEx", "hipblasGemmEx");
  add("cublasStatus_t", "hipblasStatus_t");
  add("cublasSetStream", "hipblasSetStream");
  // cuFFT -> hipFFT.
  add("cufftHandle", "hipfftHandle");
  add("cufftPlan1d", "hipfftPlan1d");
  add("cufftPlan3d", "hipfftPlan3d");
  add("cufftExecZ2Z", "hipfftExecZ2Z");
  add("cufftExecC2C", "hipfftExecC2C");
  add("cufftDestroy", "hipfftDestroy");
  add("cufftDoubleComplex", "hipfftDoubleComplex");
  // cuRAND -> hipRAND.
  add("curandGenerator_t", "hiprandGenerator_t");
  add("curandCreateGenerator", "hiprandCreateGenerator");
  add("curandGenerateUniform", "hiprandGenerateUniform");
  // cuSOLVER -> rocSOLVER-style names (the LSMS §3.2 path).
  add("cusolverDnHandle_t", "rocblas_handle");
  add("cusolverDnZgetrf", "rocsolver_zgetrf");
  add("cusolverDnZgetrs", "rocsolver_zgetrs");

  return t;
}

/// Returns true when source[pos] starts a full identifier occurrence of
/// `word` (boundary-checked on both sides).
bool matches_identifier(std::string_view source, std::size_t pos,
                        std::string_view word) {
  if (pos + word.size() > source.size()) return false;
  if (source.substr(pos, word.size()) != word) return false;
  if (pos > 0 && is_identifier_char(source[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < source.size() && is_identifier_char(source[end]) &&
      source[end] != '.') {
    return false;
  }
  return true;
}

/// Splits a top-level comma-separated argument list (respects nesting of
/// (), [], {}, and <>... sufficient for launch parameter lists).
std::vector<std::string> split_top_level(std::string_view text) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      parts.emplace_back(support::trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  parts.emplace_back(support::trim(text.substr(start)));
  return parts;
}

/// Scanner state for skipping comments and string/char literals.
struct Scanner {
  std::string_view src;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= src.size(); }

  /// If `pos` is at the start of a comment or literal, appends it verbatim
  /// to `out`, advances past it, and returns true.
  bool consume_passive(std::string& out) {
    literal = {};
    if (done()) return false;
    const char c = src[pos];
    if (c == '/' && pos + 1 < src.size()) {
      if (src[pos + 1] == '/') {
        const std::size_t end = src.find('\n', pos);
        const std::size_t stop = end == std::string_view::npos ? src.size() : end;
        out.append(src.substr(pos, stop - pos));
        pos = stop;
        return true;
      }
      if (src[pos + 1] == '*') {
        const std::size_t end = src.find("*/", pos + 2);
        const std::size_t stop =
            end == std::string_view::npos ? src.size() : end + 2;
        out.append(src.substr(pos, stop - pos));
        pos = stop;
        return true;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t i = pos + 1;
      while (i < src.size()) {
        if (src[i] == '\\') {
          i += 2;
          continue;
        }
        if (src[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      literal = src.substr(pos, std::min(i, src.size()) - pos);
      pos = std::min(i, src.size());
      out.append(literal);
      return true;
    }
    return false;
  }

  /// The most recently consumed literal (including quotes); empty when the
  /// last consume_passive call handled a comment.
  std::string_view literal;
};

/// Attempts to convert a `name<<<...>>>(args);` launch starting at the
/// position of the kernel-name identifier. Returns true (and appends the
/// hipLaunchKernelGGL form) on success.
bool try_convert_launch(std::string_view src, std::size_t& pos,
                        std::string& out) {
  // Identifier.
  std::size_t i = pos;
  if (!is_identifier_char(src[i]) || std::isdigit(static_cast<unsigned char>(src[i]))) {
    return false;
  }
  while (i < src.size() && is_identifier_char(src[i])) ++i;
  const std::string_view name = src.substr(pos, i - pos);
  // Optional template args on the kernel name: skip `<...>` only if it is
  // immediately followed (after the close) by `<<<`; too rare to support —
  // keep it simple and require `<<<` directly.
  std::size_t j = i;
  while (j < src.size() && std::isspace(static_cast<unsigned char>(src[j]))) ++j;
  if (j + 3 > src.size() || src.substr(j, 3) != "<<<") return false;

  const std::size_t cfg_begin = j + 3;
  const std::size_t cfg_end = src.find(">>>", cfg_begin);
  if (cfg_end == std::string_view::npos) return false;
  std::vector<std::string> cfg =
      split_top_level(src.substr(cfg_begin, cfg_end - cfg_begin));
  if (cfg.size() < 2 || cfg.size() > 4) return false;
  while (cfg.size() < 3) cfg.emplace_back("0");        // shared mem
  while (cfg.size() < 4) cfg.emplace_back("0");        // stream

  std::size_t k = cfg_end + 3;
  while (k < src.size() && std::isspace(static_cast<unsigned char>(src[k]))) ++k;
  if (k >= src.size() || src[k] != '(') return false;
  // Find the matching close paren.
  int depth = 0;
  std::size_t args_begin = k + 1;
  std::size_t args_end = std::string_view::npos;
  for (std::size_t p = k; p < src.size(); ++p) {
    if (src[p] == '(') ++depth;
    if (src[p] == ')') {
      --depth;
      if (depth == 0) {
        args_end = p;
        break;
      }
    }
  }
  if (args_end == std::string_view::npos) return false;

  const std::string_view args = src.substr(args_begin, args_end - args_begin);
  out.append("hipLaunchKernelGGL(").append(name);
  out.append(", ").append(cfg[0]);
  out.append(", ").append(cfg[1]);
  out.append(", ").append(cfg[2]);
  out.append(", ").append(cfg[3]);
  if (!support::trim(args).empty()) out.append(", ").append(args);
  out.append(")");
  pos = args_end + 1;
  return true;
}

}  // namespace

const std::vector<Mapping>& api_table() {
  static const std::vector<Mapping> table = build_table();
  return table;
}

TranslationReport translate(std::string_view cuda_source) {
  TranslationReport report;
  const auto& table = api_table();
  std::string& out = report.output;
  out.reserve(cuda_source.size() + cuda_source.size() / 8);

  Scanner scan{cuda_source, 0, {}};
  while (!scan.done()) {
    const std::size_t before = out.size();
    if (scan.consume_passive(out)) {
      // `#include "cuda_runtime.h"` style headers live inside string
      // literals; translate those too.
      if (!scan.literal.empty()) {
        for (const auto& m : table) {
          if (!support::ends_with(m.cuda, ".h")) continue;
          const std::string quoted = "\"" + m.cuda + "\"";
          if (out.size() - before == quoted.size() &&
              out.compare(before, quoted.size(), quoted) == 0) {
            out.replace(before, quoted.size(), "\"" + m.hip + "\"");
            ++report.replacements;
            ++report.by_identifier[m.cuda];
            break;
          }
        }
        scan.literal = {};
      }
      continue;
    }
    const char c = cuda_source[scan.pos];

    if (is_identifier_char(c) &&
        (scan.pos == 0 || !is_identifier_char(cuda_source[scan.pos - 1]))) {
      // Launch conversion first: the kernel name is an identifier too.
      if (try_convert_launch(cuda_source, scan.pos, out)) {
        ++report.launches_converted;
        ++report.replacements;
        continue;
      }
      // Table lookup (longest match wins; table entries are unique names,
      // but e.g. cudaMemcpy vs cudaMemcpyAsync share a prefix).
      const Mapping* best = nullptr;
      for (const auto& m : table) {
        if (matches_identifier(cuda_source, scan.pos, m.cuda)) {
          if (best == nullptr || m.cuda.size() > best->cuda.size()) best = &m;
        }
      }
      if (best != nullptr) {
        out.append(best->hip);
        ++report.replacements;
        ++report.by_identifier[best->cuda];
        if (best->deprecated) {
          report.warnings.push_back("outdated CUDA syntax: " + best->cuda +
                                    " (translated to " + best->hip +
                                    "; review manually)");
        }
        scan.pos += best->cuda.size();
        continue;
      }
      // Unrecognized CUDA-looking identifier?
      std::size_t end = scan.pos;
      while (end < cuda_source.size() && is_identifier_char(cuda_source[end])) {
        ++end;
      }
      const std::string word(cuda_source.substr(scan.pos, end - scan.pos));
      if ((support::starts_with(word, "cuda") ||
           support::starts_with(word, "cublas") ||
           support::starts_with(word, "cufft") ||
           support::starts_with(word, "curand") ||
           support::starts_with(word, "cusolver")) &&
          std::find(report.unrecognized.begin(), report.unrecognized.end(),
                    word) == report.unrecognized.end()) {
        report.unrecognized.push_back(word);
      }
      out.append(word);
      scan.pos = end;
      continue;
    }

    out.push_back(c);
    ++scan.pos;
  }
  return report;
}

}  // namespace exa::hip::hipify
