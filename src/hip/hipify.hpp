#pragma once
/// \file hipify.hpp
/// A source-to-source CUDA -> HIP translator, reproducing the "hipify"
/// tool the paper's §2.1 evaluated on the SHOC suite.
///
/// The translator:
///  * rewrites CUDA runtime/driver/library identifiers to their HIP
///    equivalents at identifier boundaries (never inside other names),
///    skipping string literals and comments;
///  * converts triple-chevron launches `k<<<g, b[, shmem[, stream]]>>>(args)`
///    into `hipLaunchKernelGGL(k, g, b, shmem, stream, args)`;
///  * rewrites CUDA headers to HIP headers;
///  * flags *outdated* CUDA syntax (the paper: "the primary exception being
///    code that used outdated CUDA syntax") and any unrecognized cuda*/cu*
///    identifiers as requiring manual attention.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace exa::hip::hipify {

/// One identifier mapping in the translation table.
struct Mapping {
  std::string cuda;
  std::string hip;
  bool deprecated = false;  ///< outdated CUDA syntax: translated, but flagged
};

/// Outcome of translating one source file.
struct TranslationReport {
  std::string output;
  int replacements = 0;
  std::map<std::string, int> by_identifier;
  /// Outdated CUDA constructs encountered (translated best-effort).
  std::vector<std::string> warnings;
  /// cuda*/cu*/__*-looking identifiers with no table entry (left as-is).
  std::vector<std::string> unrecognized;
  int launches_converted = 0;

  /// True when the port required no manual follow-up — the common case the
  /// paper reports ("the hipify tool converted the bulk of the code
  /// automatically").
  [[nodiscard]] bool fully_automatic() const {
    return warnings.empty() && unrecognized.empty();
  }
};

/// The identifier translation table (runtime API, types, enums, and the
/// cuBLAS/cuFFT/cuRAND -> hipBLAS/hipFFT/hipRAND library prefixes).
[[nodiscard]] const std::vector<Mapping>& api_table();

/// Translates CUDA source text to HIP.
[[nodiscard]] TranslationReport translate(std::string_view cuda_source);

}  // namespace exa::hip::hipify
