#include "hip/hip_runtime.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::hip {

// Internal handle definitions.
struct ihipStream_t {
  int device = 0;
  sim::StreamId id = 0;
  bool destroyed = false;
};
struct ihipEvent_t {
  int device = 0;
  sim::EventId id = -1;  // -1: created but never recorded
  bool destroyed = false;
};

namespace {

thread_local sim::KernelTiming g_last_timing;

sim::TransferKind to_transfer(hipMemcpyKind kind) {
  switch (kind) {
    case hipMemcpyHostToDevice: return sim::TransferKind::kHostToDevice;
    case hipMemcpyDeviceToHost: return sim::TransferKind::kDeviceToHost;
    case hipMemcpyDeviceToDevice: return sim::TransferKind::kDeviceToDevice;
    default: return sim::TransferKind::kHostToDevice;
  }
}

}  // namespace

const char* hipGetErrorString(hipError_t err) {
  switch (err) {
    case hipSuccess: return "hipSuccess";
    case hipErrorInvalidValue: return "hipErrorInvalidValue";
    case hipErrorOutOfMemory: return "hipErrorOutOfMemory";
    case hipErrorInvalidDevice: return "hipErrorInvalidDevice";
    case hipErrorInvalidDevicePointer: return "hipErrorInvalidDevicePointer";
    case hipErrorInvalidResourceHandle: return "hipErrorInvalidResourceHandle";
    case hipErrorNotReady: return "hipErrorNotReady";
  }
  return "hipErrorUnknown";
}

// --- Runtime ----------------------------------------------------------------

Runtime::Runtime() {
  configure(arch::mi250x_gcd(), 1, ApiFlavor::kHip);
}

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

void Runtime::configure(const arch::GpuArch& gpu, int count, ApiFlavor flavor) {
  EXA_REQUIRE(count >= 1);
  devices_.clear();
  ptrs_.clear();
  streams_.clear();
  events_.clear();
  devices_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices_.push_back(std::make_unique<sim::DeviceSim>(gpu));
    devices_.back()->set_trace_name("gpu" + std::to_string(i));
  }
  current_ = 0;
  flavor_ = flavor;
}

void Runtime::set_flavor(ApiFlavor flavor) { flavor_ = flavor; }

double Runtime::flavor_overhead() const {
  // HIP targeting NVIDIA is a header-only veneer over CUDA: the wrapper
  // adds only nanoseconds per call. This is why Figure 1 shows parity.
  return flavor_ == ApiFlavor::kHip ? 3.0e-8 : 0.0;
}

hipError_t Runtime::set_current(int device) {
  if (device < 0 || device >= device_count()) return hipErrorInvalidDevice;
  current_ = device;
  return hipSuccess;
}

sim::DeviceSim& Runtime::device(int index) {
  EXA_REQUIRE(index >= 0 && index < device_count());
  return *devices_[static_cast<std::size_t>(index)];
}

void Runtime::register_ptr(void* p, int device) {
  ptrs_[p] = PtrInfo{device};
}

int Runtime::owner_of(const void* p) const {
  const auto it = ptrs_.find(p);
  return it == ptrs_.end() ? -1 : it->second.device;
}

void Runtime::unregister_ptr(void* p) { ptrs_.erase(p); }

hipStream_t Runtime::make_stream(int device, sim::StreamId id) {
  streams_.push_back(std::make_unique<ihipStream_t>());
  streams_.back()->device = device;
  streams_.back()->id = id;
  return streams_.back().get();
}

hipEvent_t Runtime::make_event(int device) {
  events_.push_back(std::make_unique<ihipEvent_t>());
  events_.back()->device = device;
  return events_.back().get();
}

// --- helpers -----------------------------------------------------------------

namespace {

Runtime& rt() { return Runtime::instance(); }

sim::DeviceSim& dev() { return rt().current_device(); }

/// Charges the per-call veneer overhead of the selected API flavor.
void charge_api_call() { dev().host_advance(rt().flavor_overhead()); }

/// Resolves a stream handle to (device, stream id); nullptr is the default
/// stream of the current device.
struct ResolvedStream {
  sim::DeviceSim* device;
  sim::StreamId id;
};

hipError_t resolve(hipStream_t stream, ResolvedStream* out) {
  if (stream == nullptr) {
    *out = {&dev(), 0};
    return hipSuccess;
  }
  if (stream->destroyed) return hipErrorInvalidResourceHandle;
  *out = {&rt().device(stream->device), stream->id};
  return hipSuccess;
}

}  // namespace

// --- device management -----------------------------------------------------

hipError_t hipGetDeviceCount(int* count) {
  if (count == nullptr) return hipErrorInvalidValue;
  *count = rt().device_count();
  return hipSuccess;
}

hipError_t hipSetDevice(int device) { return rt().set_current(device); }

hipError_t hipGetDevice(int* device) {
  if (device == nullptr) return hipErrorInvalidValue;
  *device = rt().current();
  return hipSuccess;
}

hipError_t hipDeviceSynchronize() {
  charge_api_call();
  dev().synchronize_all();
  return hipSuccess;
}

// --- memory ------------------------------------------------------------------

hipError_t hipMalloc(void** ptr, std::size_t size) {
  if (ptr == nullptr || size == 0) return hipErrorInvalidValue;
  charge_api_call();
  try {
    *ptr = dev().malloc_device(size);
  } catch (const support::Error&) {
    *ptr = nullptr;
    return hipErrorOutOfMemory;
  }
  rt().register_ptr(*ptr, rt().current());
  return hipSuccess;
}

hipError_t hipMallocManaged(void** ptr, std::size_t size) {
  // Managed memory allocates like device memory here; the difference is
  // that consumers charge page-fault migrations via hipUvmFault.
  return hipMalloc(ptr, size);
}

hipError_t hipFree(void* ptr) {
  if (ptr == nullptr) return hipSuccess;  // matches HIP semantics
  const int owner = rt().owner_of(ptr);
  if (owner < 0) return hipErrorInvalidDevicePointer;
  charge_api_call();
  rt().device(owner).free_device(ptr);
  rt().unregister_ptr(ptr);
  return hipSuccess;
}

hipError_t hipMemcpy(void* dst, const void* src, std::size_t size,
                     hipMemcpyKind kind) {
  if (dst == nullptr || src == nullptr) return hipErrorInvalidValue;
  charge_api_call();
  if (size > 0) std::memcpy(dst, src, size);
  if (kind != hipMemcpyHostToHost) {
    dev().transfer_sync(to_transfer(kind), static_cast<double>(size));
  }
  return hipSuccess;
}

hipError_t hipMemcpyAsync(void* dst, const void* src, std::size_t size,
                          hipMemcpyKind kind, hipStream_t stream) {
  if (dst == nullptr || src == nullptr) return hipErrorInvalidValue;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) return err;
  charge_api_call();
  if (size > 0) std::memcpy(dst, src, size);
  if (kind != hipMemcpyHostToHost) {
    rs.device->transfer_async(rs.id, to_transfer(kind),
                              static_cast<double>(size));
  }
  return hipSuccess;
}

hipError_t hipMemset(void* dst, int value, std::size_t size) {
  if (dst == nullptr) return hipErrorInvalidValue;
  charge_api_call();
  std::memset(dst, value, size);
  // Memset runs as a small device kernel writing `size` bytes.
  sim::KernelProfile p;
  p.name = "hipMemset";
  p.bytes_written = static_cast<double>(size);
  dev().launch(0, p, sim::LaunchConfig{std::max<std::uint64_t>(1, size / 256 / 64), 64});
  return hipSuccess;
}

hipError_t hipUvmFault(const void* ptr, std::size_t size, hipMemcpyKind kind,
                       hipStream_t stream) {
  if (ptr == nullptr) return hipErrorInvalidValue;
  if (rt().owner_of(ptr) < 0) return hipErrorInvalidDevicePointer;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) return err;
  rs.device->uvm_migrate(rs.id, to_transfer(kind), static_cast<double>(size));
  return hipSuccess;
}

// --- streams ------------------------------------------------------------------

hipError_t hipStreamCreate(hipStream_t* stream) {
  if (stream == nullptr) return hipErrorInvalidValue;
  charge_api_call();
  const sim::StreamId id = dev().create_stream();
  *stream = rt().make_stream(rt().current(), id);
  return hipSuccess;
}

hipError_t hipStreamDestroy(hipStream_t stream) {
  if (stream == nullptr || stream->destroyed)
    return hipErrorInvalidResourceHandle;
  charge_api_call();
  rt().device(stream->device).destroy_stream(stream->id);
  stream->destroyed = true;
  return hipSuccess;
}

hipError_t hipStreamSynchronize(hipStream_t stream) {
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) return err;
  charge_api_call();
  rs.device->synchronize(rs.id);
  return hipSuccess;
}

hipError_t hipStreamQuery(hipStream_t stream) {
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) return err;
  return rs.device->stream_query(rs.id) ? hipSuccess : hipErrorNotReady;
}

// --- events ---------------------------------------------------------------------

hipError_t hipEventCreate(hipEvent_t* event) {
  if (event == nullptr) return hipErrorInvalidValue;
  charge_api_call();
  *event = rt().make_event(rt().current());
  return hipSuccess;
}

hipError_t hipEventDestroy(hipEvent_t event) {
  if (event == nullptr || event->destroyed)
    return hipErrorInvalidResourceHandle;
  event->destroyed = true;
  return hipSuccess;
}

hipError_t hipEventRecord(hipEvent_t event, hipStream_t stream) {
  if (event == nullptr || event->destroyed)
    return hipErrorInvalidResourceHandle;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) return err;
  charge_api_call();
  event->device = stream == nullptr ? rt().current() : stream->device;
  event->id = rs.device->record_event(rs.id);
  return hipSuccess;
}

hipError_t hipEventSynchronize(hipEvent_t event) {
  if (event == nullptr || event->destroyed || event->id < 0)
    return hipErrorInvalidResourceHandle;
  charge_api_call();
  rt().device(event->device).host_wait_event(event->id);
  return hipSuccess;
}

hipError_t hipEventElapsedTime(float* ms, hipEvent_t start, hipEvent_t stop) {
  if (ms == nullptr) return hipErrorInvalidValue;
  if (start == nullptr || stop == nullptr || start->id < 0 || stop->id < 0 ||
      start->destroyed || stop->destroyed) {
    return hipErrorInvalidResourceHandle;
  }
  if (start->device != stop->device) return hipErrorInvalidValue;
  const double sec = rt().device(start->device).elapsed(start->id, stop->id);
  *ms = static_cast<float>(sec * 1e3);
  return hipSuccess;
}

// --- kernel launch ------------------------------------------------------------

hipError_t hipLaunchTimedEXA(const sim::KernelProfile& profile,
                             const sim::LaunchConfig& cfg,
                             hipStream_t stream) {
  if (cfg.blocks == 0 || cfg.block_threads == 0) return hipErrorInvalidValue;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) return err;
  charge_api_call();
  g_last_timing = rs.device->launch(rs.id, profile, cfg);
  return hipSuccess;
}

hipError_t hipLaunchCachedEXA(const sim::KernelProfile& profile,
                              const sim::LaunchConfig& cfg,
                              sim::KernelTiming* timing, std::uint64_t* epoch,
                              hipStream_t stream) {
  if (timing == nullptr || epoch == nullptr) return hipErrorInvalidValue;
  if (cfg.blocks == 0 || cfg.block_threads == 0) return hipErrorInvalidValue;
  // Open-coded resolve(): the runtime singleton is looked up once, and the
  // common default-stream case charges the veneer overhead to the device
  // already in hand instead of re-resolving the current device.
  Runtime& r = rt();
  ResolvedStream rs{};
  if (stream == nullptr) {
    rs = {&r.current_device(), 0};
    rs.device->host_advance(r.flavor_overhead());
  } else {
    if (stream->destroyed) return hipErrorInvalidResourceHandle;
    rs = {&r.device(stream->device), stream->id};
    // The veneer overhead is charged to the *current* device (the caller's
    // thread), which may differ from the stream's device.
    r.current_device().host_advance(r.flavor_overhead());
  }
  if (*epoch == rs.device->cost_epoch()) {
    g_last_timing = rs.device->launch_prepared(rs.id, *timing, profile.name);
  } else {
    g_last_timing = rs.device->launch(rs.id, profile, cfg);
    *timing = g_last_timing;
    *epoch = rs.device->cost_epoch();
  }
  return hipSuccess;
}

hipError_t hipLaunchKernelEXA(const Kernel& kernel, sim::LaunchConfig cfg,
                              hipStream_t stream) {
  // Virtual time.
  const hipError_t err = hipLaunchTimedEXA(kernel.profile, cfg, stream);
  if (err != hipSuccess) return err;

  // Functional execution (host threads).
  if (kernel.bulk_body) kernel.bulk_body();
  if (kernel.body) {
    const std::uint64_t total = cfg.total_threads();
    support::ThreadPool::global().for_chunks(
        0, total, [&kernel, &cfg](std::size_t lo, std::size_t hi) {
          KernelContext ctx;
          ctx.block_dim = cfg.block_threads;
          for (std::size_t i = lo; i < hi; ++i) {
            ctx.global_id = i;
            ctx.block_id = i / cfg.block_threads;
            ctx.thread_id = static_cast<std::uint32_t>(i % cfg.block_threads);
            kernel.body(ctx);
          }
        });
  }
  return hipSuccess;
}

const sim::KernelTiming& hipLastLaunchTiming() { return g_last_timing; }

double hipHostTimeSec() { return dev().host_now(); }

void hipHostBusy(double seconds) { dev().host_advance(seconds); }

}  // namespace exa::hip
