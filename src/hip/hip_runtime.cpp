#include "hip/hip_runtime.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::hip {

// Internal handle definitions.
struct ihipStream_t {
  int device = 0;
  sim::StreamId id = 0;
  bool destroyed = false;
};
struct ihipEvent_t {
  int device = 0;
  sim::EventId id = -1;  // -1: created but never recorded
  bool destroyed = false;
};

namespace {

thread_local sim::KernelTiming g_last_timing;

sim::TransferKind to_transfer(hipMemcpyKind kind) {
  switch (kind) {
    case hipMemcpyHostToDevice: return sim::TransferKind::kHostToDevice;
    case hipMemcpyDeviceToHost: return sim::TransferKind::kDeviceToHost;
    case hipMemcpyDeviceToDevice: return sim::TransferKind::kDeviceToDevice;
    default: return sim::TransferKind::kHostToDevice;
  }
}

check::CopyDir to_copy_dir(hipMemcpyKind kind) {
  switch (kind) {
    case hipMemcpyHostToHost: return check::CopyDir::kHostToHost;
    case hipMemcpyDeviceToHost: return check::CopyDir::kDeviceToHost;
    case hipMemcpyDeviceToDevice: return check::CopyDir::kDeviceToDevice;
    default: return check::CopyDir::kHostToDevice;
  }
}

check::Checker& checker() { return check::Checker::instance(); }

}  // namespace

const char* hipGetErrorString(hipError_t err) {
  switch (err) {
    case hipSuccess: return "hipSuccess";
    case hipErrorInvalidValue: return "hipErrorInvalidValue";
    case hipErrorOutOfMemory: return "hipErrorOutOfMemory";
    case hipErrorInvalidDevice: return "hipErrorInvalidDevice";
    case hipErrorInvalidDevicePointer: return "hipErrorInvalidDevicePointer";
    case hipErrorInvalidResourceHandle: return "hipErrorInvalidResourceHandle";
    case hipErrorNotReady: return "hipErrorNotReady";
  }
  return "hipErrorUnknown";
}

// --- Runtime ----------------------------------------------------------------

Runtime::Runtime() {
  configure(arch::mi250x_gcd(), 1, ApiFlavor::kHip);
}

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

void Runtime::configure(const arch::GpuArch& gpu, int count, ApiFlavor flavor) {
  EXA_REQUIRE(count >= 1);
  if (check::Checker::armed()) {
    // Reconfiguration destroys every device: leak-scan the outgoing
    // generation, cross-checked against each simulator's own census.
    std::vector<std::pair<std::string, std::size_t>> census;
    census.reserve(devices_.size());
    for (const auto& d : devices_) {
      census.emplace_back(d->trace_name(), d->live_allocation_count());
    }
    check::Checker::instance().on_configure(census);
  }
  devices_.clear();
  ptrs_.clear();
  streams_.clear();
  events_.clear();
  devices_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices_.push_back(std::make_unique<sim::DeviceSim>(gpu));
    devices_.back()->set_trace_name("gpu" + std::to_string(i));
  }
  current_ = 0;
  flavor_ = flavor;
}

void Runtime::set_flavor(ApiFlavor flavor) { flavor_ = flavor; }

double Runtime::flavor_overhead() const {
  // HIP targeting NVIDIA is a header-only veneer over CUDA: the wrapper
  // adds only nanoseconds per call. This is why Figure 1 shows parity.
  return flavor_ == ApiFlavor::kHip ? 3.0e-8 : 0.0;
}

hipError_t Runtime::set_current(int device) {
  if (device < 0 || device >= device_count()) return hipErrorInvalidDevice;
  current_ = device;
  return hipSuccess;
}

sim::DeviceSim& Runtime::device(int index) {
  EXA_REQUIRE(index >= 0 && index < device_count());
  return *devices_[static_cast<std::size_t>(index)];
}

void Runtime::register_ptr(void* p, int device) {
  ptrs_[p] = PtrInfo{device};
}

int Runtime::owner_of(const void* p) const {
  const auto it = ptrs_.find(p);
  return it == ptrs_.end() ? -1 : it->second.device;
}

void Runtime::unregister_ptr(void* p) { ptrs_.erase(p); }

hipStream_t Runtime::make_stream(int device, sim::StreamId id) {
  streams_.push_back(std::make_unique<ihipStream_t>());
  streams_.back()->device = device;
  streams_.back()->id = id;
  return streams_.back().get();
}

hipEvent_t Runtime::make_event(int device) {
  events_.push_back(std::make_unique<ihipEvent_t>());
  events_.back()->device = device;
  return events_.back().get();
}

// --- helpers -----------------------------------------------------------------

namespace {

Runtime& rt() { return Runtime::instance(); }

sim::DeviceSim& dev() { return rt().current_device(); }

/// Charges the per-call veneer overhead of the selected API flavor.
void charge_api_call() { dev().host_advance(rt().flavor_overhead()); }

/// Resolves a stream handle to (device, stream id); nullptr is the default
/// stream of the current device.
struct ResolvedStream {
  sim::DeviceSim* device;
  sim::StreamId id;
};

hipError_t resolve(hipStream_t stream, ResolvedStream* out) {
  if (stream == nullptr) {
    *out = {&dev(), 0};
    return hipSuccess;
  }
  if (stream->destroyed) return hipErrorInvalidResourceHandle;
  *out = {&rt().device(stream->device), stream->id};
  return hipSuccess;
}

/// The checker's identity for a stream handle (default stream = {dev, 0}).
check::StreamKey key_of(hipStream_t stream) {
  if (stream == nullptr) return check::StreamKey{rt().current(), 0};
  return check::StreamKey{stream->device, static_cast<int>(stream->id)};
}

}  // namespace

// --- device management -----------------------------------------------------

hipError_t hipGetDeviceCount(int* count) {
  if (count == nullptr) return hipErrorInvalidValue;
  *count = rt().device_count();
  return hipSuccess;
}

hipError_t hipSetDevice(int device) { return rt().set_current(device); }

hipError_t hipGetDevice(int* device) {
  if (device == nullptr) return hipErrorInvalidValue;
  *device = rt().current();
  return hipSuccess;
}

hipError_t hipDeviceSynchronize() {
  charge_api_call();
  dev().synchronize_all();
  if (check::Checker::armed()) checker().on_device_sync(rt().current());
  return hipSuccess;
}

// --- memory ------------------------------------------------------------------

namespace {

hipError_t malloc_impl(void** ptr, std::size_t size, bool managed) {
  if (ptr == nullptr || size == 0) return hipErrorInvalidValue;
  charge_api_call();
  try {
    *ptr = dev().malloc_device(size);
  } catch (const support::Error&) {
    *ptr = nullptr;
    return hipErrorOutOfMemory;
  }
  rt().register_ptr(*ptr, rt().current());
  if (check::Checker::armed()) {
    checker().on_alloc(*ptr, size, rt().current(), managed);
  }
  return hipSuccess;
}

}  // namespace

hipError_t hipMalloc(void** ptr, std::size_t size) {
  return malloc_impl(ptr, size, /*managed=*/false);
}

hipError_t hipMallocManaged(void** ptr, std::size_t size) {
  // Managed memory allocates like device memory here; the difference is
  // that consumers charge page-fault migrations via hipUvmFault.
  return malloc_impl(ptr, size, /*managed=*/true);
}

hipError_t hipFree(void* ptr) {
  if (ptr == nullptr) return hipSuccess;  // matches HIP semantics
  const int owner = rt().owner_of(ptr);
  if (check::Checker::armed()) {
    // Diagnoses double-free / foreign-device / free-while-in-flight and
    // tombstones the allocation; the shim's own error paths still decide
    // the returned status below.
    (void)checker().on_free(ptr, owner, rt().current());
  }
  if (owner < 0) return hipErrorInvalidDevicePointer;
  // Freeing another device's pointer is invalid (matches HIP: allocations
  // are owned by the device they were created on).
  if (owner != rt().current()) return hipErrorInvalidValue;
  charge_api_call();
  rt().device(owner).free_device(ptr);
  rt().unregister_ptr(ptr);
  return hipSuccess;
}

hipError_t hipMemcpy(void* dst, const void* src, std::size_t size,
                     hipMemcpyKind kind) {
  if (dst == nullptr || src == nullptr) return hipErrorInvalidValue;
  if (check::Checker::armed()) {
    if (!checker().on_copy(dst, src, size, to_copy_dir(kind),
                           key_of(nullptr), /*async=*/false,
                           dev().stream_ready(0), "hipMemcpy")) {
      return hipErrorInvalidValue;  // vetoed: would touch freed memory
    }
  }
  charge_api_call();
  if (size > 0) std::memcpy(dst, src, size);
  if (kind != hipMemcpyHostToHost) {
    dev().transfer_sync(to_transfer(kind), static_cast<double>(size));
  }
  return hipSuccess;
}

hipError_t hipMemcpyAsync(void* dst, const void* src, std::size_t size,
                          hipMemcpyKind kind, hipStream_t stream) {
  if (dst == nullptr || src == nullptr) return hipErrorInvalidValue;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipMemcpyAsync");
    }
    return err;
  }
  if (check::Checker::armed()) {
    if (!checker().on_copy(dst, src, size, to_copy_dir(kind), key_of(stream),
                           /*async=*/true, rs.device->stream_ready(rs.id),
                           "hipMemcpyAsync")) {
      return hipErrorInvalidValue;  // vetoed: would touch freed memory
    }
  }
  charge_api_call();
  if (size > 0) std::memcpy(dst, src, size);
  if (kind != hipMemcpyHostToHost) {
    rs.device->transfer_async(rs.id, to_transfer(kind),
                              static_cast<double>(size));
  }
  return hipSuccess;
}

hipError_t hipMemset(void* dst, int value, std::size_t size) {
  if (dst == nullptr) return hipErrorInvalidValue;
  if (check::Checker::armed()) {
    if (!checker().on_device_access(key_of(nullptr), dst, size,
                                    /*write=*/true, "hipMemset")) {
      return hipErrorInvalidValue;  // vetoed: would touch freed memory
    }
  }
  charge_api_call();
  std::memset(dst, value, size);
  // Memset runs as a small device kernel writing `size` bytes.
  sim::KernelProfile p;
  p.name = "hipMemset";
  p.bytes_written = static_cast<double>(size);
  dev().launch(0, p, sim::LaunchConfig{std::max<std::uint64_t>(1, size / 256 / 64), 64});
  return hipSuccess;
}

hipError_t hipUvmFault(const void* ptr, std::size_t size, hipMemcpyKind kind,
                       hipStream_t stream) {
  if (ptr == nullptr) return hipErrorInvalidValue;
  if (rt().owner_of(ptr) < 0) return hipErrorInvalidDevicePointer;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipUvmFault");
    }
    return err;
  }
  if (check::Checker::armed()) {
    const bool dev_writes = kind == hipMemcpyHostToDevice;
    if (!checker().on_device_access(key_of(stream), ptr, size, dev_writes,
                                    "hipUvmFault")) {
      return hipErrorInvalidValue;  // vetoed: would touch freed memory
    }
  }
  rs.device->uvm_migrate(rs.id, to_transfer(kind), static_cast<double>(size));
  return hipSuccess;
}

// --- streams ------------------------------------------------------------------

hipError_t hipStreamCreate(hipStream_t* stream) {
  if (stream == nullptr) return hipErrorInvalidValue;
  charge_api_call();
  const sim::StreamId id = dev().create_stream();
  *stream = rt().make_stream(rt().current(), id);
  if (check::Checker::armed()) checker().on_stream_create(key_of(*stream));
  return hipSuccess;
}

hipError_t hipStreamDestroy(hipStream_t stream) {
  if (stream == nullptr || stream->destroyed) {
    if (check::Checker::armed() && stream != nullptr) {
      checker().on_destroyed_stream_use("hipStreamDestroy");
    }
    return hipErrorInvalidResourceHandle;
  }
  charge_api_call();
  rt().device(stream->device).destroy_stream(stream->id);
  if (check::Checker::armed()) checker().on_stream_destroy(key_of(stream));
  stream->destroyed = true;
  return hipSuccess;
}

hipError_t hipStreamSynchronize(hipStream_t stream) {
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipStreamSynchronize");
    }
    return err;
  }
  charge_api_call();
  rs.device->synchronize(rs.id);
  if (check::Checker::armed()) checker().on_stream_sync(key_of(stream));
  return hipSuccess;
}

hipError_t hipStreamQuery(hipStream_t stream) {
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipStreamQuery");
    }
    return err;
  }
  const bool idle = rs.device->stream_query(rs.id);
  // A query that observed "idle" is a synchronization edge: the host has
  // proof the stream's prior work completed.
  if (idle && check::Checker::armed()) checker().on_stream_sync(key_of(stream));
  return idle ? hipSuccess : hipErrorNotReady;
}

// --- events ---------------------------------------------------------------------

hipError_t hipEventCreate(hipEvent_t* event) {
  if (event == nullptr) return hipErrorInvalidValue;
  charge_api_call();
  *event = rt().make_event(rt().current());
  if (check::Checker::armed()) {
    checker().on_event_create(*event, rt().current());
  }
  return hipSuccess;
}

hipError_t hipEventDestroy(hipEvent_t event) {
  if (event == nullptr || event->destroyed) {
    if (check::Checker::armed() && event != nullptr) {
      checker().on_destroyed_event_use("hipEventDestroy");
    }
    return hipErrorInvalidResourceHandle;
  }
  if (check::Checker::armed()) checker().on_event_destroy(event);
  event->destroyed = true;
  return hipSuccess;
}

hipError_t hipEventRecord(hipEvent_t event, hipStream_t stream) {
  if (event == nullptr || event->destroyed) {
    if (check::Checker::armed() && event != nullptr) {
      checker().on_destroyed_event_use("hipEventRecord");
    }
    return hipErrorInvalidResourceHandle;
  }
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipEventRecord");
    }
    return err;
  }
  charge_api_call();
  event->device = stream == nullptr ? rt().current() : stream->device;
  event->id = rs.device->record_event(rs.id);
  if (check::Checker::armed()) checker().on_event_record(event, key_of(stream));
  return hipSuccess;
}

hipError_t hipEventSynchronize(hipEvent_t event) {
  if (event == nullptr || event->destroyed || event->id < 0) {
    if (check::Checker::armed() && event != nullptr) {
      if (event->destroyed) {
        checker().on_destroyed_event_use("hipEventSynchronize");
      } else {
        checker().on_event_sync(event, /*recorded=*/false);
      }
    }
    return hipErrorInvalidResourceHandle;
  }
  charge_api_call();
  rt().device(event->device).host_wait_event(event->id);
  if (check::Checker::armed()) checker().on_event_sync(event, /*recorded=*/true);
  return hipSuccess;
}

hipError_t hipStreamWaitEvent(hipStream_t stream, hipEvent_t event,
                              unsigned int flags) {
  if (flags != 0) return hipErrorInvalidValue;
  if (event == nullptr || event->destroyed) {
    if (check::Checker::armed() && event != nullptr) {
      checker().on_destroyed_event_use("hipStreamWaitEvent");
    }
    return hipErrorInvalidResourceHandle;
  }
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipStreamWaitEvent");
    }
    return err;
  }
  if (check::Checker::armed()) {
    checker().on_stream_wait_event(key_of(stream), event, event->id >= 0,
                                   "hipStreamWaitEvent");
  }
  // An unrecorded event is a completed no-op wait, matching HIP semantics
  // (the checker flags it as an ordering bug above).
  if (event->id < 0) return hipSuccess;
  charge_api_call();
  sim::DeviceSim& owner = rt().device(event->device);
  if (rs.device == &owner) {
    rs.device->stream_wait_event(rs.id, event->id);
  } else {
    // Cross-device edge: hold the waiting stream until the recorded point
    // on the other device's timeline.
    rs.device->stream_wait_until(rs.id, owner.event_time(event->id));
  }
  return hipSuccess;
}

hipError_t hipEventElapsedTime(float* ms, hipEvent_t start, hipEvent_t stop) {
  if (ms == nullptr) return hipErrorInvalidValue;
  if (start == nullptr || stop == nullptr || start->id < 0 || stop->id < 0 ||
      start->destroyed || stop->destroyed) {
    if (check::Checker::armed() && start != nullptr && stop != nullptr) {
      if (start->destroyed || stop->destroyed) {
        checker().on_destroyed_event_use("hipEventElapsedTime");
      } else {
        checker().on_event_elapsed(start, stop, start->id >= 0,
                                   stop->id >= 0);
      }
    }
    return hipErrorInvalidResourceHandle;
  }
  if (start->device != stop->device) return hipErrorInvalidValue;
  if (check::Checker::armed()) {
    checker().on_event_elapsed(start, stop, /*start_recorded=*/true,
                               /*stop_recorded=*/true);
  }
  const double sec = rt().device(start->device).elapsed(start->id, stop->id);
  *ms = static_cast<float>(sec * 1e3);
  return hipSuccess;
}

// --- kernel launch ------------------------------------------------------------

hipError_t hipLaunchTimedEXA(const sim::KernelProfile& profile,
                             const sim::LaunchConfig& cfg,
                             hipStream_t stream) {
  if (cfg.blocks == 0 || cfg.block_threads == 0) return hipErrorInvalidValue;
  ResolvedStream rs{};
  if (const hipError_t err = resolve(stream, &rs); err != hipSuccess) {
    if (check::Checker::armed()) {
      checker().on_destroyed_stream_use("hipLaunchTimedEXA");
    }
    return err;
  }
  if (check::Checker::armed()) {
    checker().on_launch(key_of(stream), profile.name,
                        rs.device->stream_ready(rs.id));
  }
  charge_api_call();
  g_last_timing = rs.device->launch(rs.id, profile, cfg);
  return hipSuccess;
}

hipError_t hipLaunchCachedEXA(const sim::KernelProfile& profile,
                              const sim::LaunchConfig& cfg,
                              sim::KernelTiming* timing, std::uint64_t* epoch,
                              hipStream_t stream) {
  if (timing == nullptr || epoch == nullptr) return hipErrorInvalidValue;
  if (cfg.blocks == 0 || cfg.block_threads == 0) return hipErrorInvalidValue;
  // Open-coded resolve(): the runtime singleton is looked up once, and the
  // common default-stream case charges the veneer overhead to the device
  // already in hand instead of re-resolving the current device.
  Runtime& r = rt();
  ResolvedStream rs{};
  if (stream == nullptr) {
    rs = {&r.current_device(), 0};
    rs.device->host_advance(r.flavor_overhead());
  } else {
    if (stream->destroyed) {
      if (check::Checker::armed()) {
        checker().on_destroyed_stream_use("hipLaunchCachedEXA");
      }
      return hipErrorInvalidResourceHandle;
    }
    rs = {&r.device(stream->device), stream->id};
    // The veneer overhead is charged to the *current* device (the caller's
    // thread), which may differ from the stream's device.
    r.current_device().host_advance(r.flavor_overhead());
  }
  if (check::Checker::armed()) {
    checker().on_launch(key_of(stream), profile.name,
                        rs.device->stream_ready(rs.id));
  }
  if (*epoch == rs.device->cost_epoch()) {
    g_last_timing = rs.device->launch_prepared(rs.id, *timing, profile.name);
  } else {
    g_last_timing = rs.device->launch(rs.id, profile, cfg);
    *timing = g_last_timing;
    *epoch = rs.device->cost_epoch();
  }
  return hipSuccess;
}

hipError_t hipLaunchKernelEXA(const Kernel& kernel, sim::LaunchConfig cfg,
                              hipStream_t stream) {
  if (check::Checker::armed() && !kernel.buffers.empty()) {
    if (!checker().on_launch_buffers(key_of(stream), kernel.buffers,
                                     kernel.profile.name)) {
      return hipErrorInvalidValue;  // vetoed: a buffer lies in freed memory
    }
  }
  // Virtual time.
  const hipError_t err = hipLaunchTimedEXA(kernel.profile, cfg, stream);
  if (err != hipSuccess) return err;

  // Functional execution (host threads).
  if (kernel.bulk_body) kernel.bulk_body();
  if (kernel.body) {
    const std::uint64_t total = cfg.total_threads();
    support::ThreadPool::global().for_chunks(
        0, total, [&kernel, &cfg](std::size_t lo, std::size_t hi) {
          KernelContext ctx;
          ctx.block_dim = cfg.block_threads;
          for (std::size_t i = lo; i < hi; ++i) {
            ctx.global_id = i;
            ctx.block_id = i / cfg.block_threads;
            ctx.thread_id = static_cast<std::uint32_t>(i % cfg.block_threads);
            kernel.body(ctx);
          }
        });
  }
  return hipSuccess;
}

const sim::KernelTiming& hipLastLaunchTiming() { return g_last_timing; }

double hipHostTimeSec() { return dev().host_now(); }

void hipHostBusy(double seconds) { dev().host_advance(seconds); }

// --- exa::check integration --------------------------------------------

void hipCheckEnableEXA(bool strict) {
  checker().set_mode(strict ? check::Mode::kStrict : check::Mode::kOn);
}

void hipCheckDisableEXA() { checker().set_mode(check::Mode::kOff); }

void hipCheckFinalizeEXA() {
  if (!check::Checker::armed()) return;
  Runtime& r = rt();
  std::vector<std::pair<std::string, std::size_t>> census;
  for (int i = 0; i < r.device_count(); ++i) {
    census.emplace_back(r.device(i).trace_name(),
                        r.device(i).live_allocation_count());
  }
  checker().on_configure(census);  // leak scan + tracking reset
  checker().finalize();
}

}  // namespace exa::hip
