#pragma once
/// \file cuda_compat.hpp
/// The "single header file with macros" porting strategy (§2.1, the Cholla
/// approach): application code is written against CUDA names and this
/// header maps every call onto the underlying implementation, selected by
/// the build environment. Here both flavors land on the same simulated
/// runtime; the flavor only changes the modeled per-call veneer overhead
/// (set via exa::hip::Runtime::set_flavor, normally by the build system
/// defining EXA_TARGET_CUDA/EXA_TARGET_HIP).
///
/// We use inline functions and type aliases rather than object-like macros
/// so the mapping obeys C++ scoping — same technique, better hygiene.

#include "hip/hip_runtime.hpp"

namespace exa::cuda {

using cudaError_t = hip::hipError_t;
inline constexpr cudaError_t cudaSuccess = hip::hipSuccess;
inline constexpr cudaError_t cudaErrorInvalidValue = hip::hipErrorInvalidValue;
inline constexpr cudaError_t cudaErrorMemoryAllocation = hip::hipErrorOutOfMemory;
inline constexpr cudaError_t cudaErrorInvalidDevice = hip::hipErrorInvalidDevice;
inline constexpr cudaError_t cudaErrorNotReady = hip::hipErrorNotReady;

using cudaMemcpyKind = hip::hipMemcpyKind;
inline constexpr cudaMemcpyKind cudaMemcpyHostToHost = hip::hipMemcpyHostToHost;
inline constexpr cudaMemcpyKind cudaMemcpyHostToDevice = hip::hipMemcpyHostToDevice;
inline constexpr cudaMemcpyKind cudaMemcpyDeviceToHost = hip::hipMemcpyDeviceToHost;
inline constexpr cudaMemcpyKind cudaMemcpyDeviceToDevice = hip::hipMemcpyDeviceToDevice;

using cudaStream_t = hip::hipStream_t;
using cudaEvent_t = hip::hipEvent_t;

inline const char* cudaGetErrorString(cudaError_t e) {
  return hip::hipGetErrorString(e);
}
inline cudaError_t cudaGetDeviceCount(int* n) { return hip::hipGetDeviceCount(n); }
inline cudaError_t cudaSetDevice(int d) { return hip::hipSetDevice(d); }
inline cudaError_t cudaGetDevice(int* d) { return hip::hipGetDevice(d); }
inline cudaError_t cudaDeviceSynchronize() { return hip::hipDeviceSynchronize(); }

inline cudaError_t cudaMalloc(void** p, std::size_t n) {
  return hip::hipMalloc(p, n);
}
inline cudaError_t cudaMallocManaged(void** p, std::size_t n) {
  return hip::hipMallocManaged(p, n);
}
inline cudaError_t cudaFree(void* p) { return hip::hipFree(p); }
inline cudaError_t cudaMemcpy(void* dst, const void* src, std::size_t n,
                              cudaMemcpyKind k) {
  return hip::hipMemcpy(dst, src, n, k);
}
inline cudaError_t cudaMemcpyAsync(void* dst, const void* src, std::size_t n,
                                   cudaMemcpyKind k, cudaStream_t s) {
  return hip::hipMemcpyAsync(dst, src, n, k, s);
}
inline cudaError_t cudaMemset(void* dst, int v, std::size_t n) {
  return hip::hipMemset(dst, v, n);
}

inline cudaError_t cudaStreamCreate(cudaStream_t* s) {
  return hip::hipStreamCreate(s);
}
inline cudaError_t cudaStreamDestroy(cudaStream_t s) {
  return hip::hipStreamDestroy(s);
}
inline cudaError_t cudaStreamSynchronize(cudaStream_t s) {
  return hip::hipStreamSynchronize(s);
}
inline cudaError_t cudaStreamQuery(cudaStream_t s) {
  return hip::hipStreamQuery(s);
}

inline cudaError_t cudaEventCreate(cudaEvent_t* e) {
  return hip::hipEventCreate(e);
}
inline cudaError_t cudaEventDestroy(cudaEvent_t e) {
  return hip::hipEventDestroy(e);
}
inline cudaError_t cudaEventRecord(cudaEvent_t e, cudaStream_t s) {
  return hip::hipEventRecord(e, s);
}
inline cudaError_t cudaEventSynchronize(cudaEvent_t e) {
  return hip::hipEventSynchronize(e);
}
inline cudaError_t cudaEventElapsedTime(float* ms, cudaEvent_t a, cudaEvent_t b) {
  return hip::hipEventElapsedTime(ms, a, b);
}

/// CUDA-flavored launch entry point (maps to the same simulated launch).
inline cudaError_t cudaLaunchKernelEXA(const hip::Kernel& k,
                                       sim::LaunchConfig cfg,
                                       cudaStream_t s = nullptr) {
  return hip::hipLaunchKernelEXA(k, cfg, s);
}

}  // namespace exa::cuda
