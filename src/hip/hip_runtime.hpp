#pragma once
/// \file hip_runtime.hpp
/// A HIP-compatible runtime API over the device simulator.
///
/// This is the portability layer the paper's §2.1 evaluates: the API
/// surface mirrors HIP (which itself mirrors CUDA), so application code
/// ports between the two the same way real codes did — via the hipify
/// translator (hipify.hpp), the macro-compat header (cuda_compat.hpp), or
/// a thin abstraction layer (the COAST/NuCCOR strategy).
///
/// Kernels execute *functionally* on host threads (so numerics are real
/// and testable) while virtual device time is charged from the kernel's
/// KernelProfile by the DeviceSim performance model.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "check/checker.hpp"
#include "sim/device_sim.hpp"
#include "sim/kernel_profile.hpp"

namespace exa::hip {

// --- error codes (subset of HIP's) ---------------------------------------

enum hipError_t {
  hipSuccess = 0,
  hipErrorInvalidValue,
  hipErrorOutOfMemory,
  hipErrorInvalidDevice,
  hipErrorInvalidDevicePointer,
  hipErrorInvalidResourceHandle,
  hipErrorNotReady,
};

[[nodiscard]] const char* hipGetErrorString(hipError_t err);

enum hipMemcpyKind {
  hipMemcpyHostToHost = 0,
  hipMemcpyHostToDevice = 1,
  hipMemcpyDeviceToHost = 2,
  hipMemcpyDeviceToDevice = 3,
  hipMemcpyDefault = 4,
};

// --- opaque handles --------------------------------------------------------

struct ihipStream_t;
struct ihipEvent_t;
using hipStream_t = ihipStream_t*;  ///< nullptr designates the default stream
using hipEvent_t = ihipEvent_t*;

// --- kernel abstraction ----------------------------------------------------

/// Coordinates handed to a functional kernel body, flattened to 1-D.
struct KernelContext {
  std::uint64_t global_id = 0;
  std::uint64_t block_id = 0;
  std::uint32_t thread_id = 0;
  std::uint32_t block_dim = 0;
};

/// A launchable kernel: a cost profile plus (optionally) functional work.
/// `body` runs once per work-item across the launch grid; `bulk_body` runs
/// once per launch (for kernels whose host realization is more natural as
/// a bulk loop). Either or both may be empty (timing-only kernels).
struct Kernel {
  sim::KernelProfile profile;
  std::function<void(const KernelContext&)> body;
  std::function<void()> bulk_body;
  /// Declared data flow for exa::check: simulated kernels carry cost
  /// profiles rather than pointer arguments, so the buffers a launch reads
  /// and writes are annotated here (empty = unchecked, still legal).
  std::vector<check::BufferUse> buffers;
};

// --- which API flavor the "build" targets ---------------------------------

/// The compile-time configuration the Cholla-style macro header selects.
/// On NVIDIA hardware HIP is a header-only veneer over CUDA, so the only
/// observable difference is a tiny per-call wrapper overhead — which is
/// exactly the Figure-1 experiment.
enum class ApiFlavor { kCuda, kHip };

// --- runtime management ------------------------------------------------

/// The process-wide simulated runtime: a set of devices of one
/// architecture plus the host virtual clock. Tests and benches call
/// `configure` to pick the architecture (default: one Frontier MI250X GCD).
class Runtime {
 public:
  static Runtime& instance();

  /// Re-initializes with `count` devices of architecture `gpu`. Destroys
  /// all prior streams/events/allocations.
  void configure(const arch::GpuArch& gpu, int count = 1,
                 ApiFlavor flavor = ApiFlavor::kHip);
  void set_flavor(ApiFlavor flavor);
  [[nodiscard]] ApiFlavor flavor() const { return flavor_; }

  [[nodiscard]] int device_count() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] int current() const { return current_; }
  hipError_t set_current(int device);
  [[nodiscard]] sim::DeviceSim& device(int index);
  [[nodiscard]] sim::DeviceSim& current_device() { return device(current_); }

  /// Per-API-call host overhead added by the HIP-over-CUDA veneer.
  [[nodiscard]] double flavor_overhead() const;

  // pointer -> owning device bookkeeping for hipFree/hipMemcpy
  void register_ptr(void* p, int device);
  /// Returns owning device index, or -1 when `p` is not a device pointer.
  [[nodiscard]] int owner_of(const void* p) const;
  void unregister_ptr(void* p);

  // stream/event registries
  hipStream_t make_stream(int device, sim::StreamId id);
  hipEvent_t make_event(int device);

 private:
  Runtime();
  std::vector<std::unique_ptr<sim::DeviceSim>> devices_;
  int current_ = 0;
  ApiFlavor flavor_ = ApiFlavor::kHip;

  struct PtrInfo {
    int device;
  };
  std::unordered_map<const void*, PtrInfo> ptrs_;

  friend hipError_t hipStreamDestroy(hipStream_t);
  friend hipError_t hipEventDestroy(hipEvent_t);
  std::vector<std::unique_ptr<ihipStream_t>> streams_;
  std::vector<std::unique_ptr<ihipEvent_t>> events_;
};

// --- device management -----------------------------------------------------

hipError_t hipGetDeviceCount(int* count);
hipError_t hipSetDevice(int device);
hipError_t hipGetDevice(int* device);
hipError_t hipDeviceSynchronize();

// --- memory ----------------------------------------------------------------

hipError_t hipMalloc(void** ptr, std::size_t size);
/// UVM allocation: accessible from host and device; device-side first
/// touch pays page-migration costs (§3.8's Pele UVM story).
hipError_t hipMallocManaged(void** ptr, std::size_t size);
hipError_t hipFree(void* ptr);
hipError_t hipMemcpy(void* dst, const void* src, std::size_t size,
                     hipMemcpyKind kind);
hipError_t hipMemcpyAsync(void* dst, const void* src, std::size_t size,
                          hipMemcpyKind kind, hipStream_t stream);
hipError_t hipMemset(void* dst, int value, std::size_t size);

// --- streams ---------------------------------------------------------------

hipError_t hipStreamCreate(hipStream_t* stream);
hipError_t hipStreamDestroy(hipStream_t stream);
hipError_t hipStreamSynchronize(hipStream_t stream);
/// hipSuccess when idle, hipErrorNotReady when work is pending.
hipError_t hipStreamQuery(hipStream_t stream);

// --- events ----------------------------------------------------------------

hipError_t hipEventCreate(hipEvent_t* event);
hipError_t hipEventDestroy(hipEvent_t event);
hipError_t hipEventRecord(hipEvent_t event, hipStream_t stream);
hipError_t hipEventSynchronize(hipEvent_t event);
/// Makes all future work on `stream` wait for `event`'s recorded position
/// (cross-stream and cross-device edges both work; an unrecorded event is
/// a no-op, matching HIP). `flags` must be 0.
hipError_t hipStreamWaitEvent(hipStream_t stream, hipEvent_t event,
                              unsigned int flags = 0);
/// Milliseconds between two recorded events (virtual time).
hipError_t hipEventElapsedTime(float* ms, hipEvent_t start, hipEvent_t stop);

// --- kernel launch -----------------------------------------------------------

/// Launches `kernel` with the given shape. Named after hipLaunchKernelGGL;
/// the trailing EXA marks the simulated signature (a cost-profiled functor
/// instead of a __global__ symbol).
hipError_t hipLaunchKernelEXA(const Kernel& kernel, sim::LaunchConfig cfg,
                              hipStream_t stream = nullptr);

/// Timing-only fast path: charges one simulated launch of `profile` with
/// no functional work and no Kernel wrapper, so callers that keep a cached
/// KernelProfile (pfw's per-label launch states) pay zero allocations per
/// launch. hipLaunchKernelEXA layers on this.
hipError_t hipLaunchTimedEXA(const sim::KernelProfile& profile,
                             const sim::LaunchConfig& cfg,
                             hipStream_t stream = nullptr);

/// Timing-only launch with a caller-owned timing cache: when `*epoch`
/// matches the device's cost_epoch() the cached `*timing` is replayed
/// (bookkeeping only, no exec-model work); otherwise the cost is computed
/// as in hipLaunchTimedEXA and written back to (*timing, *epoch). The
/// caller must reset *epoch to 0 whenever it mutates `profile`.
hipError_t hipLaunchCachedEXA(const sim::KernelProfile& profile,
                              const sim::LaunchConfig& cfg,
                              sim::KernelTiming* timing, std::uint64_t* epoch,
                              hipStream_t stream = nullptr);

/// Returns the timing of the most recent launch on the current device
/// (diagnostic hook used by tests and benches).
[[nodiscard]] const sim::KernelTiming& hipLastLaunchTiming();

// --- small helpers -----------------------------------------------------------

/// Virtual host-clock seconds for the current device (for FOM measurement).
[[nodiscard]] double hipHostTimeSec();
/// Charges host-side compute time to the virtual clock.
void hipHostBusy(double seconds);

/// Models a UVM page-fault migration of `size` bytes of managed memory in
/// the given direction, blocking `stream` (Pele's pre-optimization data
/// path, §3.8). `ptr` must come from hipMallocManaged.
hipError_t hipUvmFault(const void* ptr, std::size_t size, hipMemcpyKind kind,
                       hipStream_t stream = nullptr);

// --- exa::check integration --------------------------------------------

/// Programmatic opt-in to the exa::check runtime validator (equivalent to
/// EXA_CHECK=1, or EXA_CHECK=strict when `strict`).
void hipCheckEnableEXA(bool strict = false);
void hipCheckDisableEXA();
/// Explicit teardown: leak-scans live allocations/streams/events against
/// the device simulators' own census, prints the diagnostic report, and —
/// under strict mode, when any diagnostic fired — exits non-zero.
void hipCheckFinalizeEXA();

}  // namespace exa::hip
