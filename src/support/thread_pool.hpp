#pragma once
/// \file thread_pool.hpp
/// Fixed-size thread pool with a blocking parallel_for.
///
/// The simulated-GPU runtime executes kernels *functionally* on the host:
/// the grid of work-items is partitioned across this pool. Virtual device
/// time is charged separately by the performance model (see sim/), so the
/// pool only needs to be correct and reasonably fast, not clever.

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace exa::support {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool; blocks until every index has been processed.
  /// Exceptions thrown by `body` are captured and the first one rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) per worker slice. Lower
  /// call overhead for fine-grained work-items.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;
};

}  // namespace exa::support
