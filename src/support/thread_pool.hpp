#pragma once
/// \file thread_pool.hpp
/// Fixed-size thread pool with allocation-free chunked dispatch.
///
/// The simulated-GPU runtime executes kernels *functionally* on the host:
/// the grid of work-items is partitioned across this pool. Virtual device
/// time is charged separately by the performance model (see sim/), so the
/// pool only needs to be correct and fast.
///
/// The hot path is the `for_chunks` / `for_each` templates: the functor is
/// lowered to a raw `void(*)(void*, lo, hi)` trampoline plus a context
/// pointer, so a dispatch performs no heap allocation and the body inlines
/// into the chunk loop instead of paying a type-erased call per index. The
/// legacy `std::function` overloads remain as thin wrappers.
///
/// Chunk boundaries are deterministic: chunk k covers
/// [begin + k*grain, begin + (k+1)*grain) regardless of which worker runs
/// it or how many workers exist. Reductions that combine per-chunk partials
/// in chunk order are therefore bitwise reproducible across pool sizes
/// (pfw::parallel_reduce relies on this).
///
/// Dispatching from inside a dispatch (a body that itself calls into the
/// pool) runs the inner range inline on the calling thread instead of
/// deadlocking; concurrent top-level dispatches from different threads are
/// serialized on a submit mutex.

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace exa::support {

class ThreadPool {
 public:
  /// Signature of the lowered chunk trampoline: fn(ctx, chunk_begin,
  /// chunk_end).
  using ChunkFn = void (*)(void*, std::size_t, std::size_t);

  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs body(chunk_begin, chunk_end) over [begin, end) split into
  /// contiguous chunks of `grain` indices (the last chunk may be ragged);
  /// grain 0 selects ~4 chunks per worker. Blocks until the whole range has
  /// been processed; the first exception thrown by `body` is rethrown.
  /// Single-chunk ranges, pools of at most one worker, and nested
  /// dispatches run the chunks inline on the calling thread (same
  /// grain-aligned boundaries; a throwing chunk aborts the chunks after
  /// it on the inline path only).
  template <typename F>
  void for_chunks(std::size_t begin, std::size_t end, F&& body,
                  std::size_t grain = 0) {
    using Body = std::remove_reference_t<F>;
    run_chunked(
        [](void* ctx, std::size_t lo, std::size_t hi) {
          (*static_cast<Body*>(ctx))(lo, hi);
        },
        const_cast<std::remove_const_t<Body>*>(std::addressof(body)), begin,
        end, grain);
  }

  /// Runs body(i) for every i in [begin, end); the per-index call inlines
  /// into the chunk loop (no std::function indirection).
  template <typename F>
  void for_each(std::size_t begin, std::size_t end, F&& body,
                std::size_t grain = 0) {
    using Body = std::remove_reference_t<F>;
    run_chunked(
        [](void* ctx, std::size_t lo, std::size_t hi) {
          Body& b = *static_cast<Body*>(ctx);
          for (std::size_t i = lo; i < hi; ++i) b(i);
        },
        const_cast<std::remove_const_t<Body>*>(std::addressof(body)), begin,
        end, grain);
  }

  /// Legacy type-erased variant of for_each (thin wrapper; pays one
  /// std::function call per index).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Legacy type-erased variant of for_chunks.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide shared pool, lazily constructed. Size comes from the
  /// EXA_THREADS environment variable when set to a positive integer
  /// (mirrors EXA_LOG_LEVEL), otherwise hardware concurrency.
  static ThreadPool& global();

  /// The EXA_THREADS worker count (positive integer), or 0 when unset or
  /// malformed (malformed values warn). Exposed so other fixed-size worker
  /// pools — the svc::Server's, notably — resolve their default size by
  /// the same rule the global pool uses, and the EXA_THREADS=1/4/16 ctest
  /// variants steer every pool in the process at once.
  [[nodiscard]] static std::size_t threads_from_env();

 private:
  /// Non-template dispatch core: partitions [begin, end) into grain-sized
  /// chunks claimed by an atomic cursor and executed as fn(ctx, lo, hi).
  void run_chunked(ChunkFn fn, void* ctx, std::size_t begin, std::size_t end,
                   std::size_t grain);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;
};

}  // namespace exa::support
