#include "support/string_util.hpp"

#include <cctype>

#include "support/assert.hpp"

namespace exa::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  if (!lines.empty() && lines.back().empty() && !text.empty() &&
      text.back() == '\n') {
    lines.pop_back();
  }
  return lines;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  EXA_REQUIRE(!from.empty());
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace exa::support
