#include "support/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace exa::support {

namespace {

std::string format_with(double value, const char* suffix, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f %s", precision, value, suffix);
  return std::string(buf.data());
}

}  // namespace

std::string format_si(double value, int precision) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 7> kScales{{{EXA, "E"},
                                                 {PETA, "P"},
                                                 {TERA, "T"},
                                                 {GIGA, "G"},
                                                 {MEGA, "M"},
                                                 {KILO, "k"},
                                                 {1.0, ""}}};
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.factor || s.factor == 1.0) {
      return format_with(value / s.factor, s.suffix, precision);
    }
  }
  return format_with(value, "", precision);
}

std::string format_bytes(std::uint64_t bytes, int precision) {
  struct Scale {
    std::uint64_t factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 5> kScales{{{TiB, "TiB"},
                                                 {GiB, "GiB"},
                                                 {MiB, "MiB"},
                                                 {KiB, "KiB"},
                                                 {1, "B"}}};
  for (const auto& s : kScales) {
    if (bytes >= s.factor || s.factor == 1) {
      return format_with(static_cast<double>(bytes) / static_cast<double>(s.factor),
                         s.suffix, bytes >= KiB ? precision : 0);
    }
  }
  return format_with(static_cast<double>(bytes), "B", 0);
}

std::string format_time(double seconds, int precision) {
  const double mag = std::fabs(seconds);
  if (mag >= 1.0) return format_with(seconds, "s", precision);
  if (mag >= 1e-3) return format_with(seconds * 1e3, "ms", precision);
  if (mag >= 1e-6) return format_with(seconds * 1e6, "us", precision);
  return format_with(seconds * 1e9, "ns", precision);
}

std::string format_rate(double per_second, const std::string& unit, int precision) {
  std::string s = format_si(per_second, precision);
  // format_si leaves a trailing space when the suffix is empty; normalize.
  if (!s.empty() && s.back() == ' ') s.pop_back();
  return s + unit + "/s";
}

}  // namespace exa::support
