#include "support/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace exa::support {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> row) {
  EXA_REQUIRE_MSG(header_.empty() || row.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string Table::cell(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data());
}

std::string Table::cell(std::uint64_t value) { return std::to_string(value); }

std::string Table::render() const {
  // Column widths from header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = std::max(widths[c], header_[c].size());
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    const Align a = c < alignment_.size()
                        ? alignment_[c]
                        : (c == 0 ? Align::kLeft : Align::kRight);
    std::string out(widths[c], ' ');
    if (a == Align::kLeft) {
      std::copy(s.begin(), s.end(), out.begin());
    } else {
      std::copy(s.begin(), s.end(), out.begin() + static_cast<std::ptrdiff_t>(widths[c] - s.size()));
    }
    return out;
  };

  auto rule = [&](char fill) {
    std::string out = "+";
    for (std::size_t c = 0; c < ncols; ++c) {
      out.append(widths[c] + 2, fill);
      out.push_back('+');
    }
    out.push_back('\n');
    return out;
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule('-');
  if (!header_.empty()) {
    os << "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      os << " " << pad(c < header_.size() ? header_[c] : "", c) << " |";
    }
    os << "\n" << rule('=');
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      os << rule('-');
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      os << " " << pad(c < r.cells.size() ? r.cells[c] : "", c) << " |";
    }
    os << "\n";
  }
  os << rule('-');
  for (const auto& n : notes_) os << "  note: " << n << "\n";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

}  // namespace exa::support
