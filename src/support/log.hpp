#pragma once
/// \file log.hpp
/// Tiny leveled logger. Quiet by default so bench output stays clean;
/// tests and examples can raise the level for diagnostics.

#include <sstream>
#include <string>
#include <string_view>

namespace exa::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. The initial
/// threshold honors the EXA_LOG_LEVEL environment variable (a level name
/// — debug/info/warn/error/off — or a digit 0-4), defaulting to warn, so
/// traced runs can raise diagnostics without recompiling.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses a level name or digit ("debug", "INFO", "3", ...); returns
/// `fallback` on unrecognized input. Exposed for the EXA_LOG_LEVEL path.
[[nodiscard]] LogLevel log_level_from_name(std::string_view name,
                                           LogLevel fallback);

/// Emits a single formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace exa::support
