#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace exa::support {

double mean(std::span<const double> xs) {
  EXA_REQUIRE(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  EXA_REQUIRE(!xs.empty());
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geomean(std::span<const double> xs) {
  EXA_REQUIRE(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    EXA_REQUIRE_MSG(x > 0.0, "geomean requires positive inputs");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  EXA_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  EXA_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  EXA_REQUIRE(!xs.empty());
  EXA_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  EXA_REQUIRE(xs.size() == ys.size());
  EXA_REQUIRE(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  EXA_REQUIRE_MSG(denom != 0.0, "degenerate x values in linear_fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit loglog_fit(std::span<const double> xs, std::span<const double> ys) {
  EXA_REQUIRE(xs.size() == ys.size());
  std::vector<double> lx(xs.size());
  std::vector<double> ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXA_REQUIRE_MSG(xs[i] > 0.0 && ys[i] > 0.0,
                    "loglog_fit requires positive inputs");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return linear_fit(lx, ly);
}

std::vector<double> weak_scaling_efficiency(std::span<const double> times) {
  EXA_REQUIRE(!times.empty());
  std::vector<double> eff(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXA_REQUIRE(times[i] > 0.0);
    eff[i] = times.front() / times[i];
  }
  return eff;
}

std::vector<double> strong_scaling_speedup(std::span<const double> times) {
  // Same ratio as weak-scaling efficiency, but conventionally interpreted as
  // a speed-up (ideal value grows with the resource count).
  return weak_scaling_efficiency(times);
}

}  // namespace exa::support
