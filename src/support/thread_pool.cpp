#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace exa::support {

namespace {

/// Dispatch nesting depth of the current thread (any pool). A body that
/// dispatches again while its own dispatch is in flight would deadlock the
/// submit path, so nested dispatches run inline instead.
thread_local int t_dispatch_depth = 0;

}  // namespace

/// Shared state between the submitting thread and the workers. Work is
/// described as a half-open index range plus a raw chunk trampoline;
/// workers grab grain-aligned chunks with an atomic cursor. One
/// "generation" per dispatch; concurrent submitters queue on submit_mutex.
struct ThreadPool::Impl {
  /// Serializes whole dispatches from different threads (the job slots
  /// below hold exactly one job).
  std::mutex submit_mutex;

  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  // Current job (guarded by mutex except the cursor).
  ChunkFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::size_t active = 0;
  std::uint64_t generation = 0;
  bool shutdown = false;
  std::exception_ptr first_error;

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      ChunkFn job = nullptr;
      void* job_ctx = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_work.wait(lock, [&] {
          return shutdown || (fn != nullptr && generation != seen_generation);
        });
        if (shutdown) return;
        seen_generation = generation;
        job = fn;
        job_ctx = ctx;
        ++active;
      }
      run_chunks(job, job_ctx);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        --active;
        if (active == 0) cv_done.notify_all();
      }
    }
  }

  void run_chunks(ChunkFn job, void* job_ctx) {
    ++t_dispatch_depth;
    for (;;) {
      const std::size_t lo = cursor.fetch_add(chunk);
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        job(job_ctx, lo, hi);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    --t_dispatch_depth;
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunked(ChunkFn fn, void* ctx, std::size_t begin,
                             std::size_t end, std::size_t grain) {
  EXA_REQUIRE(begin <= end);
  if (begin == end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // Aim for ~4 chunks per worker for load balance.
    grain = std::max<std::size_t>(1, n / (workers_.size() * 4 + 1));
  }
  // Inline when the range is a single chunk (dispatch overhead dominates),
  // the pool has at most one worker (cv wakeups and context switches buy
  // nothing), or we are already inside a dispatch on this thread (nested
  // dispatch would deadlock the submit path). Chunk boundaries stay
  // grain-aligned so fixed-slot reductions see identical chunks on every
  // path; a chunk that throws aborts the remaining inline chunks.
  if (n <= grain || workers_.size() <= 1 || t_dispatch_depth > 0) {
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(ctx, lo, std::min(end, lo + grain));
    }
    return;
  }

  const std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->fn = fn;
    impl_->ctx = ctx;
    impl_->end = end;
    impl_->chunk = grain;
    impl_->cursor.store(begin);
    impl_->first_error = nullptr;
    ++impl_->generation;
    impl_->cv_work.notify_all();
    // The submitting thread helps so small pools still make progress even
    // if workers are briefly busy waking up.
    lock.unlock();
    impl_->run_chunks(fn, ctx);
    lock.lock();
    impl_->cv_done.wait(lock, [&] { return impl_->active == 0; });
    impl_->fn = nullptr;
    error = impl_->first_error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  for_each(begin, end, [&body](std::size_t i) { body(i); });
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  for_chunks(begin, end,
             [&body](std::size_t lo, std::size_t hi) { body(lo, hi); });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(threads_from_env());
  return pool;
}

std::size_t ThreadPool::threads_from_env() {
  const char* env = std::getenv("EXA_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 1) {
    log_warn("EXA_THREADS=", env, " is not a positive integer; ignoring");
    return 0;
  }
  return static_cast<std::size_t>(value);
}

}  // namespace exa::support
