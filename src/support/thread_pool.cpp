#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

#include "support/assert.hpp"

namespace exa::support {

/// Shared state between the submitting thread and the workers. Work is
/// described as a half-open index range plus a chunk function; workers grab
/// chunks with an atomic cursor. One "generation" per parallel_for call.
struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  // Current job (guarded by mutex except the cursor).
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::size_t active = 0;
  std::uint64_t generation = 0;
  bool shutdown = false;
  std::exception_ptr first_error;

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::size_t, std::size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_work.wait(lock, [&] {
          return shutdown || (body != nullptr && generation != seen_generation);
        });
        if (shutdown) return;
        seen_generation = generation;
        job = body;
        ++active;
      }
      run_chunks(*job);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        --active;
        if (active == 0) cv_done.notify_all();
      }
    }
  }

  void run_chunks(const std::function<void(std::size_t, std::size_t)>& job) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(chunk);
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        job(lo, hi);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  EXA_REQUIRE(begin <= end);
  if (begin == end) return;
  const std::size_t n = end - begin;
  // Small ranges: run inline, the dispatch overhead dominates.
  if (n <= 1 || workers_.empty()) {
    body(begin, end);
    return;
  }
  // Aim for ~4 chunks per worker for load balance.
  const std::size_t target_chunks = workers_.size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, n / target_chunks);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->body = &body;
    impl_->begin = begin;
    impl_->end = end;
    impl_->chunk = chunk;
    impl_->cursor.store(begin);
    impl_->first_error = nullptr;
    ++impl_->generation;
    impl_->cv_work.notify_all();
    // The submitting thread helps so small pools still make progress even
    // if workers are briefly busy waking up.
    lock.unlock();
    impl_->run_chunks(body);
    lock.lock();
    impl_->cv_done.wait(lock, [&] { return impl_->active == 0; });
    impl_->body = nullptr;
    error = impl_->first_error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace exa::support
