#include "support/csv.hpp"

#include <fstream>
#include <sstream>

#include "support/assert.hpp"

namespace exa::support {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  EXA_REQUIRE(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> row) {
  EXA_REQUIRE_MSG(row.size() == header_.size(),
                  "CSV row width must match header width");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  out << render();
  if (!out) throw Error("failed writing CSV output file: " + path);
}

}  // namespace exa::support
