#pragma once
/// \file reduce.hpp
/// Deterministic chunk-ordered parallel reduction over a ThreadPool.
///
/// The shape every bitwise-reproducible sum in the tree shares: split
/// [0, n) at grain boundaries that are a function of n alone (never of the
/// pool size), let each chunk produce one partial into its own slot, and
/// combine the slots in ascending chunk order. Because both the boundaries
/// and the combination order are independent of how many workers exist and
/// of chunk execution order, the result is bitwise identical across runs
/// and EXA_THREADS settings.
///
/// This used to live in pfw::detail (PR 3's parallel_reduce); it moved
/// here so layers below pfw — net::Fabric's phase engine in particular —
/// can reuse it without pulling in the simulated-device runtime.
/// pfw::parallel_reduce still charges the simulated launch; callers here
/// pay host time only.

#include <cstddef>

#include "support/thread_pool.hpp"

namespace exa::support {

/// Deterministic-reduction shape: at most kReduceSlots chunks with
/// boundaries that are a function of n alone.
inline constexpr std::size_t kReduceSlots = 256;

/// Grain that yields ceil(n / grain) <= kReduceSlots chunks.
[[nodiscard]] inline std::size_t reduce_grain(std::size_t n) {
  return (n + kReduceSlots - 1) / kReduceSlots;
}

/// Sums chunk_body(lo, hi) partials over [0, n) split at fixed grain
/// boundaries, combining them in ascending chunk order. With n <=
/// kReduceSlots every chunk covers exactly one index, so the total is the
/// exact left fold sum(body(0)) + body(1) + ... — the property the fabric
/// phase engine relies on to keep parallel phase sums bitwise identical
/// to the historical serial accumulation.
template <typename ChunkBody>
[[nodiscard]] double deterministic_reduce(ThreadPool& pool, std::size_t n,
                                          ChunkBody&& chunk_body) {
  if (n == 0) return 0.0;
  const std::size_t grain = reduce_grain(n);
  double partial[kReduceSlots];
  pool.for_chunks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        // Chunks are grain-aligned, so lo/grain indexes this chunk's slot;
        // every slot in [0, ceil(n/grain)) is written exactly once.
        partial[lo / grain] = chunk_body(lo, hi);
      },
      grain);
  const std::size_t slots = (n + grain - 1) / grain;
  double total = 0.0;
  for (std::size_t s = 0; s < slots; ++s) total += partial[s];
  return total;
}

}  // namespace exa::support
