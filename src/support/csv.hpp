#pragma once
/// \file csv.hpp
/// Minimal CSV emission so every bench can dump machine-readable series
/// next to its human-readable table (for downstream plotting).

#include <string>
#include <vector>

namespace exa::support {

/// Accumulates rows and renders RFC-4180-style CSV (quotes fields that
/// contain commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  [[nodiscard]] std::string render() const;
  /// Writes render() to `path`; throws exa::support::Error on I/O failure.
  void write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace exa::support
