#pragma once
/// \file table.hpp
/// ASCII table writer used by every bench binary to print paper-style
/// tables/figure series in a uniform, diffable format.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace exa::support {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple row/column text table with a title, header, and footer notes.
///
/// Usage:
///   Table t("Table 2: Observed application speed-ups");
///   t.set_header({"Application", "Speed-up"});
///   t.add_row({"GAMESS", "5.0"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::string title = {});

  void set_header(std::vector<std::string> header);
  /// Per-column alignment; default is left for col 0 and right elsewhere.
  void set_alignment(std::vector<Align> alignment);
  void add_row(std::vector<std::string> row);
  /// Horizontal separator between row groups.
  void add_separator();
  void add_note(std::string note);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

  /// Convenience numeric cell formatting.
  [[nodiscard]] static std::string cell(double value, int precision = 2);
  [[nodiscard]] static std::string cell(std::uint64_t value);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace exa::support
