#pragma once
/// \file assert.hpp
/// Error type and contract-checking macros used across exaready.
///
/// Following the C++ Core Guidelines (I.5/I.6, E.12-E.14) we check
/// preconditions at API boundaries and report failures with a typed
/// exception carrying the failing expression and location.

#include <stdexcept>
#include <string>
#include <string_view>

namespace exa::support {

/// Exception thrown on contract violations and unrecoverable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Builds the message for a failed contract check.
[[nodiscard]] inline std::string contract_message(std::string_view kind,
                                                  std::string_view expr,
                                                  std::string_view file,
                                                  int line,
                                                  std::string_view detail) {
  std::string msg;
  msg.reserve(128);
  msg.append(kind).append(" failed: ").append(expr);
  if (!detail.empty()) {
    msg.append(" — ").append(detail);
  }
  msg.append(" [").append(file).append(":").append(std::to_string(line)).append("]");
  return msg;
}

[[noreturn]] inline void contract_fail(std::string_view kind, std::string_view expr,
                                       std::string_view file, int line,
                                       std::string_view detail = {}) {
  throw Error(contract_message(kind, expr, file, line, detail));
}

}  // namespace exa::support

/// Precondition check: argument/state validation at API boundaries.
#define EXA_REQUIRE(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::exa::support::contract_fail("precondition", #expr, __FILE__, __LINE__); \
    }                                                                         \
  } while (false)

/// Precondition check with an explanatory detail string.
#define EXA_REQUIRE_MSG(expr, detail)                                         \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::exa::support::contract_fail("precondition", #expr, __FILE__, __LINE__, \
                                    (detail));                               \
    }                                                                         \
  } while (false)

/// Internal invariant check (logic errors inside a module).
#define EXA_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::exa::support::contract_fail("invariant", #expr, __FILE__, __LINE__);  \
    }                                                                         \
  } while (false)

/// Postcondition check.
#define EXA_ENSURE(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::exa::support::contract_fail("postcondition", #expr, __FILE__, __LINE__); \
    }                                                                         \
  } while (false)
