#pragma once
/// \file string_util.hpp
/// Small string helpers shared by the hipify translator and report writers.

#include <string>
#include <string_view>
#include <vector>

namespace exa::support {

[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);
/// Splits on newline, preserving empty lines; a trailing newline does not
/// produce a final empty element.
[[nodiscard]] std::vector<std::string> split_lines(std::string_view text);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string trim(std::string_view text);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);
[[nodiscard]] bool contains(std::string_view text, std::string_view needle);
/// Replaces every occurrence of `from` (must be non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view text,
                                      std::string_view from,
                                      std::string_view to);
[[nodiscard]] std::string to_lower(std::string_view text);
/// True if `c` may appear in a C identifier.
[[nodiscard]] bool is_identifier_char(char c);

}  // namespace exa::support
