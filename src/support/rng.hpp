#pragma once
/// \file rng.hpp
/// Deterministic, seedable random number generation for workload synthesis.
///
/// Benchmarks and tests must be reproducible run-to-run and machine-to-
/// machine, so we avoid std::default_random_engine (implementation-defined)
/// and use an explicit xoshiro256** with a SplitMix64 seeder.

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace exa::support {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'ba5e'0f00'dull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    EXA_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniform_u64(std::uint64_t n) {
    EXA_REQUIRE(n > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    EXA_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace exa::support
