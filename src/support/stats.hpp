#pragma once
/// \file stats.hpp
/// Descriptive statistics used by benchmark reporting: means, geometric
/// means (the right average for speed-up ratios), percentiles, and a simple
/// least-squares fit used to extract scaling exponents.

#include <span>
#include <vector>

namespace exa::support {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);   // population variance
[[nodiscard]] double stddev(std::span<const double> xs);
/// Geometric mean; requires all elements > 0.
[[nodiscard]] double geomean(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);
[[nodiscard]] double median(std::span<const double> xs);

/// Result of a least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fits y = c * x^alpha by regressing log y on log x; returns {alpha, log c, r2}.
/// All inputs must be positive. Used to verify O(N^3) / O(N log N) claims.
[[nodiscard]] LinearFit loglog_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// Parallel efficiency of a weak-scaling series: t(1) / t(n).
[[nodiscard]] std::vector<double> weak_scaling_efficiency(
    std::span<const double> times);

/// Speed-up series of a strong-scaling run: t(1) / t(n).
[[nodiscard]] std::vector<double> strong_scaling_speedup(
    std::span<const double> times);

}  // namespace exa::support
