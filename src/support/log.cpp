#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace exa::support {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("EXA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  return log_level_from_name(env, LogLevel::kWarn);
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level_from_name(std::string_view name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return fallback;
}

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[exaready %s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace exa::support
