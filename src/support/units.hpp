#pragma once
/// \file units.hpp
/// Strongly-suggestive unit helpers and human-readable formatting for the
/// quantities the performance model traffics in: bytes, bandwidths, flop
/// rates, and (virtual) seconds.

#include <cstdint>
#include <string>

namespace exa::support {

// --- byte-size literals ----------------------------------------------------

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

// Decimal units, used for bandwidths/flops which are conventionally decimal.
inline constexpr double KILO = 1e3;
inline constexpr double MEGA = 1e6;
inline constexpr double GIGA = 1e9;
inline constexpr double TERA = 1e12;
inline constexpr double PETA = 1e15;
inline constexpr double EXA = 1e18;

// --- time ------------------------------------------------------------------

inline constexpr double USEC = 1e-6;
inline constexpr double NSEC = 1e-9;
inline constexpr double MSEC = 1e-3;

/// Formats a count with an SI prefix, e.g. 6.71e18 -> "6.71 E" (unit appended
/// by the caller: "6.71 Eflop/s").
[[nodiscard]] std::string format_si(double value, int precision = 3);

/// Formats a byte count with a binary prefix, e.g. 1536 -> "1.50 KiB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes, int precision = 2);

/// Formats a duration in seconds with an adaptive unit, e.g. 2.5e-6 -> "2.50 us".
[[nodiscard]] std::string format_time(double seconds, int precision = 3);

/// Formats a rate (unit/s) with an SI prefix, e.g. 1.6e12, "B/s" -> "1.60 TB/s".
[[nodiscard]] std::string format_rate(double per_second, const std::string& unit,
                                      int precision = 2);

}  // namespace exa::support
