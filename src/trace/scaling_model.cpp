#include "trace/scaling_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "support/assert.hpp"

namespace exa::trace {

namespace {

/// Basis value x(p) = p^c * (log2 p)^d of the hypothesis' scaling term.
double basis(double p, double c, int d) {
  double x = std::pow(p, c);
  if (d != 0) x *= std::pow(std::log2(p), d);
  return x;
}

struct Candidate {
  double a = 0.0, b = 0.0;
  double ss_res = 0.0;
  bool valid = false;
};

/// Exact least squares for t = a + b * x (linear in the parameters).
Candidate solve(std::span<const double> xs, std::span<const double> ts,
                bool nonnegative_constant) {
  const std::size_t n = xs.size();
  double sx = 0.0, st = 0.0, sxx = 0.0, sxt = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    st += ts[i];
    sxx += xs[i] * xs[i];
    sxt += xs[i] * ts[i];
  }
  const double dn = static_cast<double>(n);
  const double det = dn * sxx - sx * sx;
  Candidate fit;
  // Scale-aware singularity test: a constant basis (e.g. c=0, d=0) makes
  // the system rank-1; fall back to the pure-constant model.
  if (std::abs(det) <= 1e-12 * std::max(1.0, dn * sxx)) {
    fit.a = st / dn;
    fit.b = 0.0;
  } else {
    fit.b = (dn * sxt - sx * st) / det;
    fit.a = (st - fit.b * sx) / dn;
    if (nonnegative_constant && fit.a < 0.0) {
      fit.a = 0.0;
      fit.b = sxx > 0.0 ? sxt / sxx : 0.0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ts[i] - (fit.a + fit.b * xs[i]);
    fit.ss_res += r * r;
  }
  fit.valid = std::isfinite(fit.a) && std::isfinite(fit.b) &&
              std::isfinite(fit.ss_res);
  return fit;
}

}  // namespace

double ScalingFit::eval(double p) const { return a + b * basis(p, c, d); }

std::string ScalingFit::to_string() const {
  char buf[128];
  if (b == 0.0 || (c == 0.0 && d == 0)) {
    std::snprintf(buf, sizeof(buf), "%.3g", a + b);
    return buf;
  }
  std::string out;
  std::snprintf(buf, sizeof(buf), "%.3g + %.3g", a, b);
  out = buf;
  if (c != 0.0) {
    std::snprintf(buf, sizeof(buf), " * p^%.3g", c);
    out += buf;
  }
  if (d == 1) {
    out += " * log2(p)";
  } else if (d > 1) {
    std::snprintf(buf, sizeof(buf), " * log2(p)^%d", d);
    out += buf;
  }
  return out;
}

ScalingFit fit_scaling(std::span<const double> p, std::span<const double> t,
                       const FitOptions& options) {
  EXA_REQUIRE_MSG(p.size() == t.size(), "p/t series length mismatch");
  EXA_REQUIRE_MSG(p.size() >= 2, "scaling fit needs at least two points");
  std::set<double> distinct(p.begin(), p.end());
  EXA_REQUIRE_MSG(distinct.size() >= 2,
                  "scaling fit needs at least two distinct scales");
  for (const double pi : p) {
    EXA_REQUIRE_MSG(pi >= 1.0, "scale parameters must be >= 1");
  }

  const std::size_t n = p.size();
  double t_mean = 0.0;
  for (const double ti : t) t_mean += ti;
  t_mean /= static_cast<double>(n);
  double ss_tot = 0.0;
  for (const double ti : t) ss_tot += (ti - t_mean) * (ti - t_mean);

  ScalingFit best;
  double best_res = std::numeric_limits<double>::infinity();
  double best_complexity = std::numeric_limits<double>::infinity();
  std::vector<double> xs(n);
  for (const int d : options.log_powers) {
    for (const double c : options.exponents) {
      if (c == 0.0 && d == 0) continue;  // covered by the b=0 fallback
      bool usable = true;
      for (std::size_t i = 0; i < n; ++i) {
        xs[i] = basis(p[i], c, d);
        if (!std::isfinite(xs[i])) usable = false;
      }
      if (!usable) continue;
      const Candidate cand = solve(xs, t, options.nonnegative_constant);
      if (!cand.valid) continue;
      // Prefer the simpler hypothesis among near-equal residuals (within
      // 1e-6 of total variance, or near-zero absolute for exact fits).
      const double complexity = static_cast<double>(d) * 10.0 + c;
      const double tol = std::max(1e-6 * ss_tot, 1e-24);
      const bool better =
          cand.ss_res < best_res - tol ||
          (cand.ss_res < best_res + tol && complexity < best_complexity);
      if (better) {
        best_res = std::min(best_res, cand.ss_res);
        best_complexity = complexity;
        best.a = cand.a;
        best.b = cand.b;
        best.c = c;
        best.d = d;
      }
    }
  }

  // The pure-constant hypothesis t(p) = a.
  {
    double ss_const = ss_tot;
    const double tol = std::max(1e-6 * ss_tot, 1e-24);
    if (ss_const < best_res + tol && 0.0 < best_complexity) {
      best_res = std::min(best_res, ss_const);
      best.a = t_mean;
      best.b = 0.0;
      best.c = 0.0;
      best.d = 0;
    }
  }

  best.points = n;
  best.r2 = ss_tot > 0.0 ? 1.0 - best_res / ss_tot : 1.0;
  if (best.r2 < 0.0) best.r2 = 0.0;
  return best;
}

std::map<std::string, ScalingFit> fit_profiles(
    const std::vector<ProfileSample>& samples, const std::string& param,
    const std::string& metric, const FitOptions& options) {
  // callpath -> scale -> (sum, count): average repetitions per scale, as
  // Extra-P does before modeling.
  std::map<std::string, std::map<double, std::pair<double, int>>> grouped;
  for (const ProfileSample& sample : samples) {
    if (sample.metric != metric) continue;
    const auto it = sample.params.find(param);
    if (it == sample.params.end()) continue;
    auto& [sum, count] = grouped[sample.callpath][it->second];
    sum += sample.value;
    ++count;
  }

  std::map<std::string, ScalingFit> fits;
  for (const auto& [callpath, by_scale] : grouped) {
    if (by_scale.size() < 2) continue;
    std::vector<double> ps, ts;
    ps.reserve(by_scale.size());
    ts.reserve(by_scale.size());
    for (const auto& [scale, acc] : by_scale) {
      ps.push_back(scale);
      ts.push_back(acc.first / acc.second);
    }
    fits.emplace(callpath, fit_scaling(ps, ts, options));
  }
  return fits;
}

}  // namespace exa::trace
