#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/assert.hpp"

namespace exa::trace {

bool JsonValue::as_bool() const {
  EXA_REQUIRE_MSG(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  EXA_REQUIRE_MSG(is_number(), "JSON value is not a number");
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  EXA_REQUIRE_MSG(is_string(), "JSON value is not a string");
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  EXA_REQUIRE_MSG(is_array(), "JSON value is not an array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  EXA_REQUIRE_MSG(is_object(), "JSON value is not an object");
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string JsonValue::dump() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  if (is_number()) return json_number(std::get<double>(v_));
  if (is_string()) return "\"" + json_escape(std::get<std::string>(v_)) + "\"";
  if (is_array()) {
    std::string out = "[";
    const Array& arr = std::get<Array>(v_);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out += ",";
      out += arr[i].dump();
    }
    return out + "]";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : std::get<Object>(v_)) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + value.dump();
  }
  return out + "}";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw support::Error("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          // Pass low \u escapes through as a single byte; anything wider
          // is kept verbatim (the exporters never emit them).
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += "\\u" + hex;
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return JsonValue(value);
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace exa::trace
