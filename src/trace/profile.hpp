#pragma once
/// \file profile.hpp
/// Extra-P-style JsonLines profiles.
///
/// The SC'23 always-on-monitoring workflow (see SNIPPETS.md) merges
/// per-run profiles into a single append-friendly JsonLines file and
/// feeds that to Extra-P for empirical scaling models. We mirror the
/// format: one sample per line,
///
///     {"params":{"p":64},"callpath":"pele/ghost_exchange",
///      "metric":"time","value":0.00123}
///
/// where `params` carries the run configuration (node count `p` by
/// convention), `callpath` names the instrumented region, and repeated
/// (params, callpath) lines are repetitions. New runs append; the fitter
/// (scaling_model.hpp) and `tools/scaling_fit` consume the merged file.

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace exa::trace {

struct ProfileSample {
  std::map<std::string, double> params;  ///< run configuration, e.g. {"p": 64}
  std::string callpath;                  ///< instrumented region name
  std::string metric = "time";
  double value = 0.0;
};

/// Process-global profile sink. Like the Tracer, recording is a no-op
/// while disabled so instrumented code can call it unconditionally.
class Profiler {
 public:
  static Profiler& instance();

  void enable();
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Records `value` for `callpath` at scale parameter `p` (the common
  /// single-parameter case).
  void record(const std::string& callpath, double p, double value,
              const std::string& metric = "time");
  void record(ProfileSample sample);

  [[nodiscard]] std::vector<ProfileSample> samples() const;

 private:
  Profiler() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<ProfileSample> samples_;
};

/// One JSONL line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const ProfileSample& sample);

/// Appends samples to `path` (creating it if needed); throws
/// support::Error on I/O failure.
void append_jsonl(const std::string& path,
                  const std::vector<ProfileSample>& samples);

/// Loads every sample from a JSONL profile file; blank lines are skipped;
/// malformed lines throw support::Error naming the line number.
[[nodiscard]] std::vector<ProfileSample> load_jsonl(const std::string& path);

/// An open JSONL profile appender for long-lived producers. append_jsonl
/// reopens the file per call — right for a bench flushing once at exit,
/// wrong for a service streaming one sample per completed job — so this
/// holds the stream open, writes one line per append, and flushes each
/// line (a crashed server loses at most the in-flight sample). Throws
/// support::Error if the file cannot be opened or a write fails.
class ProfileJsonlStream {
 public:
  explicit ProfileJsonlStream(std::string path);
  ~ProfileJsonlStream();

  ProfileJsonlStream(const ProfileJsonlStream&) = delete;
  ProfileJsonlStream& operator=(const ProfileJsonlStream&) = delete;

  void append(const ProfileSample& sample);
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t appended() const { return appended_; }

 private:
  std::string path_;
  std::size_t appended_ = 0;
  std::unique_ptr<std::ofstream> file_;
};

/// Aggregates span durations (kComplete events, plus matched
/// kSpanBegin/kSpanEnd pairs with virtual stamps) from a trace snapshot
/// into per-callpath profile samples at scale parameter `p` — the bridge
/// from a single traced run to the multi-run JSONL scaling workflow.
[[nodiscard]] std::vector<ProfileSample> profile_from_trace(
    const std::vector<Event>& events, double p);

}  // namespace exa::trace
