#pragma once
/// \file scaling_model.hpp
/// Empirical scaling-model fitting — an in-repo mini Extra-P.
///
/// Given measurements t(p) of a region's time at several scales p (node
/// counts), the fitter searches the performance-model normal form
///
///     t(p) = a + b * p^c * (log2 p)^d
///
/// over a grid of exponents c and log powers d. Each hypothesis is linear
/// in (a, b), so it is solved exactly by least squares; the winning model
/// is the one with the smallest residual, with ties broken toward the
/// simpler hypothesis (smaller d, then smaller c) — mirroring how Extra-P
/// selects among its candidate terms. This is the §6-style two-step from
/// the related SC'23 monitoring work: append per-run JSONL profiles, then
/// fit models per callpath.

#include <map>
#include <span>
#include <string>
#include <vector>

#include "trace/profile.hpp"

namespace exa::trace {

/// A fitted t(p) = a + b * p^c * (log2 p)^d hypothesis.
struct ScalingFit {
  double a = 0.0;   ///< constant (serial/latency) term, seconds
  double b = 0.0;   ///< scaling coefficient
  double c = 0.0;   ///< polynomial exponent
  int d = 0;        ///< power of log2(p)
  double r2 = 0.0;  ///< coefficient of determination on the inputs
  std::size_t points = 0;  ///< measurements the fit consumed

  [[nodiscard]] double eval(double p) const;
  /// Human-readable model, e.g. "2.1e-03 + 4.0e-05 * p^1.5 * log2(p)".
  [[nodiscard]] std::string to_string() const;
};

struct FitOptions {
  /// Candidate polynomial exponents (Extra-P's default search space uses
  /// small rationals in [0, 3]).
  std::vector<double> exponents = {0.0,       0.25, 1.0 / 3, 0.5,  2.0 / 3,
                                   0.75,      1.0,  1.25,    4.0 / 3, 1.5,
                                   5.0 / 3,   2.0,  7.0 / 3, 2.5,  3.0};
  /// Candidate powers of log2(p).
  std::vector<int> log_powers = {0, 1, 2};
  /// Constrain the constant term to be non-negative (times cannot be
  /// negative at p -> small); a negative fitted `a` is refit with a = 0.
  bool nonnegative_constant = true;
};

/// Fits the best hypothesis to the series (p_i, t_i). Requires at least
/// two distinct p values (three or more for a meaningful model — the
/// caller should collect >= 3 scales, as the Extra-P workflow does).
/// Throws support::Error on degenerate input.
[[nodiscard]] ScalingFit fit_scaling(std::span<const double> p,
                                     std::span<const double> t,
                                     const FitOptions& options = {});

/// Groups profile samples by callpath (keeping those matching `metric`
/// and carrying parameter `param`), averages repetitions at equal scale,
/// and fits each region. Regions with fewer than two distinct scales are
/// skipped.
[[nodiscard]] std::map<std::string, ScalingFit> fit_profiles(
    const std::vector<ProfileSample>& samples, const std::string& param = "p",
    const std::string& metric = "time", const FitOptions& options = {});

}  // namespace exa::trace
