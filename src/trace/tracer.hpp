#pragma once
/// \file tracer.hpp
/// Always-on tracing for the simulated exascale stack.
///
/// The paper's porting campaigns lived on timelines: the E3SM
/// launch-latency hunts (§3.5), Pele's weak-scaling triage (§3.8), and
/// the LAMMPS ReaxFF kernel breakdowns (§3.10) all start from a per-kernel
/// or per-stream profile. `Tracer` is the capture side of that workflow:
/// a process-global recorder of spans, counters, and instant events,
/// stamped in both wall-clock time and virtual `SimTime`, stored in a
/// bounded thread-safe ring buffer so capture can stay enabled for entire
/// runs without unbounded memory.
///
/// Disabled (the default) the recorder is a single relaxed atomic load on
/// every hook — bench outputs are bit-identical with tracing off.
///
/// Events live on named *tracks* ("gpu0/s1", "net", "pfw"); the exporters
/// (chrome_export.hpp, profile.hpp) turn tracks into Chrome trace-event
/// timelines and Extra-P-style JSONL profiles.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace exa::trace {

/// Virtual seconds (mirrors sim::SimTime without depending on exa_sim —
/// the sim layer links *against* the tracer, not the other way around).
using SimTime = double;

/// Sentinel for "no virtual timestamp": the exporters fall back to wall
/// time for events that carry it.
inline constexpr SimTime kNoSim = std::numeric_limits<double>::quiet_NaN();

enum class EventKind : std::uint8_t {
  kSpanBegin,  ///< opening edge of a nested span (Chrome "B")
  kSpanEnd,    ///< closing edge (Chrome "E")
  kComplete,   ///< span with known start + duration (Chrome "X")
  kInstant,    ///< point event (Chrome "i")
  kCounter,    ///< sampled value (Chrome "C")
};

struct Event {
  EventKind kind = EventKind::kInstant;
  std::string label;     ///< event / span / counter name
  std::string category;  ///< "kernel", "transfer", "net", "pfw", ...
  std::string track;     ///< timeline the event belongs to, e.g. "gpu0/s1"
  double wall_us = 0.0;  ///< wall microseconds since the tracer was enabled
  SimTime sim_s = kNoSim;  ///< virtual timestamp (span start for kComplete)
  double value = 0.0;      ///< kComplete: duration (s); kCounter: the value
};

/// Process-global trace recorder. All recording calls are no-ops while
/// disabled; enabling installs a fresh ring buffer and wall-clock epoch.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  static Tracer& instance();

  /// Starts capture into a ring of `capacity` events (drops oldest on
  /// overflow). Clears any previous capture.
  void enable(std::size_t capacity = kDefaultCapacity);
  /// Stops capture; recorded events remain readable via snapshot().
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Drops all recorded events (capture state is unchanged).
  void clear();

  // --- recording (all no-ops while disabled) ---------------------------
  void span_begin(std::string label, std::string track,
                  std::string category = {}, SimTime sim_s = kNoSim);
  void span_end(std::string label, std::string track, SimTime sim_s = kNoSim);
  /// Span with a known virtual start and duration — the natural shape for
  /// work scheduled on simulated stream timelines.
  void complete(std::string label, std::string track, SimTime sim_start_s,
                double duration_s, std::string category = {});
  /// Places the span at the track's running cursor and advances the
  /// cursor by `duration_s` — gives clock-less components (the analytic
  /// CommModel) a self-consistent timeline of their own.
  void complete_at_cursor(std::string label, std::string track,
                          double duration_s, std::string category = {});
  void instant(std::string label, std::string track, SimTime sim_s = kNoSim,
               std::string category = {});
  void counter(std::string name, std::string track, double value,
               SimTime sim_s = kNoSim);

  // --- inspection ------------------------------------------------------
  /// Ring contents, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;
  /// Total events recorded since enable() (including ones dropped since).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring overflow.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  Tracer() = default;
  void push(Event event);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;      ///< next write slot
  std::uint64_t total_ = 0;   ///< events pushed since enable()
  std::unordered_map<std::string, double> cursors_;
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII span: records the begin edge at construction and the end edge at
/// destruction. Virtual stamps are optional — pass the begin stamp to the
/// constructor and the end stamp via set_sim_end() before scope exit.
class ScopedSpan {
 public:
  ScopedSpan(std::string label, std::string track = "host",
             std::string category = {}, SimTime sim_begin = kNoSim);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_sim_end(SimTime sim_s) { sim_end_ = sim_s; }

 private:
  std::string label_;
  std::string track_;
  SimTime sim_end_ = kNoSim;
  bool active_ = false;
};

}  // namespace exa::trace
