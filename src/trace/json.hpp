#pragma once
/// \file json.hpp
/// Minimal JSON value + parser/serializer for the trace exporters.
///
/// The container has no JSON dependency, and the trace subsystem needs
/// both directions: the exporters *emit* Chrome trace-event JSON and
/// Extra-P-style JsonLines, and the scaling-model side *reads* JSONL
/// profiles back. This is a deliberately small implementation covering
/// the JSON subset those formats use (objects, arrays, strings, finite
/// numbers, booleans, null — no \u escapes beyond pass-through).

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace exa::trace {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw support::Error (via EXA-style checks) on
  /// kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Serializes back to compact JSON.
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses one JSON document; throws support::Error with an offset on
/// malformed input. Trailing whitespace is allowed, trailing content is
/// not.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Escapes `text` for inclusion inside a JSON string literal (no quotes
/// added).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Formats a finite double the way the exporters do (shortest-ish %.12g;
/// non-finite values become 0 — JSON has no NaN/Inf).
[[nodiscard]] std::string json_number(double value);

}  // namespace exa::trace
