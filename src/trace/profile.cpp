#include "trace/profile.hpp"

#include <cmath>
#include <fstream>
#include <utility>

#include "support/assert.hpp"
#include "trace/json.hpp"

namespace exa::trace {

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable() { enabled_.store(true, std::memory_order_relaxed); }

void Profiler::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Profiler::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
}

void Profiler::record(const std::string& callpath, double p, double value,
                      const std::string& metric) {
  if (!enabled()) return;
  record(ProfileSample{{{"p", p}}, callpath, metric, value});
}

void Profiler::record(ProfileSample sample) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(std::move(sample));
}

std::vector<ProfileSample> Profiler::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::string to_jsonl(const ProfileSample& sample) {
  std::string out = "{\"params\":{";
  bool first = true;
  for (const auto& [name, value] : sample.params) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_number(value);
  }
  out += "},\"callpath\":\"" + json_escape(sample.callpath) +
         "\",\"metric\":\"" + json_escape(sample.metric) +
         "\",\"value\":" + json_number(sample.value) + "}";
  return out;
}

void append_jsonl(const std::string& path,
                  const std::vector<ProfileSample>& samples) {
  std::ofstream file(path, std::ios::binary | std::ios::app);
  if (!file) throw support::Error("cannot open profile file: " + path);
  for (const ProfileSample& sample : samples) {
    file << to_jsonl(sample) << '\n';
  }
  if (!file.good()) {
    throw support::Error("failed writing profile file: " + path);
  }
}

ProfileJsonlStream::ProfileJsonlStream(std::string path)
    : path_(std::move(path)),
      file_(std::make_unique<std::ofstream>(path_,
                                            std::ios::binary | std::ios::app)) {
  if (!*file_) throw support::Error("cannot open profile file: " + path_);
}

ProfileJsonlStream::~ProfileJsonlStream() = default;

void ProfileJsonlStream::append(const ProfileSample& sample) {
  *file_ << to_jsonl(sample) << '\n' << std::flush;
  if (!file_->good()) {
    throw support::Error("failed writing profile file: " + path_);
  }
  ++appended_;
}

std::vector<ProfileSample> load_jsonl(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw support::Error("cannot open profile file: " + path);
  std::vector<ProfileSample> samples;
  std::string line;
  int line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue value;
    try {
      value = json_parse(line);
    } catch (const support::Error& err) {
      throw support::Error(path + ":" + std::to_string(line_no) + ": " +
                           err.what());
    }
    ProfileSample sample;
    if (const JsonValue* params = value.find("params");
        params != nullptr && params->is_object()) {
      for (const auto& [name, param] : params->as_object()) {
        if (param.is_number()) sample.params[name] = param.as_number();
      }
    }
    if (const JsonValue* callpath = value.find("callpath");
        callpath != nullptr && callpath->is_string()) {
      sample.callpath = callpath->as_string();
    }
    if (const JsonValue* metric = value.find("metric");
        metric != nullptr && metric->is_string()) {
      sample.metric = metric->as_string();
    }
    if (const JsonValue* v = value.find("value");
        v != nullptr && v->is_number()) {
      sample.value = v->as_number();
    }
    if (sample.callpath.empty()) {
      throw support::Error(path + ":" + std::to_string(line_no) +
                           ": profile sample has no callpath");
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<ProfileSample> profile_from_trace(const std::vector<Event>& events,
                                              double p) {
  // Sum virtual span durations per label. Begin/end pairs are matched per
  // track in LIFO order (spans nest within a track).
  std::map<std::string, double> totals;
  std::map<std::string, std::vector<const Event*>> open;  // per track
  for (const Event& event : events) {
    switch (event.kind) {
      case EventKind::kComplete:
        totals[event.label] += event.value;
        break;
      case EventKind::kSpanBegin:
        open[event.track].push_back(&event);
        break;
      case EventKind::kSpanEnd: {
        auto& stack = open[event.track];
        if (stack.empty()) break;
        const Event* begin = stack.back();
        stack.pop_back();
        if (!std::isnan(begin->sim_s) && !std::isnan(event.sim_s)) {
          totals[begin->label] += event.sim_s - begin->sim_s;
        } else {
          totals[begin->label] += (event.wall_us - begin->wall_us) * 1e-6;
        }
        break;
      }
      default:
        break;
    }
  }
  std::vector<ProfileSample> samples;
  samples.reserve(totals.size());
  for (const auto& [label, total] : totals) {
    samples.push_back(ProfileSample{{{"p", p}}, label, "time", total});
  }
  return samples;
}

}  // namespace exa::trace
