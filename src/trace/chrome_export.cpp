#include "trace/chrome_export.hpp"

#include <cmath>
#include <fstream>
#include <map>

#include "support/assert.hpp"
#include "trace/json.hpp"

namespace exa::trace {

namespace {

struct TrackIds {
  int pid = 0;
  int tid = 0;
};

const char* phase_of(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "B";
    case EventKind::kSpanEnd: return "E";
    case EventKind::kComplete: return "X";
    case EventKind::kInstant: return "i";
    case EventKind::kCounter: return "C";
  }
  return "i";
}

/// Virtual stamps are seconds; Chrome wants microseconds.
double timestamp_us(const Event& event) {
  return std::isnan(event.sim_s) ? event.wall_us : event.sim_s * 1e6;
}

}  // namespace

std::string chrome_trace_json(const std::vector<Event>& events) {
  // Assign pids per track prefix (before '/') and tids per full track, in
  // first-seen order, so exported ids are deterministic.
  std::map<std::string, int> pids;
  std::map<std::string, TrackIds> tracks;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::string body;

  auto ids_for = [&](const std::string& track) -> TrackIds {
    const auto it = tracks.find(track);
    if (it != tracks.end()) return it->second;
    const std::size_t slash = track.find('/');
    const std::string process =
        slash == std::string::npos ? track : track.substr(0, slash);
    const std::string thread =
        slash == std::string::npos ? track : track.substr(slash + 1);
    auto [pit, fresh_pid] =
        pids.emplace(process, static_cast<int>(pids.size()) + 1);
    const TrackIds ids{pit->second, static_cast<int>(tracks.size()) + 1};
    tracks.emplace(track, ids);
    if (fresh_pid) {
      body += ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
              std::to_string(ids.pid) +
              ",\"args\":{\"name\":\"" + json_escape(process) + "\"}}";
    }
    body += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
            std::to_string(ids.pid) + ",\"tid\":" + std::to_string(ids.tid) +
            ",\"args\":{\"name\":\"" + json_escape(thread) + "\"}}";
    return ids;
  };

  for (const Event& event : events) {
    const TrackIds ids = ids_for(event.track);
    body += ",{\"name\":\"" + json_escape(event.label) + "\"";
    if (!event.category.empty()) {
      body += ",\"cat\":\"" + json_escape(event.category) + "\"";
    }
    body += ",\"ph\":\"";
    body += phase_of(event.kind);
    body += "\",\"ts\":" + json_number(timestamp_us(event)) +
            ",\"pid\":" + std::to_string(ids.pid) +
            ",\"tid\":" + std::to_string(ids.tid);
    switch (event.kind) {
      case EventKind::kComplete:
        body += ",\"dur\":" + json_number(event.value * 1e6);
        break;
      case EventKind::kInstant:
        body += ",\"s\":\"t\"";
        break;
      case EventKind::kCounter:
        body += ",\"args\":{\"value\":" + json_number(event.value) + "}";
        break;
      default:
        break;
    }
    body += "}";
  }

  if (!body.empty()) body.erase(0, 1);  // leading comma
  out += body;
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Event>& events) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw support::Error("cannot open trace file: " + path);
  file << chrome_trace_json(events);
  if (!file.good()) throw support::Error("failed writing trace file: " + path);
}

}  // namespace exa::trace
