#pragma once
/// \file chrome_export.hpp
/// Chrome trace-event exporter: turns a Tracer snapshot into a JSON file
/// loadable in chrome://tracing or Perfetto.
///
/// Track mapping: a track name "gpu0/s1" becomes process "gpu0", thread
/// "s1" (one Chrome track per simulated stream/rank, as the paper's
/// timeline figures are organized); a track with no '/' becomes a
/// single-thread process of the same name. Timestamps prefer the virtual
/// SimTime stamp (microseconds of simulated time) and fall back to wall
/// time for events that carry none.

#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace exa::trace {

/// Renders the events as a Chrome trace-event JSON document (object form,
/// {"traceEvents": [...], ...} with process/thread-name metadata).
[[nodiscard]] std::string chrome_trace_json(const std::vector<Event>& events);

/// Writes chrome_trace_json() to `path`; throws support::Error on I/O
/// failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<Event>& events);

}  // namespace exa::trace
