#include "trace/tracer.hpp"

#include <algorithm>
#include <utility>

namespace exa::trace {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  head_ = 0;
  total_ = 0;
  cursors_.clear();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
  cursors_.clear();
}

void Tracer::push(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  event.wall_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

void Tracer::span_begin(std::string label, std::string track,
                        std::string category, SimTime sim_s) {
  if (!enabled()) return;
  push(Event{EventKind::kSpanBegin, std::move(label), std::move(category),
             std::move(track), 0.0, sim_s, 0.0});
}

void Tracer::span_end(std::string label, std::string track, SimTime sim_s) {
  if (!enabled()) return;
  push(Event{EventKind::kSpanEnd, std::move(label), {}, std::move(track), 0.0,
             sim_s, 0.0});
}

void Tracer::complete(std::string label, std::string track,
                      SimTime sim_start_s, double duration_s,
                      std::string category) {
  if (!enabled()) return;
  push(Event{EventKind::kComplete, std::move(label), std::move(category),
             std::move(track), 0.0, sim_start_s, duration_s});
}

void Tracer::complete_at_cursor(std::string label, std::string track,
                                double duration_s, std::string category) {
  if (!enabled()) return;
  double start = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    double& cursor = cursors_[track];
    start = cursor;
    cursor += duration_s;
  }
  push(Event{EventKind::kComplete, std::move(label), std::move(category),
             std::move(track), 0.0, start, duration_s});
}

void Tracer::instant(std::string label, std::string track, SimTime sim_s,
                     std::string category) {
  if (!enabled()) return;
  push(Event{EventKind::kInstant, std::move(label), std::move(category),
             std::move(track), 0.0, sim_s, 0.0});
}

void Tracer::counter(std::string name, std::string track, double value,
                     SimTime sim_s) {
  if (!enabled()) return;
  push(Event{EventKind::kCounter, std::move(name), {}, std::move(track), 0.0,
             sim_s, value});
}

std::vector<Event> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (total_ <= ring_.size()) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    out.assign(ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

ScopedSpan::ScopedSpan(std::string label, std::string track,
                       std::string category, SimTime sim_begin)
    : label_(std::move(label)), track_(std::move(track)) {
  auto& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  tracer.span_begin(label_, track_, std::move(category), sim_begin);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer::instance().span_end(std::move(label_), std::move(track_), sim_end_);
}

}  // namespace exa::trace
