#pragma once
/// \file comm_model.hpp
/// Analytic inter-node communication model (LogGP-flavored) parameterized
/// by a machine's interconnect. This is the substrate for every scaling
/// result in the paper: GESTS' slab/pencil transposes (§3.3), Pele's ghost
/// exchanges (§3.8), LAMMPS' QEq CG reductions (§3.10.2), CoMet/ExaSky
/// weak scaling (§3.4, §3.6).
///
/// Model: a message of m bytes between two ranks costs
///     L + o + m / B_eff
/// where L is the wire latency, o the per-message software overhead, and
/// B_eff the per-rank share of node injection bandwidth (divided by the
/// number of ranks per node communicating concurrently), degraded by the
/// topology's bisection factor for global patterns. GPU-aware MPI sends
/// device buffers straight to the NIC; without it, each end stages the
/// message across the host link first (§2.2's USE_DEVICE_PTR story).

#include "arch/machine.hpp"

namespace exa::net {

/// Closed-form LogGP collective costs for one machine (see file comment).
/// All cost functions return virtual seconds; `bytes` arguments are bytes.
class CommModel {
 public:
  /// `ranks_per_node` communicating concurrently (usually one per device).
  CommModel(const arch::Machine& machine, int ranks_per_node,
            bool gpu_aware = true);

  /// The machine whose interconnect parameterizes the model.
  [[nodiscard]] const arch::Machine& machine() const { return machine_; }
  /// Ranks sharing one node's injection bandwidth.
  [[nodiscard]] int ranks_per_node() const { return ranks_per_node_; }
  /// Ranks across the whole machine (node_count × ranks_per_node).
  [[nodiscard]] int total_ranks() const {
    return machine_.node_count * ranks_per_node_;
  }
  /// Whether sends go device-buffer-direct to the NIC.
  [[nodiscard]] bool gpu_aware() const { return gpu_aware_; }
  /// Toggles GPU-aware MPI (off adds host staging to every message end).
  void set_gpu_aware(bool aware) { gpu_aware_ = aware; }

  /// Per-rank share of node injection bandwidth (bytes/s).
  [[nodiscard]] double rank_bandwidth() const;
  /// rank_bandwidth degraded by the bisection factor (global patterns).
  [[nodiscard]] double rank_bandwidth_global() const;

  /// Point-to-point message of `bytes` between ranks on different nodes.
  [[nodiscard]] double p2p(double bytes) const;
  /// Nearest-neighbor halo exchange: each rank exchanges `bytes_per_face`
  /// with `faces` neighbors (sends and receives overlap pairwise).
  [[nodiscard]] double halo_exchange(double bytes_per_face, int faces) const;
  /// Allreduce of `bytes` over `ranks` (Rabenseifner: reduce-scatter +
  /// allgather).
  [[nodiscard]] double allreduce(double bytes, int ranks) const;
  /// Personalized all-to-all within a group of `ranks`: every pair
  /// exchanges `bytes_per_pair`.
  [[nodiscard]] double alltoall(double bytes_per_pair, int ranks) const;
  /// Broadcast of `bytes` to `ranks` (binomial tree, pipelined for large
  /// messages).
  [[nodiscard]] double bcast(double bytes, int ranks) const;
  /// \brief Barrier over `ranks` ranks (seconds): latency-only tree.
  [[nodiscard]] double barrier(int ranks) const;

  /// \brief Cost (seconds) of staging a `bytes`-sized device buffer through
  /// the host on one end when the MPI is not GPU-aware (applies to both
  /// sender and receiver; zero when GPU-aware or CPU-only). Public so the
  /// event-driven `Fabric` charges bit-identical staging terms.
  [[nodiscard]] double staging_cost(double bytes) const;

 private:
  [[nodiscard]] static double log2_ceil(int n);

  arch::Machine machine_;
  int ranks_per_node_;
  bool gpu_aware_;
};

}  // namespace exa::net
