#pragma once
/// \file fabric.hpp
/// Topology-aware event-driven network fabric.
///
/// `CommModel` prices every message against a closed-form `L + o + m/B_eff`
/// cost — good enough for first-order scaling studies, but blind to the
/// effects the Frontier CoE actually fought (PAPER.md §2.2, §3.3, §3.6):
/// link congestion under adversarial traffic, compute/communication
/// overlap, stragglers, and flaky links. `Fabric` adds those effects on
/// top of the same calibrated inputs:
///
///  * a **link graph** derived from `arch::Machine` — a two-level tapered
///    fat-tree or a dragonfly built from the interconnect's injection
///    bandwidth and bisection factor;
///  * a **phase engine** for collectives: each collective becomes a
///    schedule of communication phases whose *uncongested* costs sum
///    exactly to the `CommModel` closed form, and whose *congested* costs
///    route every phase's messages over the link graph and charge the
///    bottleneck link;
///  * a **fault/perturbation layer**: deterministic degraded links,
///    straggler ranks, and dropped-then-retried messages with exponential
///    backoff.
///
/// **Equivalence guarantee (golden-gated):** with `config.congestion ==
/// false` and no faults configured, every `Fabric` collective reproduces
/// the corresponding `CommModel` cost to within 1e-9 relative error (the
/// phase schedule re-derives the closed form as a sum over phases; only
/// floating-point association differs). `tests/qa` property-tests this
/// over random machines, group sizes, and message sizes.
///
/// Units: all times are seconds, all sizes bytes, all bandwidths bytes/s.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/machine.hpp"
#include "net/comm_model.hpp"
#include "support/reduce.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace exa::net {

/// Inter-node wiring pattern the link graph is built on.
enum class Topology {
  kFatTree,    ///< two-level leaf/spine tree, uplinks tapered to bisection
  kDragonfly,  ///< node groups with all-to-all global links between groups
};

/// Fault / perturbation knobs. All effects are deterministic functions of
/// `seed` so runs replay bit-exactly.
struct FaultConfig {
  /// Fraction of fabric links (uplinks/global links) degraded at build
  /// time (dimensionless, in [0, 1]).
  double degraded_link_fraction = 0.0;
  /// Bandwidth multiplier a degraded link keeps (dimensionless, in (0, 1]).
  double degrade_factor = 0.25;
  /// Fraction of ranks that straggle (dimensionless, in [0, 1]).
  double straggler_fraction = 0.0;
  /// Compute-time multiplier for straggler ranks (dimensionless, >= 1).
  double straggler_slowdown = 1.0;
  /// Per-message drop probability (dimensionless, in [0, 0.9]).
  double drop_probability = 0.0;
  /// Upper bound on resend attempts for one message before it is charged
  /// as delivered anyway (count).
  int max_retries = 8;
  /// First-retry backoff (seconds); retry k waits `2^k` times this.
  double backoff_base_s = 5.0e-6;
  /// Seed for degraded-link selection, straggler membership, and message
  /// drop sampling.
  std::uint64_t seed = 0xFAB51Cull;

  /// True when any perturbation is configured (forces the event-driven
  /// engine on even if congestion modeling is off).
  [[nodiscard]] bool any() const {
    return degraded_link_fraction > 0.0 || straggler_fraction > 0.0 ||
           drop_probability > 0.0;
  }
};

/// Build-time fabric configuration.
struct FabricConfig {
  Topology topology = Topology::kFatTree;  ///< link-graph wiring pattern
  /// Model per-link bandwidth sharing under contention. Off (with no
  /// faults), the fabric reduces exactly to the analytic CommModel.
  bool congestion = false;
  FaultConfig faults;  ///< perturbation layer (defaults to none)
  /// Number of simulated ranks that get their own trace lane
  /// ("fabric/rank<i>") when the tracer is enabled (count).
  int trace_rank_lanes = 8;
  /// Phases sampled per collective when estimating congestion for large
  /// groups (count; the latency/volume ledger stays exact — sampling only
  /// extrapolates the congestion surcharge).
  int max_sampled_phases = 48;
};

/// One directed link of the fabric graph.
struct FabricLink {
  enum class Kind : std::uint8_t {
    kInjection,  ///< node NIC, node -> first switch
    kEjection,   ///< last switch -> node NIC
    kUplink,     ///< fat-tree: leaf -> spine (tapered)
    kDownlink,   ///< fat-tree: spine -> leaf (tapered)
    kLocal,      ///< dragonfly: intra-group fabric
    kGlobal,     ///< dragonfly: group <-> group optical link
  };
  Kind kind = Kind::kInjection;  ///< where this link sits in the graph
  /// Undegraded capacity (bytes/s).
  double bandwidth_bytes_per_s = 0.0;
  /// True when the fault layer degraded this link at build time.
  bool degraded = false;

  /// Capacity after degradation (bytes/s).
  [[nodiscard]] double effective_bandwidth(double degrade_factor) const {
    return degraded ? bandwidth_bytes_per_s * degrade_factor
                    : bandwidth_bytes_per_s;
  }
};

/// The link graph for one machine: builds the wiring and answers routing
/// queries (`route`) as lists of link ids. Paths are minimal and
/// deterministic (static routing — aligned traffic *does* hotspot, which
/// is the behavior the congestion model exists to expose).
class FabricTopology {
 public:
  /// Builds the graph for `machine` under wiring `kind`.
  FabricTopology(const arch::Machine& machine, Topology kind);

  /// Wiring pattern the graph was built with.
  [[nodiscard]] Topology kind() const { return kind_; }
  /// Number of endpoint nodes (count).
  [[nodiscard]] int node_count() const { return node_count_; }
  /// Nodes attached to one leaf switch / dragonfly group (count).
  [[nodiscard]] int nodes_per_switch() const { return nodes_per_switch_; }
  /// Leaf switches (fat-tree) or groups (dragonfly) (count).
  [[nodiscard]] int switch_count() const { return switch_count_; }
  /// Spine switches (fat-tree only; 0 for dragonfly) (count).
  [[nodiscard]] int spine_count() const { return spine_count_; }
  /// All links, indexable by the ids `route` emits.
  [[nodiscard]] const std::vector<FabricLink>& links() const { return links_; }

  /// Appends the link ids of the (minimal, static) path from `src_node`
  /// to `dst_node` onto `out`. Same-node traffic appends nothing.
  void route(int src_node, int dst_node, std::vector<int>& out) const;

  /// Leaf switch / group of a node.
  [[nodiscard]] int switch_of(int node) const {
    return node / nodes_per_switch_;
  }

  /// Marks `fraction` of the core links (uplinks/downlinks/global) as
  /// degraded, selected deterministically from `seed`.
  void degrade_links(double fraction, std::uint64_t seed);

 private:
  [[nodiscard]] int injection_link(int node) const;
  [[nodiscard]] int ejection_link(int node) const;

  Topology kind_;
  int node_count_ = 0;
  int nodes_per_switch_ = 0;
  int switch_count_ = 0;
  int spine_count_ = 0;
  std::vector<FabricLink> links_;
  /// First id of each link block (see fabric.cpp for the layout).
  int uplink_base_ = 0;
  int local_base_ = 0;
  int global_base_ = 0;
};

/// Event-driven multi-rank network fabric. Construction mirrors
/// `CommModel` (same machine/ranks-per-node/GPU-awareness inputs); the
/// collective methods are drop-in signature-compatible with it, so a
/// driver migrates by swapping the type. All returned costs are seconds.
///
/// Thread safety: quiet-mode (analytic-reduction) cost queries are safe
/// to call concurrently. Event-driven collectives run their phases in
/// parallel across the global ThreadPool *internally* and reuse a
/// per-fabric scratch pool, so calls on the same Fabric must be
/// externally serialized — as must `transfer()`, which additionally
/// mutates link cursors and the drop RNG (RankSim owns exactly that).
class Fabric {
 public:
  /// `ranks_per_node` simulated ranks share each node's injection
  /// bandwidth; `gpu_aware` mirrors CommModel's host-staging behavior.
  explicit Fabric(const arch::Machine& machine, int ranks_per_node,
                  FabricConfig config = {}, bool gpu_aware = true);

  /// The calibrated analytic model the fabric reduces to (the fast path
  /// for closed-form queries).
  [[nodiscard]] const CommModel& analytic() const { return model_; }
  /// Build-time configuration.
  [[nodiscard]] const FabricConfig& config() const { return config_; }
  /// The link graph.
  [[nodiscard]] const FabricTopology& topology() const { return topo_; }
  /// Machine the fabric models.
  [[nodiscard]] const arch::Machine& machine() const { return model_.machine(); }
  /// Simulated ranks per node (count).
  [[nodiscard]] int ranks_per_node() const { return model_.ranks_per_node(); }
  /// Total simulated ranks (count).
  [[nodiscard]] int total_ranks() const { return model_.total_ranks(); }
  /// True when the event-driven engine is active (congestion on or any
  /// fault configured); false means exact CommModel reduction.
  [[nodiscard]] bool event_driven() const {
    return config_.congestion || config_.faults.any();
  }

  // --- CommModel-compatible cost queries (seconds) ----------------------

  /// Point-to-point message of `bytes` between ranks on different nodes
  /// (seconds).
  [[nodiscard]] double p2p(double bytes) const;
  /// Halo exchange of `bytes_per_face` with `faces` neighbors (seconds).
  [[nodiscard]] double halo_exchange(double bytes_per_face, int faces) const;
  /// Allreduce of `bytes` over `ranks` ranks (seconds).
  [[nodiscard]] double allreduce(double bytes, int ranks) const;
  /// Personalized all-to-all of `bytes_per_pair` within `ranks` ranks
  /// (seconds).
  [[nodiscard]] double alltoall(double bytes_per_pair, int ranks) const;
  /// Broadcast of `bytes` to `ranks` ranks (seconds).
  [[nodiscard]] double bcast(double bytes, int ranks) const;
  /// Barrier over `ranks` ranks (seconds).
  [[nodiscard]] double barrier(int ranks) const;

  // --- message transport (RankSim substrate) ----------------------------

  /// Outcome of one message pushed through the fabric.
  struct Transfer {
    /// Virtual time the payload is available at the receiver (seconds).
    double delivered_s = 0.0;
    /// Resend attempts the fault layer charged (count).
    int retries = 0;
  };

  /// Injects `bytes` from `src_rank` to `dst_rank` at virtual time
  /// `start_s` and returns the delivery outcome. Congestion serializes
  /// messages on shared links via per-link cursors; the fault layer may
  /// drop and re-send with exponential backoff. Delivery order per
  /// (src, dst) pair is preserved (FIFO channel semantics).
  [[nodiscard]] Transfer transfer(int src_rank, int dst_rank, double bytes,
                                  double start_s);

  /// Resets link cursors and channel state (fresh virtual time origin).
  void reset_transport();

  /// Node hosting `rank` (block placement: rank / ranks_per_node).
  [[nodiscard]] int node_of_rank(int rank) const {
    return rank / model_.ranks_per_node();
  }
  /// True when the fault layer marked `rank` a straggler.
  [[nodiscard]] bool is_straggler(int rank) const;
  /// Compute-time multiplier for `rank` (dimensionless; 1 for healthy
  /// ranks, `straggler_slowdown` for stragglers).
  [[nodiscard]] double straggler_scale(int rank) const {
    return is_straggler(rank) ? config_.faults.straggler_slowdown : 1.0;
  }

 private:
  /// Routing/load scratch for one phase of a collective. The phase engine
  /// runs phases in parallel across pool workers; each dispatch chunk owns
  /// one scratch slot, so concurrent phases never share load ledgers.
  struct PhaseScratch {
    std::vector<int> route;    ///< link ids of the path being loaded
    std::vector<double> load;  ///< per-link bytes this phase
    std::vector<int> touched;  ///< links with nonzero load this phase
  };

  /// Grows the reusable scratch pool to `count` slots (each drained back
  /// to all-zero between uses) and returns it.
  std::vector<PhaseScratch>& ensure_scratch(std::size_t count) const;

  /// Sums term(phase, scratch) over `phases` phases, dispatched across the
  /// global ThreadPool with support::deterministic_reduce: chunk
  /// boundaries depend only on the phase count and partials combine in
  /// ascending phase order, so the sum is bitwise identical to the
  /// historical serial `for (phase) total += term(phase)` loop at any
  /// EXA_THREADS whenever phases <= support::kReduceSlots (always true for
  /// the <= max_sampled_phases schedules the collectives emit).
  template <typename PhaseTerm>
  [[nodiscard]] double phase_sum(int phases, PhaseTerm&& term) const {
    if (phases <= 0) return 0.0;
    const auto n = static_cast<std::size_t>(phases);
    const std::size_t grain = support::reduce_grain(n);
    auto& scratch = ensure_scratch((n + grain - 1) / grain);
    return support::deterministic_reduce(
        support::ThreadPool::global(), n,
        [&](std::size_t lo, std::size_t hi) {
          PhaseScratch& slot = scratch[lo / grain];
          double partial = 0.0;
          for (std::size_t ph = lo; ph < hi; ++ph) {
            partial += term(static_cast<int>(ph), slot);
          }
          return partial;
        });
  }

  /// Accumulates `bytes` onto every link of the rank-level path
  /// src_rank -> dst_rank (no-op for same-node or empty messages).
  void load_message(PhaseScratch& scratch, int src_rank, int dst_rank,
                    double bytes) const;
  /// Bottleneck seconds over the links touched since the last drain
  /// (max of load / effective bandwidth), then clears the load ledger.
  [[nodiscard]] double drain_loads(PhaseScratch& scratch) const;
  /// Expected fault surcharge for one phase of `msgs` concurrent messages
  /// whose resend costs `msg_cost_s` (seconds).
  [[nodiscard]] double retry_surcharge(double msgs, double msg_cost_s) const;
  /// Shared engine for ring-style phase schedules (alltoall).
  [[nodiscard]] double ring_phases(double bytes_per_pair, int ranks) const;
  /// Shared engine for XOR/binomial phase schedules (allreduce, bcast,
  /// barrier). Returns the volume + congestion + fault portion only; the
  /// caller owns latency and staging terms.
  [[nodiscard]] double tree_phases(double total_volume, int ranks, int steps,
                                   bool pairwise) const;
  void trace(const char* op, double bytes, int ranks, double cost) const;

  CommModel model_;
  FabricConfig config_;
  FabricTopology topo_;
  support::Rng drop_rng_;
  /// Per-link virtual-time cursor for transfer() serialization (seconds).
  std::vector<double> link_cursor_;
  /// Last delivery per (src_rank, dst_rank) channel for FIFO clamping.
  std::unordered_map<std::uint64_t, double> channel_last_;
  /// Reusable per-chunk scratch slots for the parallel phase engine (slot
  /// 0 doubles as the serial scratch for p2p/transfer routing).
  mutable std::vector<PhaseScratch> phase_scratch_;
};

}  // namespace exa::net
