#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/units.hpp"
#include "trace/tracer.hpp"

namespace exa::net {

namespace {

/// Nodes per leaf switch (fat-tree) / per group (dragonfly). 32 matches
/// the Slingshot leaf radix once half the ports face up.
constexpr int kNodesPerSwitch = 32;
/// Spine switches of the two-level fat-tree. Static (src+dst)%kSpines
/// routing over 8 spines is what makes aligned traffic hotspot.
constexpr int kSpines = 8;

[[nodiscard]] double log2_ceil(int n) {
  EXA_REQUIRE(n >= 1);
  return std::ceil(std::log2(static_cast<double>(n)));
}

/// Deterministic per-item uniform in [0, 1) for fault-membership draws.
[[nodiscard]] double hash_uniform(std::uint64_t seed, std::uint64_t item) {
  support::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ull * (item + 1)));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace

// --- FabricTopology -------------------------------------------------------

FabricTopology::FabricTopology(const arch::Machine& machine, Topology kind)
    : kind_(kind), node_count_(machine.node_count) {
  EXA_REQUIRE(node_count_ >= 1);
  const double inj = machine.network.node_injection_bandwidth();
  EXA_REQUIRE(inj > 0.0);
  const double taper = machine.network.bisection_factor;

  nodes_per_switch_ = std::min(node_count_, kNodesPerSwitch);
  switch_count_ = (node_count_ + nodes_per_switch_ - 1) / nodes_per_switch_;

  // Layout: [0, N) injection, [N, 2N) ejection, then the core links.
  links_.reserve(static_cast<std::size_t>(node_count_) * 2);
  for (int i = 0; i < 2 * node_count_; ++i) {
    FabricLink link;
    link.kind = i < node_count_ ? FabricLink::Kind::kInjection
                                : FabricLink::Kind::kEjection;
    link.bandwidth_bytes_per_s = inj;
    links_.push_back(link);
  }

  if (kind_ == Topology::kFatTree) {
    spine_count_ = std::min(kSpines, std::max(1, switch_count_ - 1));
    uplink_base_ = static_cast<int>(links_.size());
    // Per-leaf uplink capacity tapers to the bisection factor, split
    // evenly over the spines; downlinks mirror the uplinks.
    const double per_spine =
        nodes_per_switch_ * inj * taper / spine_count_;
    for (int dir = 0; dir < 2; ++dir) {
      for (int leaf = 0; leaf < switch_count_; ++leaf) {
        for (int spine = 0; spine < spine_count_; ++spine) {
          FabricLink link;
          link.kind = dir == 0 ? FabricLink::Kind::kUplink
                               : FabricLink::Kind::kDownlink;
          link.bandwidth_bytes_per_s = per_spine;
          links_.push_back(link);
        }
      }
    }
  } else {
    // Dragonfly: one shared intra-group fabric link per group, plus one
    // global optical link per ordered group pair, the group's tapered
    // global capacity split evenly across its peers.
    local_base_ = static_cast<int>(links_.size());
    for (int g = 0; g < switch_count_; ++g) {
      FabricLink link;
      link.kind = FabricLink::Kind::kLocal;
      link.bandwidth_bytes_per_s = nodes_per_switch_ * inj;
      links_.push_back(link);
    }
    global_base_ = static_cast<int>(links_.size());
    const int peers = std::max(1, switch_count_ - 1);
    const double per_peer = nodes_per_switch_ * inj * taper / peers;
    for (int gs = 0; gs < switch_count_; ++gs) {
      for (int gd = 0; gd < switch_count_; ++gd) {
        FabricLink link;
        link.kind = FabricLink::Kind::kGlobal;
        link.bandwidth_bytes_per_s = per_peer;
        links_.push_back(link);
      }
    }
  }
}

int FabricTopology::injection_link(int node) const { return node; }

int FabricTopology::ejection_link(int node) const {
  return node_count_ + node;
}

void FabricTopology::route(int src_node, int dst_node,
                           std::vector<int>& out) const {
  EXA_REQUIRE(src_node >= 0 && src_node < node_count_);
  EXA_REQUIRE(dst_node >= 0 && dst_node < node_count_);
  if (src_node == dst_node) return;
  out.push_back(injection_link(src_node));
  const int ls = switch_of(src_node);
  const int ld = switch_of(dst_node);
  if (ls != ld) {
    if (kind_ == Topology::kFatTree) {
      const int spine = (ls + ld) % spine_count_;
      out.push_back(uplink_base_ + ls * spine_count_ + spine);
      out.push_back(uplink_base_ + switch_count_ * spine_count_ +
                    ld * spine_count_ + spine);
    } else {
      out.push_back(local_base_ + ls);
      out.push_back(global_base_ + ls * switch_count_ + ld);
      out.push_back(local_base_ + ld);
    }
  } else if (kind_ == Topology::kDragonfly) {
    out.push_back(local_base_ + ls);
  }
  out.push_back(ejection_link(dst_node));
}

void FabricTopology::degrade_links(double fraction, std::uint64_t seed) {
  EXA_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
  if (fraction <= 0.0) return;
  const int core_base =
      kind_ == Topology::kFatTree ? uplink_base_ : local_base_;
  for (std::size_t id = static_cast<std::size_t>(core_base);
       id < links_.size(); ++id) {
    if (hash_uniform(seed, id) < fraction) links_[id].degraded = true;
  }
}

// --- Fabric ---------------------------------------------------------------

Fabric::Fabric(const arch::Machine& machine, int ranks_per_node,
               FabricConfig config, bool gpu_aware)
    : model_(machine, ranks_per_node, gpu_aware),
      config_(config),
      topo_(machine, config.topology),
      drop_rng_(config.faults.seed) {
  EXA_REQUIRE(config_.faults.degrade_factor > 0.0 &&
              config_.faults.degrade_factor <= 1.0);
  EXA_REQUIRE(config_.faults.drop_probability >= 0.0 &&
              config_.faults.drop_probability <= 0.9);
  EXA_REQUIRE(config_.faults.straggler_slowdown >= 1.0);
  EXA_REQUIRE(config_.faults.max_retries >= 0);
  EXA_REQUIRE(config_.max_sampled_phases >= 1);
  topo_.degrade_links(config_.faults.degraded_link_fraction,
                      config_.faults.seed);
  link_cursor_.assign(topo_.links().size(), 0.0);
}

std::vector<Fabric::PhaseScratch>& Fabric::ensure_scratch(
    std::size_t count) const {
  if (phase_scratch_.size() < count) phase_scratch_.resize(count);
  const std::size_t links = topo_.links().size();
  for (auto& slot : phase_scratch_) {
    if (slot.load.size() != links) slot.load.assign(links, 0.0);
  }
  return phase_scratch_;
}

bool Fabric::is_straggler(int rank) const {
  const auto& f = config_.faults;
  if (f.straggler_fraction <= 0.0) return false;
  return hash_uniform(f.seed ^ 0x57a6ull, static_cast<std::uint64_t>(rank)) <
         f.straggler_fraction;
}

void Fabric::trace(const char* op, double bytes, int ranks,
                   double cost) const {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  tracer.complete_at_cursor(
      std::string("fabric:") + op + " " +
          support::format_bytes(static_cast<std::uint64_t>(bytes)) + " x" +
          std::to_string(ranks),
      "fabric", cost, "net");
}

void Fabric::load_message(PhaseScratch& scratch, int src_rank, int dst_rank,
                          double bytes) const {
  if (bytes <= 0.0) return;
  const int sn = node_of_rank(src_rank);
  const int dn = node_of_rank(dst_rank);
  if (sn == dn) return;
  scratch.route.clear();
  topo_.route(sn, dn, scratch.route);
  for (const int link : scratch.route) {
    if (scratch.load[static_cast<std::size_t>(link)] == 0.0) {
      scratch.touched.push_back(link);
    }
    scratch.load[static_cast<std::size_t>(link)] += bytes;
  }
}

double Fabric::drain_loads(PhaseScratch& scratch) const {
  double worst = 0.0;
  const double degrade = config_.faults.degrade_factor;
  for (const int link : scratch.touched) {
    const double bw =
        topo_.links()[static_cast<std::size_t>(link)].effective_bandwidth(
            degrade);
    worst = std::max(worst,
                     scratch.load[static_cast<std::size_t>(link)] / bw);
    scratch.load[static_cast<std::size_t>(link)] = 0.0;
  }
  scratch.touched.clear();
  return worst;
}

double Fabric::retry_surcharge(double msgs, double msg_cost_s) const {
  const double q = config_.faults.drop_probability;
  if (q <= 0.0 || msgs <= 0.0) return 0.0;
  // First-order expected cost of the phase's slowest message dropping
  // once: probability any of the phase's messages drops, times one resend
  // plus the first backoff step.
  const double p_any = 1.0 - std::pow(1.0 - q, msgs);
  return p_any * (msg_cost_s + config_.faults.backoff_base_s);
}

double Fabric::ring_phases(double bytes_per_pair, int ranks) const {
  const auto& net = machine().network;
  const double bwg = model_.rank_bandwidth_global();
  const int phases = ranks - 1;
  double volume_s = 0.0;
  if (!event_driven()) {
    // Exact reduction: (p-1) equal phases re-derive the closed form as a
    // sum (CommModel computes (p-1)*m/bwg in one multiply).
    for (int k = 0; k < phases; ++k) volume_s += bytes_per_pair / bwg;
    return volume_s;
  }
  const int samples = std::min(phases, config_.max_sampled_phases);
  // Phases are independent given their own scratch: route loads, drain the
  // bottleneck, add the fault surcharge. phase_sum runs them across the
  // pool and combines in phase order (bitwise equal to the serial loop).
  const double sampled =
      phase_sum(samples, [&](int i, PhaseScratch& scratch) {
        const int k =
            1 + static_cast<int>((static_cast<std::int64_t>(i) * phases) /
                                 samples);
        for (int r = 0; r < ranks; ++r) {
          load_message(scratch, r, (r + k) % ranks, bytes_per_pair);
        }
        const double congested = drain_loads(scratch);
        return std::max(bytes_per_pair / bwg, congested) +
               retry_surcharge(static_cast<double>(ranks),
                               net.per_message_overhead_s +
                                   bytes_per_pair / bwg);
      });
  volume_s = sampled / samples * phases;
  return volume_s;
}

double Fabric::tree_phases(double total_volume, int ranks, int steps,
                           bool pairwise) const {
  const auto& net = machine().network;
  const double bwg = model_.rank_bandwidth_global();
  const double per_phase =
      steps > 0 ? total_volume / static_cast<double>(steps) : 0.0;
  double volume_s = 0.0;
  if (!event_driven()) {
    for (int j = 0; j < steps; ++j) volume_s += per_phase / bwg;
    return volume_s;
  }
  const int levels = std::max(1, static_cast<int>(log2_ceil(ranks)));
  volume_s = phase_sum(steps, [&](int j, PhaseScratch& scratch) {
    const int distance = 1 << (j % levels);
    double msgs = 0.0;
    if (per_phase > 0.0) {
      if (pairwise) {
        // Recursive doubling: r <-> r ^ distance.
        for (int r = 0; r < ranks; ++r) {
          const int partner = r ^ distance;
          if (partner < ranks) {
            load_message(scratch, r, partner, per_phase);
            msgs += 1.0;
          }
        }
      } else {
        // Binomial tree: r < distance sends to r + distance.
        for (int r = 0; r < distance && r + distance < ranks; ++r) {
          load_message(scratch, r, r + distance, per_phase);
          msgs += 1.0;
        }
      }
    } else {
      msgs = pairwise ? static_cast<double>(ranks) : 1.0;
    }
    const double congested = drain_loads(scratch);
    return std::max(per_phase / bwg, congested) +
           retry_surcharge(msgs, net.per_message_overhead_s +
                                     per_phase / bwg);
  });
  return volume_s;
}

double Fabric::p2p(double bytes) const {
  EXA_REQUIRE(bytes >= 0.0);
  const auto& net = machine().network;
  const double analytic = bytes / model_.rank_bandwidth();
  double volume_s = analytic;
  if (event_driven()) {
    // Canonical placement: rank 0 to the last rank, crossing the core.
    PhaseScratch& scratch = ensure_scratch(1)[0];
    load_message(scratch, 0, total_ranks() - 1, bytes);
    volume_s = std::max(analytic, drain_loads(scratch)) +
               retry_surcharge(1.0, net.per_message_overhead_s + analytic);
  }
  const double cost = net.latency_s + net.per_message_overhead_s + volume_s +
                      2.0 * model_.staging_cost(bytes);
  trace("p2p", bytes, 2, cost);
  return cost;
}

double Fabric::halo_exchange(double bytes_per_face, int faces) const {
  EXA_REQUIRE(bytes_per_face >= 0.0);
  EXA_REQUIRE(faces >= 0);
  if (faces == 0) return 0.0;
  const auto& net = machine().network;
  const double bw = model_.rank_bandwidth();
  const double fixed = net.latency_s + net.per_message_overhead_s +
                       2.0 * model_.staging_cost(bytes_per_face);
  double cost = 0.0;
  if (!event_driven()) {
    for (int f = 0; f < faces; ++f) cost += fixed + bytes_per_face / bw;
  } else {
    // All ranks exchange each face concurrently; neighbor offsets walk
    // the three axes of a cubic rank grid (±1, ±s, ±s²).
    const int p = total_ranks();
    const int stride = std::max(
        1, static_cast<int>(std::round(std::cbrt(static_cast<double>(p)))));
    cost = phase_sum(faces, [&](int f, PhaseScratch& scratch) {
      const int axis = (f / 2) % 3;
      int offset = axis == 0 ? 1 : (axis == 1 ? stride : stride * stride);
      if (f % 2 == 1) offset = p - offset;  // negative direction mod p
      for (int r = 0; r < p; ++r) {
        load_message(scratch, r, (r + offset) % p, bytes_per_face);
      }
      const double congested = drain_loads(scratch);
      return fixed + std::max(bytes_per_face / bw, congested) +
             retry_surcharge(static_cast<double>(p),
                             net.per_message_overhead_s +
                                 bytes_per_face / bw);
    });
  }
  trace("halo_exchange", bytes_per_face * faces, faces, cost);
  return cost;
}

double Fabric::allreduce(double bytes, int ranks) const {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE_MSG(ranks >= 1, "allreduce needs a positive rank count");
  EXA_REQUIRE(ranks <= total_ranks());
  if (ranks == 1) return 0.0;
  const auto& net = machine().network;
  const double steps = 2.0 * log2_ceil(ranks);
  const double volume =
      2.0 * bytes * (static_cast<double>(ranks - 1) / ranks);
  const double cost =
      steps * (net.latency_s + net.per_message_overhead_s) +
      tree_phases(volume, ranks, static_cast<int>(steps), /*pairwise=*/true) +
      2.0 * model_.staging_cost(bytes);
  trace("allreduce", bytes, ranks, cost);
  return cost;
}

double Fabric::alltoall(double bytes_per_pair, int ranks) const {
  EXA_REQUIRE(bytes_per_pair >= 0.0);
  EXA_REQUIRE_MSG(ranks >= 1, "alltoall needs a positive rank count");
  EXA_REQUIRE(ranks <= total_ranks());
  if (ranks == 1) return 0.0;
  const auto& net = machine().network;
  const double peers = static_cast<double>(ranks - 1);
  const double volume = peers * bytes_per_pair;
  const double cost = peers * net.per_message_overhead_s + net.latency_s +
                      ring_phases(bytes_per_pair, ranks) +
                      2.0 * model_.staging_cost(volume);
  trace("alltoall", volume, ranks, cost);
  return cost;
}

double Fabric::bcast(double bytes, int ranks) const {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE_MSG(ranks >= 1, "bcast needs a positive rank count");
  EXA_REQUIRE(ranks <= total_ranks());
  if (ranks == 1) return 0.0;
  const auto& net = machine().network;
  const double steps = log2_ceil(ranks);
  const double cost =
      steps * (net.latency_s + net.per_message_overhead_s) +
      tree_phases(bytes, ranks, static_cast<int>(steps), /*pairwise=*/false) +
      2.0 * model_.staging_cost(bytes);
  trace("bcast", bytes, ranks, cost);
  return cost;
}

double Fabric::barrier(int ranks) const {
  EXA_REQUIRE_MSG(ranks >= 1, "barrier needs a positive rank count");
  EXA_REQUIRE(ranks <= total_ranks());
  if (ranks == 1) return 0.0;
  const auto& net = machine().network;
  const int steps = static_cast<int>(2.0 * log2_ceil(ranks));
  const double cost =
      steps * (net.latency_s + net.per_message_overhead_s) +
      tree_phases(0.0, ranks, steps, /*pairwise=*/true);
  trace("barrier", 0.0, ranks, cost);
  return cost;
}

Fabric::Transfer Fabric::transfer(int src_rank, int dst_rank, double bytes,
                                  double start_s) {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE(start_s >= 0.0);
  EXA_REQUIRE(src_rank >= 0 && src_rank < total_ranks());
  EXA_REQUIRE(dst_rank >= 0 && dst_rank < total_ranks());
  const auto& net = machine().network;
  const auto& faults = config_.faults;
  const double staging = 2.0 * model_.staging_cost(bytes);
  const double analytic_serial = bytes / model_.rank_bandwidth();

  const int sn = node_of_rank(src_rank);
  const int dn = node_of_rank(dst_rank);
  std::vector<int>& route = ensure_scratch(1)[0].route;
  route.clear();
  if (event_driven()) topo_.route(sn, dn, route);

  Transfer out;
  double t = start_s + net.per_message_overhead_s;
  for (int attempt = 0;; ++attempt) {
    double finish;
    if (route.empty()) {
      // Same-node traffic or analytic mode: closed-form serialization.
      finish = t + analytic_serial;
    } else {
      // Virtual-circuit occupancy: the message claims every link of its
      // path from the latest cursor and serializes at the slowest link.
      double begin = t;
      double serial = 0.0;
      for (const int link : route) {
        begin = std::max(begin, link_cursor_[static_cast<std::size_t>(link)]);
        const double bw =
            topo_.links()[static_cast<std::size_t>(link)].effective_bandwidth(
                faults.degrade_factor);
        serial = std::max(serial, bytes / bw);
      }
      finish = begin + serial;
      for (const int link : route) {
        link_cursor_[static_cast<std::size_t>(link)] = finish;
      }
    }
    if (faults.drop_probability > 0.0 && attempt < faults.max_retries &&
        drop_rng_.bernoulli(faults.drop_probability)) {
      // Lost in the fabric: the payload's link time was spent, the
      // sender backs off exponentially and re-injects.
      out.retries += 1;
      t = finish + faults.backoff_base_s * static_cast<double>(1ull << attempt);
      continue;
    }
    double delivered = finish + net.latency_s + staging;
    // FIFO channel semantics: a retried message delays everything behind
    // it on the same (src, dst) channel rather than being overtaken.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank))
         << 32) |
        static_cast<std::uint32_t>(dst_rank);
    auto [it, inserted] = channel_last_.try_emplace(key, delivered);
    if (!inserted) {
      delivered = std::max(delivered, it->second);
      it->second = delivered;
    }
    out.delivered_s = delivered;
    return out;
  }
}

void Fabric::reset_transport() {
  std::fill(link_cursor_.begin(), link_cursor_.end(), 0.0);
  channel_last_.clear();
  drop_rng_.reseed(config_.faults.seed);
}

}  // namespace exa::net
