#include "net/scaling.hpp"

#include "support/assert.hpp"
#include "support/units.hpp"

namespace exa::net {

void ScalingStudy::run(const std::vector<int>& node_counts,
                       const std::function<double(int)>& step_time) {
  EXA_REQUIRE(!node_counts.empty());
  points_.clear();
  points_.reserve(node_counts.size());
  for (const int nodes : node_counts) {
    EXA_REQUIRE(nodes >= 1);
    ScalingPoint p;
    p.nodes = nodes;
    p.seconds = step_time(nodes);
    EXA_REQUIRE_MSG(p.seconds > 0.0, "step time must be positive");
    points_.push_back(p);
  }
  const double t0 = points_.front().seconds;
  const double n0 = points_.front().nodes;
  for (ScalingPoint& p : points_) {
    p.ratio = t0 / p.seconds;
    p.efficiency = kind_ == ScalingKind::kWeak
                       ? p.ratio
                       : p.ratio / (static_cast<double>(p.nodes) / n0);
  }
}

double ScalingStudy::final_efficiency() const {
  EXA_REQUIRE(!points_.empty());
  return points_.back().efficiency;
}

support::Table ScalingStudy::to_table() const {
  support::Table t(name_ + (kind_ == ScalingKind::kWeak ? " (weak scaling)"
                                                        : " (strong scaling)"));
  t.set_header({"Nodes", "Time/step",
                kind_ == ScalingKind::kWeak ? "Efficiency" : "Speed-up",
                "Parallel eff."});
  for (const auto& p : points_) {
    t.add_row({std::to_string(p.nodes), support::format_time(p.seconds),
               support::Table::cell(p.ratio, 3),
               support::Table::cell(p.efficiency * 100.0, 1) + "%"});
  }
  return t;
}

}  // namespace exa::net
