#include "net/rank_sim.hpp"

#include <algorithm>
#include <string>

#include "support/assert.hpp"
#include "support/units.hpp"
#include "trace/tracer.hpp"

namespace exa::net {

RankSim::RankSim(Fabric& fabric, int ranks) : fabric_(fabric) {
  EXA_REQUIRE_MSG(ranks >= 1, "RankSim needs at least one rank");
  EXA_REQUIRE_MSG(ranks <= fabric.total_ranks(),
                  "more simulated ranks than the fabric's machine hosts");
  clocks_.assign(static_cast<std::size_t>(ranks), 0.0);
  fabric_.reset_transport();
}

void RankSim::check_rank(int rank) const {
  EXA_REQUIRE(rank >= 0 && rank < ranks());
}

double RankSim::now(int rank) const {
  check_rank(rank);
  return clocks_[static_cast<std::size_t>(rank)];
}

double RankSim::makespan() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

bool RankSim::traced(int rank) const {
  return rank < fabric_.config().trace_rank_lanes &&
         trace::Tracer::instance().enabled();
}

std::string RankSim::lane(int rank) const {
  return "fabric/rank" + std::to_string(rank);
}

Request RankSim::isend(int src, int dst, double bytes, int tag) {
  check_rank(src);
  check_rank(dst);
  EXA_REQUIRE(bytes >= 0.0);
  const double posted = clocks_[static_cast<std::size_t>(src)];
  const Fabric::Transfer tr = fabric_.transfer(src, dst, bytes, posted);

  MessageRecord record;
  record.src = src;
  record.dst = dst;
  record.tag = tag;
  record.bytes = bytes;
  record.posted_s = posted;
  record.delivered_s = tr.delivered_s;
  record.retries = tr.retries;
  const int message = static_cast<int>(messages_.size());
  messages_.push_back(record);
  unmatched_[{src, dst, tag}].push_back(message);

  // The sender pays the software overhead; the wire time is in flight.
  const double overhead =
      fabric_.machine().network.per_message_overhead_s;
  if (traced(src)) {
    trace::Tracer::instance().complete(
        "isend->r" + std::to_string(dst) + " " +
            support::format_bytes(static_cast<std::uint64_t>(bytes)),
        lane(src), posted, tr.delivered_s - posted, "net");
  }
  clocks_[static_cast<std::size_t>(src)] = posted + overhead;

  Pending p;
  p.kind = Pending::Kind::kSend;
  p.rank = src;
  p.peer = dst;
  p.tag = tag;
  p.local_done_s = posted + overhead;
  p.message = message;
  requests_.push_back(p);
  return Request{static_cast<int>(requests_.size()) - 1};
}

Request RankSim::irecv(int dst, int src, int tag) {
  check_rank(dst);
  check_rank(src);
  Pending p;
  p.kind = Pending::Kind::kRecv;
  p.rank = dst;
  p.peer = src;
  p.tag = tag;
  requests_.push_back(p);
  return Request{static_cast<int>(requests_.size()) - 1};
}

double RankSim::wait(int rank, Request request) {
  check_rank(rank);
  EXA_REQUIRE(request.valid() &&
              request.id < static_cast<int>(requests_.size()));
  Pending& p = requests_[static_cast<std::size_t>(request.id)];
  EXA_REQUIRE_MSG(p.rank == rank, "waiting a request another rank owns");

  double ready = 0.0;
  if (p.kind == Pending::Kind::kSend) {
    ready = p.local_done_s;
  } else {
    if (p.message < 0) {
      auto it = unmatched_.find({p.peer, p.rank, p.tag});
      EXA_REQUIRE_MSG(it != unmatched_.end() && !it->second.empty(),
                      "wait(irecv) before the matching isend was posted");
      p.message = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) unmatched_.erase(it);
    }
    ready = messages_[static_cast<std::size_t>(p.message)].delivered_s;
  }

  double& clock = clocks_[static_cast<std::size_t>(rank)];
  if (ready > clock) {
    if (traced(rank)) {
      trace::Tracer::instance().complete("wait", lane(rank), clock,
                                         ready - clock, "net");
    }
    clock = ready;
  }
  return clock;
}

void RankSim::compute(int rank, double seconds) {
  check_rank(rank);
  EXA_REQUIRE(seconds >= 0.0);
  const double scaled = seconds * fabric_.straggler_scale(rank);
  double& clock = clocks_[static_cast<std::size_t>(rank)];
  if (traced(rank)) {
    trace::Tracer::instance().complete("compute", lane(rank), clock, scaled,
                                       "kernel");
  }
  clock += scaled;
}

void RankSim::advance_to(int rank, double deadline_s) {
  check_rank(rank);
  EXA_REQUIRE(deadline_s >= 0.0);
  double& clock = clocks_[static_cast<std::size_t>(rank)];
  if (deadline_s <= clock) return;
  if (traced(rank)) {
    trace::Tracer::instance().complete("io_wait", lane(rank), clock,
                                       deadline_s - clock, "io");
  }
  clock = deadline_s;
}

double RankSim::launch(int rank, const sim::KernelProfile& profile,
                       const sim::LaunchConfig& launch_cfg) {
  check_rank(rank);
  const arch::Machine& machine = fabric_.machine();
  EXA_REQUIRE_MSG(machine.node.has_gpu(),
                  "RankSim::launch on a CPU-only machine");
  const sim::KernelTiming timing =
      sim::kernel_timing(*machine.node.gpu, profile, launch_cfg);
  const double scaled = timing.total_s * fabric_.straggler_scale(rank);
  double& clock = clocks_[static_cast<std::size_t>(rank)];
  if (traced(rank)) {
    trace::Tracer::instance().complete(
        profile.name.empty() ? "kernel" : profile.name, lane(rank), clock,
        scaled, "kernel");
  }
  clock += scaled;
  return scaled;
}

double RankSim::collective(const char* label, double cost) {
  const double start = makespan();
  auto& tracer = trace::Tracer::instance();
  for (int r = 0; r < ranks(); ++r) {
    if (traced(r)) {
      tracer.complete(label, lane(r), start, cost, "net");
    }
    clocks_[static_cast<std::size_t>(r)] = start + cost;
  }
  return cost;
}

double RankSim::allreduce(double bytes) {
  return collective("allreduce", fabric_.allreduce(bytes, ranks()));
}

double RankSim::alltoall(double bytes_per_pair) {
  return collective("alltoall", fabric_.alltoall(bytes_per_pair, ranks()));
}

double RankSim::halo_exchange(double bytes_per_face, int faces) {
  return collective("halo_exchange",
                    fabric_.halo_exchange(bytes_per_face, faces));
}

double RankSim::barrier() {
  return collective("barrier", fabric_.barrier(ranks()));
}

}  // namespace exa::net
