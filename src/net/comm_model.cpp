#include "net/comm_model.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace exa::net {

CommModel::CommModel(const arch::Machine& machine, int ranks_per_node,
                     bool gpu_aware)
    : machine_(machine), ranks_per_node_(ranks_per_node), gpu_aware_(gpu_aware) {
  EXA_REQUIRE(ranks_per_node >= 1);
  EXA_REQUIRE(machine.network.node_injection_bandwidth() > 0.0);
}

double CommModel::rank_bandwidth() const {
  return machine_.network.node_injection_bandwidth() /
         static_cast<double>(ranks_per_node_);
}

double CommModel::rank_bandwidth_global() const {
  return rank_bandwidth() * machine_.network.bisection_factor;
}

double CommModel::staging_cost(double bytes) const {
  if (gpu_aware_ || !machine_.node.has_gpu()) return 0.0;
  const arch::HostLink& link = machine_.node.gpu->host_link;
  return link.latency_s + bytes / link.bandwidth_bytes_per_s;
}

double CommModel::p2p(double bytes) const {
  EXA_REQUIRE(bytes >= 0.0);
  const auto& net = machine_.network;
  return net.latency_s + net.per_message_overhead_s + bytes / rank_bandwidth() +
         2.0 * staging_cost(bytes);  // D2H at the sender, H2D at the receiver
}

double CommModel::halo_exchange(double bytes_per_face, int faces) const {
  EXA_REQUIRE(faces >= 0);
  if (faces == 0) return 0.0;
  // Pairwise exchanges serialize per face on the NIC but sends/receives of
  // one face are full duplex; staging is paid once per face per direction.
  return static_cast<double>(faces) * p2p(bytes_per_face);
}

double CommModel::log2_ceil(int n) {
  EXA_REQUIRE(n >= 1);
  return std::ceil(std::log2(static_cast<double>(n)));
}

double CommModel::allreduce(double bytes, int ranks) const {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE(ranks >= 1);
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double steps = 2.0 * log2_ceil(ranks);
  const double latency = steps * (net.latency_s + net.per_message_overhead_s);
  const double volume =
      2.0 * bytes * (static_cast<double>(ranks - 1) / ranks);
  return latency + volume / rank_bandwidth_global() + 2.0 * staging_cost(bytes);
}

double CommModel::alltoall(double bytes_per_pair, int ranks) const {
  EXA_REQUIRE(bytes_per_pair >= 0.0);
  EXA_REQUIRE(ranks >= 1);
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double peers = static_cast<double>(ranks - 1);
  const double latency =
      peers * net.per_message_overhead_s + net.latency_s;
  const double volume = peers * bytes_per_pair;
  return latency + volume / rank_bandwidth_global() +
         2.0 * staging_cost(volume);
}

double CommModel::bcast(double bytes, int ranks) const {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE(ranks >= 1);
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double steps = log2_ceil(ranks);
  // Large messages pipeline: volume term pays ~1x, latency term pays the
  // tree depth.
  return steps * (net.latency_s + net.per_message_overhead_s) +
         bytes / rank_bandwidth_global() + 2.0 * staging_cost(bytes);
}

double CommModel::barrier(int ranks) const {
  EXA_REQUIRE(ranks >= 1);
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  return 2.0 * log2_ceil(ranks) *
         (net.latency_s + net.per_message_overhead_s);
}

}  // namespace exa::net
