#include "net/comm_model.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/units.hpp"
#include "trace/tracer.hpp"

namespace exa::net {

namespace {

/// CommModel is a clockless cost function, so collective spans are laid
/// out on the tracer's running "net" cursor: the track reads as the
/// sequence of modeled collectives with their relative costs.
void trace_collective(const char* op, double bytes, int ranks, double cost) {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  tracer.complete_at_cursor(
      std::string(op) + " " +
          support::format_bytes(static_cast<std::uint64_t>(bytes)) + " x" +
          std::to_string(ranks),
      "net", cost, "net");
}

}  // namespace

CommModel::CommModel(const arch::Machine& machine, int ranks_per_node,
                     bool gpu_aware)
    : machine_(machine), ranks_per_node_(ranks_per_node), gpu_aware_(gpu_aware) {
  EXA_REQUIRE(ranks_per_node >= 1);
  EXA_REQUIRE(machine.network.node_injection_bandwidth() > 0.0);
}

double CommModel::rank_bandwidth() const {
  return machine_.network.node_injection_bandwidth() /
         static_cast<double>(ranks_per_node_);
}

double CommModel::rank_bandwidth_global() const {
  return rank_bandwidth() * machine_.network.bisection_factor;
}

double CommModel::staging_cost(double bytes) const {
  if (gpu_aware_ || !machine_.node.has_gpu()) return 0.0;
  const arch::HostLink& link = machine_.node.gpu->host_link;
  return link.latency_s + bytes / link.bandwidth_bytes_per_s;
}

double CommModel::p2p(double bytes) const {
  EXA_REQUIRE(bytes >= 0.0);
  const auto& net = machine_.network;
  const double cost = net.latency_s + net.per_message_overhead_s +
                      bytes / rank_bandwidth() +
                      2.0 * staging_cost(bytes);  // D2H sender, H2D receiver
  trace_collective("p2p", bytes, 2, cost);
  return cost;
}

double CommModel::halo_exchange(double bytes_per_face, int faces) const {
  EXA_REQUIRE(faces >= 0);
  if (faces == 0) return 0.0;
  // Pairwise exchanges serialize per face on the NIC but sends/receives of
  // one face are full duplex; staging is paid once per face per direction.
  const auto& net = machine_.network;
  const double per_face = net.latency_s + net.per_message_overhead_s +
                          bytes_per_face / rank_bandwidth() +
                          2.0 * staging_cost(bytes_per_face);
  const double cost = static_cast<double>(faces) * per_face;
  trace_collective("halo_exchange", bytes_per_face * faces, faces, cost);
  return cost;
}

double CommModel::log2_ceil(int n) {
  EXA_REQUIRE(n >= 1);
  return std::ceil(std::log2(static_cast<double>(n)));
}

double CommModel::allreduce(double bytes, int ranks) const {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE_MSG(ranks >= 1, "allreduce needs a positive communicator size");
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double steps = 2.0 * log2_ceil(ranks);
  const double latency = steps * (net.latency_s + net.per_message_overhead_s);
  const double volume =
      2.0 * bytes * (static_cast<double>(ranks - 1) / ranks);
  const double cost =
      latency + volume / rank_bandwidth_global() + 2.0 * staging_cost(bytes);
  trace_collective("allreduce", bytes, ranks, cost);
  return cost;
}

double CommModel::alltoall(double bytes_per_pair, int ranks) const {
  EXA_REQUIRE(bytes_per_pair >= 0.0);
  EXA_REQUIRE_MSG(ranks >= 1, "alltoall needs a positive communicator size");
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double peers = static_cast<double>(ranks - 1);
  const double latency =
      peers * net.per_message_overhead_s + net.latency_s;
  const double volume = peers * bytes_per_pair;
  const double cost = latency + volume / rank_bandwidth_global() +
                      2.0 * staging_cost(volume);
  trace_collective("alltoall", volume, ranks, cost);
  return cost;
}

double CommModel::bcast(double bytes, int ranks) const {
  EXA_REQUIRE(bytes >= 0.0);
  EXA_REQUIRE_MSG(ranks >= 1, "bcast needs a positive communicator size");
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double steps = log2_ceil(ranks);
  // Large messages pipeline: volume term pays ~1x, latency term pays the
  // tree depth.
  const double cost = steps * (net.latency_s + net.per_message_overhead_s) +
                      bytes / rank_bandwidth_global() +
                      2.0 * staging_cost(bytes);
  trace_collective("bcast", bytes, ranks, cost);
  return cost;
}

double CommModel::barrier(int ranks) const {
  EXA_REQUIRE_MSG(ranks >= 1, "barrier needs a positive communicator size");
  if (ranks == 1) return 0.0;
  const auto& net = machine_.network;
  const double cost =
      2.0 * log2_ceil(ranks) * (net.latency_s + net.per_message_overhead_s);
  trace_collective("barrier", 0.0, ranks, cost);
  return cost;
}

}  // namespace exa::net
