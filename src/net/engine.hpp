#pragma once
/// \file engine.hpp
/// Conservative-lookahead parallel discrete-event engine over `Fabric`.
///
/// `RankSim` is driven op-by-op from one thread; that is fine for scripted
/// schedules but leaves a 4096-rank congested scenario crawling through a
/// single core. `EventEngine` takes whole per-rank programs (compute /
/// send / recv op lists) and advances all ranks together, either with a
/// serial (time, rank)-ordered event loop — the specification — or with a
/// conservative-lookahead parallel loop that shards ranks across a
/// `support::ThreadPool` and is **bitwise identical** to the serial loop
/// at any `EXA_THREADS`.
///
/// The lookahead invariant (DESIGN.md §13): only sends mutate fabric
/// state, and `Fabric::transfer` guarantees
///
///     delivered >= posted + per_message_overhead_s + latency_s
///                = posted + delta,
///
/// so with window start `L` (the minimum next-event time over runnable
/// ranks) and horizon `L + delta`, every message posted inside the window
/// is delivered at or after the horizon. A rank resumed by such a delivery
/// can therefore never post a send before the horizon, which makes the
/// windows' send batches — each sorted by (post time, rank, program
/// order) — a contiguous, in-order partition of the serial engine's send
/// sequence. Identical send application order means identical link
/// cursors, drop-RNG draws, and FIFO channel clamps, hence identical
/// delivered times, clocks, and message records.
///
/// Receives never touch the fabric: the k-th recv posted on a
/// (src, dst, tag) channel matches the k-th send applied on it, and only
/// consumes messages applied at a previous window barrier (a recv whose
/// match is still in flight blocks its rank until the barrier assigns the
/// delivery). Matching is consequently timing-independent.
///
/// Units: seconds and bytes throughout, mirroring `RankSim`.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/rank_sim.hpp"
#include "support/thread_pool.hpp"

namespace exa::net {

/// One program step of a simulated rank.
struct RankOp {
  enum class Kind : std::uint8_t {
    kCompute,  ///< advance the clock by `value` seconds (straggler-scaled)
    kSend,     ///< nonblocking send of `value` bytes to rank `peer`
    kRecv,     ///< blocking receive from rank `peer` (matches FIFO by tag)
  };
  Kind kind = Kind::kCompute;
  int peer = -1;       ///< send: destination rank; recv: source rank
  int tag = 0;         ///< channel tag (send/recv)
  double value = 0.0;  ///< compute: seconds; send: bytes

  /// Convenience factories keeping program tables readable.
  [[nodiscard]] static RankOp compute(double seconds) {
    return {Kind::kCompute, -1, 0, seconds};
  }
  [[nodiscard]] static RankOp send(int dst, double bytes, int tag = 0) {
    return {Kind::kSend, dst, tag, bytes};
  }
  [[nodiscard]] static RankOp recv(int src, int tag = 0) {
    return {Kind::kRecv, src, tag, 0.0};
  }
};

/// Outcome of one engine run. `messages` is in fabric application order
/// (ascending post time, ties by rank then program order) — identical
/// between the serial and parallel engines.
struct EngineResult {
  std::vector<double> clocks;           ///< final per-rank clocks (seconds)
  std::vector<MessageRecord> messages;  ///< applied sends, in order
  std::uint64_t events = 0;             ///< executed ops (all kinds)
  double makespan_s = 0.0;              ///< max final clock (seconds)
  int windows = 0;  ///< super-steps (parallel engine; 0 when serial)

  /// Bitwise equality of the semantic fields (everything but `windows`,
  /// which is an engine-shape diagnostic, not a scenario outcome).
  [[nodiscard]] bool same_outcome(const EngineResult& other) const;
  /// Sum of final clocks (seconds) — a compact bitwise fingerprint.
  [[nodiscard]] double clock_sum() const;
  /// Total resend attempts across all messages (count).
  [[nodiscard]] std::int64_t total_retries() const;
};

/// Runs per-rank programs to completion over one `Fabric`.
///
/// Thread safety: one engine drives one fabric; runs must be externally
/// serialized (each run resets the fabric transport state first).
class EventEngine {
 public:
  /// One program per rank; `programs.size()` must not exceed
  /// `fabric.total_ranks()`. Send/recv peers must index a program.
  EventEngine(Fabric& fabric, std::vector<std::vector<RankOp>> programs);

  /// Number of simulated ranks (count).
  [[nodiscard]] int ranks() const { return static_cast<int>(programs_.size()); }

  /// Serial reference engine: a (time, rank) min-ordered event loop, one
  /// op per step. This is the specification the parallel engine must
  /// reproduce bitwise.
  [[nodiscard]] EngineResult run_serial();

  /// Conservative-lookahead parallel engine. Ranks are sharded across
  /// `pool` (default: the global EXA_THREADS pool) at deterministic
  /// grain-aligned boundaries; each super-step runs every rank up to the
  /// horizon and applies the window's sends in sorted order at the
  /// barrier. Bitwise identical to `run_serial()` for any pool size.
  [[nodiscard]] EngineResult run_parallel(support::ThreadPool* pool = nullptr);

  /// The safe lookahead window: latency + per-message overhead (seconds).
  [[nodiscard]] double lookahead_s() const;

 private:
  struct RankState {
    double clock = 0.0;          ///< virtual time (seconds)
    std::size_t pc = 0;          ///< next op index
    std::uint32_t seq = 0;       ///< sends posted so far (program-order key)
    std::uint64_t events = 0;    ///< ops executed by this rank
    /// Messages consumed so far per (src, tag) inbound channel — owned by
    /// this rank alone, so window execution never races on it.
    std::unordered_map<std::uint64_t, std::size_t> consumed;
  };

  /// A send recorded during a window, applied at the barrier.
  struct SendIntent {
    double post_s = 0.0;  ///< sender clock at post time (seconds)
    int src = 0;
    std::uint32_t seq = 0;  ///< sender's program-order send counter
    int dst = 0;
    int tag = 0;
    double bytes = 0.0;
  };

  /// (src, tag) key for a rank's inbound channel.
  [[nodiscard]] static std::uint64_t channel_key(int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }
  /// Global (src, dst, tag) key for applied-message lists.
  [[nodiscard]] static std::uint64_t message_key(int src, int dst, int tag);

  /// Applies one send to the fabric and records the message; returns the
  /// message index.
  int apply_send(const SendIntent& intent, EngineResult& result);
  /// Index of the next applied-but-unconsumed message on `rank`'s
  /// (src, tag) channel, or -1 when the rank must block.
  [[nodiscard]] int match_recv(const RankState& state, int rank, int src,
                               int tag) const;
  /// Consumes the matched message (bumps the rank's channel counter).
  static void consume_recv(RankState& state, int src, int tag);
  void reset_run(EngineResult& result);
  void finish_run(EngineResult& result) const;

  Fabric& fabric_;
  std::vector<std::vector<RankOp>> programs_;
  std::vector<RankState> states_;
  /// Message indices per (src, dst, tag) channel, in application order.
  std::unordered_map<std::uint64_t, std::vector<int>> applied_;
};

}  // namespace exa::net
