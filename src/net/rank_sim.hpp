#pragma once
/// \file rank_sim.hpp
/// Multi-rank progress engine on top of `Fabric`: N simulated ranks post
/// nonblocking sends/receives and collectives against the topology-aware
/// fabric, each advancing its own virtual clock.
///
/// The core capability `CommModel` could never express (and the paper's
/// §2.2/§3.3/§3.8 campaigns lived on) is *overlap*: an `isend` injects its
/// payload at the sender's current clock, the transfer progresses while
/// the rank charges DeviceSim kernel time via `compute()`/`launch()`, and
/// `wait()` only pays whatever transfer time the compute did not hide.
/// The fault layer is live on this path: messages drop and re-send with
/// exponential backoff, and delivery order per (src, dst) channel is
/// preserved (a retried message delays the channel, it is never
/// overtaken).
///
/// Schedules are issued by one driver thread (this is a simulator, not a
/// runtime): post an `isend` before `wait()`ing its matching `irecv`.
/// With the tracer enabled, the first `FabricConfig::trace_rank_lanes`
/// ranks get Chrome trace lanes ("fabric/rank<i>") carrying compute
/// spans, in-flight messages, and collective participation.
///
/// Units: all times seconds, all sizes bytes.

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "net/fabric.hpp"
#include "sim/exec_model.hpp"
#include "sim/kernel_profile.hpp"

namespace exa::net {

/// Handle for a posted nonblocking operation (index into the sim's
/// request table).
struct Request {
  int id = -1;  ///< request-table index; -1 means empty
  /// True when the handle refers to a posted operation.
  [[nodiscard]] bool valid() const { return id >= 0; }
};

/// Delivery record of one message, for tests and post-run analysis.
struct MessageRecord {
  int src = 0;  ///< sending rank
  int dst = 0;  ///< receiving rank
  int tag = 0;  ///< match tag
  double bytes = 0.0;       ///< payload size (bytes)
  double posted_s = 0.0;    ///< sender clock at isend (seconds)
  double delivered_s = 0.0; ///< payload available at receiver (seconds)
  int retries = 0;          ///< resend attempts the fault layer charged
};

/// N simulated ranks with per-rank virtual clocks over one `Fabric`.
class RankSim {
 public:
  /// Simulates `ranks` ranks (must not exceed `fabric.total_ranks()`).
  /// The fabric's transport state is reset so virtual time starts at 0.
  RankSim(Fabric& fabric, int ranks);

  /// Number of simulated ranks (count).
  [[nodiscard]] int ranks() const { return static_cast<int>(clocks_.size()); }
  /// Current virtual clock of `rank` (seconds).
  [[nodiscard]] double now(int rank) const;
  /// Slowest rank's clock — the schedule's makespan so far (seconds).
  [[nodiscard]] double makespan() const;
  /// Every message delivered so far, in completion-of-transfer order.
  [[nodiscard]] const std::vector<MessageRecord>& messages() const {
    return messages_;
  }

  // --- nonblocking point-to-point ---------------------------------------

  /// Posts a nonblocking send of `bytes` from `src` to `dst`; the payload
  /// is injected at src's current clock and progresses while src computes.
  /// Charges src the per-message software overhead.
  Request isend(int src, int dst, double bytes, int tag = 0);
  /// Posts a nonblocking receive on `dst` for a message from `src`.
  /// Free at posting time; the cost lands at `wait()`.
  Request irecv(int dst, int src, int tag = 0);
  /// Blocks `rank` until `request` completes; returns the rank's clock
  /// afterwards (seconds). For receives, the matching isend must already
  /// be posted.
  double wait(int rank, Request request);

  // --- local work (the overlap substrate) -------------------------------

  /// Advances `rank`'s clock by `seconds` of local work (straggler ranks
  /// are slowed by the fabric's fault layer).
  void compute(int rank, double seconds);
  /// Advances `rank`'s clock to at least `deadline_s` (no straggler
  /// scaling — completion times computed elsewhere, e.g. `exa::io` write
  /// completions, land on the rank's timeline as-is). Never rewinds.
  void advance_to(int rank, double deadline_s);
  /// Charges `rank` the DeviceSim execution time of one kernel launch on
  /// the machine's GPU (straggler-scaled); returns the seconds charged.
  double launch(int rank, const sim::KernelProfile& profile,
                const sim::LaunchConfig& launch_cfg);

  // --- collectives (synchronize all ranks) ------------------------------

  /// Allreduce of `bytes` across all simulated ranks; aligns every clock
  /// to the collective's completion. Returns the collective cost (seconds).
  double allreduce(double bytes);
  /// Personalized all-to-all of `bytes_per_pair` across all ranks
  /// (seconds).
  double alltoall(double bytes_per_pair);
  /// Halo exchange of `bytes_per_face` with `faces` neighbors on every
  /// rank (seconds).
  double halo_exchange(double bytes_per_face, int faces);
  /// Barrier across all ranks (seconds).
  double barrier();

 private:
  struct Pending {
    enum class Kind : std::uint8_t { kSend, kRecv } kind = Kind::kSend;
    int rank = 0;           ///< owning rank
    int peer = 0;
    int tag = 0;
    double local_done_s = 0.0;  ///< send: local completion (seconds)
    int message = -1;           ///< resolved MessageRecord index
  };

  /// Synchronizes every clock to the max, charges `cost`, traces one span
  /// per traced lane.
  double collective(const char* label, double cost);
  void check_rank(int rank) const;
  [[nodiscard]] bool traced(int rank) const;
  [[nodiscard]] std::string lane(int rank) const;

  Fabric& fabric_;
  std::vector<double> clocks_;
  std::vector<Pending> requests_;
  std::vector<MessageRecord> messages_;
  /// Unmatched sends per (src, dst, tag), FIFO.
  std::map<std::tuple<int, int, int>, std::deque<int>> unmatched_;
};

}  // namespace exa::net
