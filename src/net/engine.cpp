#include "net/engine.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "support/assert.hpp"

namespace exa::net {

bool EngineResult::same_outcome(const EngineResult& other) const {
  if (clocks != other.clocks || events != other.events ||
      makespan_s != other.makespan_s ||
      messages.size() != other.messages.size()) {
    return false;
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const MessageRecord& a = messages[i];
    const MessageRecord& b = other.messages[i];
    if (a.src != b.src || a.dst != b.dst || a.tag != b.tag ||
        a.bytes != b.bytes || a.posted_s != b.posted_s ||
        a.delivered_s != b.delivered_s || a.retries != b.retries) {
      return false;
    }
  }
  return true;
}

double EngineResult::clock_sum() const {
  double total = 0.0;
  for (const double clock : clocks) total += clock;
  return total;
}

std::int64_t EngineResult::total_retries() const {
  std::int64_t total = 0;
  for (const MessageRecord& m : messages) total += m.retries;
  return total;
}

EventEngine::EventEngine(Fabric& fabric,
                         std::vector<std::vector<RankOp>> programs)
    : fabric_(fabric), programs_(std::move(programs)) {
  EXA_REQUIRE_MSG(!programs_.empty(), "EventEngine needs at least one rank");
  EXA_REQUIRE_MSG(
      static_cast<int>(programs_.size()) <= fabric_.total_ranks(),
      "more engine ranks than the fabric's machine hosts");
  const int n = ranks();
  for (const std::vector<RankOp>& program : programs_) {
    for (const RankOp& op : program) {
      if (op.kind == RankOp::Kind::kCompute) {
        EXA_REQUIRE_MSG(op.value >= 0.0, "negative compute seconds");
      } else {
        EXA_REQUIRE_MSG(op.peer >= 0 && op.peer < n,
                        "send/recv peer outside the engine's rank range");
        EXA_REQUIRE_MSG(op.kind == RankOp::Kind::kRecv || op.value >= 0.0,
                        "negative send bytes");
      }
    }
  }
}

double EventEngine::lookahead_s() const {
  const auto& net = fabric_.machine().network;
  return net.latency_s + net.per_message_overhead_s;
}

std::uint64_t EventEngine::message_key(int src, int dst, int tag) {
  // 21 bits each of src/dst plus the low tag bits: collisions would need
  // > 2M ranks, which the EXA_REQUIRE in the constructor forbids anyway.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst) &
                                     0x1FFFFFu)
          << 21) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) &
          0x1FFFFFu);
}

void EventEngine::reset_run(EngineResult& result) {
  states_.assign(programs_.size(), RankState{});
  applied_.clear();
  fabric_.reset_transport();
  result = EngineResult{};
}

void EventEngine::finish_run(EngineResult& result) const {
  result.clocks.resize(states_.size());
  result.events = 0;
  for (std::size_t r = 0; r < states_.size(); ++r) {
    result.clocks[r] = states_[r].clock;
    result.events += states_[r].events;
  }
  result.makespan_s =
      result.clocks.empty()
          ? 0.0
          : *std::max_element(result.clocks.begin(), result.clocks.end());
}

int EventEngine::apply_send(const SendIntent& intent, EngineResult& result) {
  const Fabric::Transfer tr =
      fabric_.transfer(intent.src, intent.dst, intent.bytes, intent.post_s);
  MessageRecord record;
  record.src = intent.src;
  record.dst = intent.dst;
  record.tag = intent.tag;
  record.bytes = intent.bytes;
  record.posted_s = intent.post_s;
  record.delivered_s = tr.delivered_s;
  record.retries = tr.retries;
  const int message = static_cast<int>(result.messages.size());
  result.messages.push_back(record);
  applied_[message_key(intent.src, intent.dst, intent.tag)].push_back(message);
  return message;
}

int EventEngine::match_recv(const RankState& state, int rank, int src,
                            int tag) const {
  const auto it = applied_.find(message_key(src, rank, tag));
  if (it == applied_.end()) return -1;
  const std::size_t consumed_count = [&] {
    const auto c = state.consumed.find(channel_key(src, tag));
    return c == state.consumed.end() ? std::size_t{0} : c->second;
  }();
  if (consumed_count >= it->second.size()) return -1;
  return it->second[consumed_count];
}

void EventEngine::consume_recv(RankState& state, int src, int tag) {
  ++state.consumed[channel_key(src, tag)];
}

EngineResult EventEngine::run_serial() {
  EngineResult result;
  reset_run(result);
  const double overhead = fabric_.machine().network.per_message_overhead_s;
  const int n = ranks();

  // Min-heap over (next event time, rank). Each rank owns at most one
  // entry; blocked receivers are parked per channel and re-pushed when the
  // matching send is applied, so entries are never stale.
  using Key = std::pair<double, int>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap;
  std::unordered_map<std::uint64_t, int> parked;

  // Pushes `rank` keyed by its next op's event time, or parks it when the
  // next op is a receive whose matching send has not been applied yet.
  const auto schedule = [&](int rank) {
    RankState& st = states_[static_cast<std::size_t>(rank)];
    const std::vector<RankOp>& program =
        programs_[static_cast<std::size_t>(rank)];
    if (st.pc >= program.size()) return;
    const RankOp& op = program[st.pc];
    double key = st.clock;
    if (op.kind == RankOp::Kind::kRecv) {
      const int message = match_recv(st, rank, op.peer, op.tag);
      if (message < 0) {
        parked[message_key(op.peer, rank, op.tag)] = rank;
        return;
      }
      key = std::max(
          key, result.messages[static_cast<std::size_t>(message)].delivered_s);
    }
    heap.emplace(key, rank);
  };

  for (int r = 0; r < n; ++r) schedule(r);

  while (!heap.empty()) {
    const int rank = heap.top().second;
    heap.pop();
    RankState& st = states_[static_cast<std::size_t>(rank)];
    const RankOp& op = programs_[static_cast<std::size_t>(rank)][st.pc];
    switch (op.kind) {
      case RankOp::Kind::kCompute:
        st.clock += op.value * fabric_.straggler_scale(rank);
        break;
      case RankOp::Kind::kSend: {
        SendIntent intent;
        intent.post_s = st.clock;
        intent.src = rank;
        intent.seq = st.seq++;
        intent.dst = op.peer;
        intent.tag = op.tag;
        intent.bytes = op.value;
        apply_send(intent, result);
        st.clock += overhead;
        // The send may unblock its receiver (possibly this very rank on a
        // self-channel once its program reaches the recv).
        const auto waiter =
            parked.find(message_key(rank, op.peer, op.tag));
        if (waiter != parked.end()) {
          const int blocked_rank = waiter->second;
          parked.erase(waiter);
          if (blocked_rank != rank) schedule(blocked_rank);
        }
        break;
      }
      case RankOp::Kind::kRecv: {
        const int message = match_recv(st, rank, op.peer, op.tag);
        EXA_REQUIRE(message >= 0);  // scheduled => matched
        st.clock = std::max(
            st.clock,
            result.messages[static_cast<std::size_t>(message)].delivered_s);
        consume_recv(st, op.peer, op.tag);
        break;
      }
    }
    ++st.pc;
    ++st.events;
    schedule(rank);
  }

  for (int r = 0; r < n; ++r) {
    EXA_REQUIRE_MSG(
        states_[static_cast<std::size_t>(r)].pc >=
            programs_[static_cast<std::size_t>(r)].size(),
        "engine deadlock: a rank is blocked on a receive whose matching "
        "send is never posted");
  }
  finish_run(result);
  return result;
}

EngineResult EventEngine::run_parallel(support::ThreadPool* pool) {
  support::ThreadPool& workers =
      pool != nullptr ? *pool : support::ThreadPool::global();
  EngineResult result;
  reset_run(result);
  const double overhead = fabric_.machine().network.per_message_overhead_s;
  const double delta = lookahead_s();
  EXA_REQUIRE_MSG(delta > 0.0,
                  "conservative lookahead needs positive link latency or "
                  "per-message overhead");
  const auto n = static_cast<std::size_t>(ranks());

  // Deterministic shard boundaries: the same grain-aligned chunks as every
  // bitwise-stable reduction in the tree (a function of the rank count
  // alone, never of the pool size).
  const std::size_t grain = support::reduce_grain(n);
  const std::size_t slots = (n + grain - 1) / grain;
  std::vector<std::vector<SendIntent>> chunk_intents(slots);
  std::vector<SendIntent> window;

  while (true) {
    // --- window start: minimum next-event time over runnable ranks ------
    double window_start = 0.0;
    bool any_runnable = false;
    bool all_done = true;
    for (std::size_t r = 0; r < n; ++r) {
      RankState& st = states_[r];
      const std::vector<RankOp>& program = programs_[r];
      if (st.pc >= program.size()) continue;
      all_done = false;
      const RankOp& op = program[st.pc];
      double key = st.clock;
      if (op.kind == RankOp::Kind::kRecv) {
        const int message =
            match_recv(st, static_cast<int>(r), op.peer, op.tag);
        if (message < 0) continue;  // blocked: a barrier must free it
        key = std::max(
            key,
            result.messages[static_cast<std::size_t>(message)].delivered_s);
      }
      window_start = any_runnable ? std::min(window_start, key) : key;
      any_runnable = true;
    }
    if (all_done) break;
    EXA_REQUIRE_MSG(any_runnable,
                    "engine deadlock: a rank is blocked on a receive whose "
                    "matching send is never posted");
    const double horizon = window_start + delta;

    // --- window: every rank runs up to the horizon ----------------------
    workers.for_chunks(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          std::vector<SendIntent>& intents = chunk_intents[lo / grain];
          for (std::size_t r = lo; r < hi; ++r) {
            RankState& st = states_[r];
            const std::vector<RankOp>& program = programs_[r];
            while (st.pc < program.size() && st.clock < horizon) {
              const RankOp& op = program[st.pc];
              if (op.kind == RankOp::Kind::kCompute) {
                st.clock +=
                    op.value * fabric_.straggler_scale(static_cast<int>(r));
              } else if (op.kind == RankOp::Kind::kSend) {
                SendIntent intent;
                intent.post_s = st.clock;
                intent.src = static_cast<int>(r);
                intent.seq = st.seq++;
                intent.dst = op.peer;
                intent.tag = op.tag;
                intent.bytes = op.value;
                intents.push_back(intent);
                st.clock += overhead;
              } else {
                // Receives only consume messages applied at a previous
                // barrier (`applied_` is frozen during the window), so the
                // match is identical at any pool size.
                const int message =
                    match_recv(st, static_cast<int>(r), op.peer, op.tag);
                if (message < 0) break;  // blocked until the barrier
                st.clock = std::max(
                    st.clock, result
                                  .messages[static_cast<std::size_t>(message)]
                                  .delivered_s);
                consume_recv(st, op.peer, op.tag);
              }
              ++st.pc;
              ++st.events;
            }
          }
        },
        grain);

    // --- barrier: apply the window's sends in serial order --------------
    window.clear();
    for (std::vector<SendIntent>& intents : chunk_intents) {
      window.insert(window.end(), intents.begin(), intents.end());
      intents.clear();
    }
    std::sort(window.begin(), window.end(),
              [](const SendIntent& a, const SendIntent& b) {
                if (a.post_s != b.post_s) return a.post_s < b.post_s;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (const SendIntent& intent : window) apply_send(intent, result);
    ++result.windows;
  }

  finish_run(result);
  return result;
}

}  // namespace exa::net
