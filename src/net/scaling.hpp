#pragma once
/// \file scaling.hpp
/// Weak/strong scaling study harness: collects (nodes, time) points from a
/// user-supplied step function and derives efficiencies/speed-ups — the
/// format the paper quotes ("weak scaling efficiency ... over 80%", §3.8).

#include <functional>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace exa::net {

/// Which scaling regime a study measures.
enum class ScalingKind {
  kWeak,    ///< problem size grows with nodes; ideal time is flat
  kStrong,  ///< fixed problem; ideal time shrinks as 1/n
};

/// One measured (node count, step time) sample and its derived ratios.
struct ScalingPoint {
  int nodes = 0;         ///< node count of this sample
  double seconds = 0.0;  ///< step time at this node count, in seconds
  /// Weak: t(1)/t(n). Strong: also t(1)/t(n), interpreted as speed-up.
  double ratio = 0.0;
  /// Strong-scaling parallel efficiency: speed-up / (n / n0); for weak
  /// scaling this equals `ratio`.
  double efficiency = 0.0;
};

/// Collects a scaling series and derives per-point efficiency/speed-up.
class ScalingStudy {
 public:
  /// Names the study (table caption) and fixes its regime.
  ScalingStudy(std::string name, ScalingKind kind)
      : name_(std::move(name)), kind_(kind) {}

  /// Runs `step_time(nodes)` for each node count and records the series.
  void run(const std::vector<int>& node_counts,
           const std::function<double(int)>& step_time);

  /// The recorded series in run order.
  [[nodiscard]] const std::vector<ScalingPoint>& points() const {
    return points_;
  }
  /// The study's regime.
  [[nodiscard]] ScalingKind kind() const { return kind_; }
  /// Efficiency at the largest node count.
  [[nodiscard]] double final_efficiency() const;
  /// Renders the series as a printable table.
  [[nodiscard]] support::Table to_table() const;

 private:
  std::string name_;
  ScalingKind kind_;
  std::vector<ScalingPoint> points_;
};

}  // namespace exa::net
