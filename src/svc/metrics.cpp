#include "svc/metrics.hpp"

#include <cctype>
#include <cstdio>
#include <utility>

#include "support/assert.hpp"

namespace exa::svc {

namespace {

/// Prometheus metric names match [a-zA-Z_:][a-zA-Z0-9_:]*; anything else
/// becomes '_' and a leading digit gets a '_' prefix.
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  if (std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string render_value(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

MetricProxy::MetricProxy() : start_(std::chrono::steady_clock::now()) {}

MetricProxy::~MetricProxy() { (void)stop_sampler(); }

Counter& MetricProxy::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0) {
    throw support::Error("metric " + name + " is already a gauge");
  }
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricProxy::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0) {
    throw support::Error("metric " + name + " is already a counter");
  }
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

MetricSnapshot MetricProxy::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricSnapshot snap;
  snap.uptime_s = uptime_s();
  for (const auto& [name, counter] : counters_) {
    snap.values[name] = double(counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.values[name] = gauge->value();
  }
  return snap;
}

std::string MetricProxy::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string safe = sanitize_name(name);
    out += "# TYPE " + safe + " counter\n";
    out += safe + " " + render_value(double(counter->value())) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string safe = sanitize_name(name);
    out += "# TYPE " + safe + " gauge\n";
    out += safe + " " + render_value(gauge->value()) + "\n";
  }
  return out;
}

void MetricProxy::enable_profiles() {
  profiles_enabled_.store(true, std::memory_order_relaxed);
}

void MetricProxy::disable_profiles() {
  profiles_enabled_.store(false, std::memory_order_relaxed);
}

void MetricProxy::record_profile(const std::string& callpath, double p,
                                 double value, const std::string& metric) {
  if (!profiles_enabled()) return;
  trace::ProfileSample sample{{{"p", p}}, callpath, metric, value};
  const std::lock_guard<std::mutex> lock(mutex_);
  if (profile_stream_) profile_stream_->append(sample);
  profile_buffer_.push_back(std::move(sample));
}

void MetricProxy::stream_profiles_to(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    profile_stream_ = std::make_unique<trace::ProfileJsonlStream>(path);
  }
  enable_profiles();
}

std::vector<trace::ProfileSample> MetricProxy::profile_samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return profile_buffer_;
}

void MetricProxy::export_extrap_jsonl(const std::string& path) const {
  trace::append_jsonl(path, profile_samples());
}

std::map<std::string, trace::ScalingFit> MetricProxy::fit_live(
    const std::string& param, const std::string& metric) const {
  return trace::fit_profiles(profile_samples(), param, metric);
}

void MetricProxy::start_sampler(std::chrono::milliseconds period) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sampler_.joinable()) {
    throw support::Error("metric sampler already running");
  }
  sampler_stop_ = false;
  sampler_series_.clear();
  sampler_ = std::thread([this, period] {
    std::unique_lock<std::mutex> sampler_lock(mutex_);
    for (;;) {
      if (sampler_cv_.wait_for(sampler_lock, period,
                               [this] { return sampler_stop_; })) {
        return;
      }
      // Scrape while holding the lock (the maps are guarded by it; the
      // atomics themselves need no lock).
      MetricSnapshot snap;
      snap.uptime_s = uptime_s();
      for (const auto& [name, counter] : counters_) {
        snap.values[name] = double(counter->value());
      }
      for (const auto& [name, gauge] : gauges_) {
        snap.values[name] = gauge->value();
      }
      sampler_series_.push_back(std::move(snap));
    }
  });
}

std::vector<MetricSnapshot> MetricProxy::stop_sampler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!sampler_.joinable()) return {};
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::move(sampler_series_);
}

double MetricProxy::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace exa::svc
