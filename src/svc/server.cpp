#include "svc/server.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace exa::svc {

/// One accepted job. Owned by jobs_ for the server's lifetime (status()
/// stays answerable after completion).
struct Server::Job {
  JobId id = 0;
  Scenario scenario;
  std::string key;  ///< scenario.key(), computed once at submit
  SubmitOptions opts;
  JobState state = JobState::kQueued;
  Report report;
  std::string error;
  std::pair<int, std::uint64_t> queue_key;  ///< position while kQueued
  std::chrono::steady_clock::time_point submit_time;
};

/// A scenario key currently executing: followers are jobs that popped the
/// same key mid-flight and will complete with the leader's report.
struct Server::ExecutionSlot {
  std::vector<JobId> followers;
};

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kCancelled:
      return "cancelled";
  }
  throw support::Error("unhandled JobState");
}

Server::Server(ServerConfig config) : config_(config) {
  if (config_.queue_capacity == 0) {
    throw support::Error("svc::Server queue_capacity must be >= 1");
  }
  paused_ = config_.start_paused;
  std::size_t workers = config_.workers;
  if (workers == 0) workers = support::ThreadPool::threads_from_env();
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_ = workers;
  if (config_.metrics != nullptr) {
    m_submitted_ = &config_.metrics->counter("svc_jobs_submitted_total");
    m_completed_ = &config_.metrics->counter("svc_jobs_completed_total");
    m_cancelled_ = &config_.metrics->counter("svc_jobs_cancelled_total");
    m_dedupe_hits_ = &config_.metrics->counter("svc_dedupe_hits_total");
    m_executed_ = &config_.metrics->counter("svc_jobs_executed_total");
    m_queue_depth_ = &config_.metrics->gauge("svc_queue_depth");
  }
  // The worker pool: a dedicated ThreadPool whose one dispatch is the W
  // until-shutdown worker loops (grain 1 → one loop per chunk). The
  // control thread submits the dispatch and, per ThreadPool contract,
  // helps run chunks — so all W loops run concurrently even while the
  // pool's own threads wake up, and a 1-worker server runs its loop
  // inline on the control thread.
  pool_ = std::make_unique<support::ThreadPool>(workers_);
  control_ = std::thread([this] {
    try {
      pool_->for_each(
          0, workers_, [this](std::size_t) { worker_loop(); }, 1);
    } catch (const std::exception& e) {
      // worker_loop contains run() exceptions; anything surfacing here is
      // a server bug, but must not std::terminate the process.
      support::log_error("svc worker dispatch failed: ", e.what());
    }
  });
}

Server::~Server() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Jobs still queued never run: cancel them so submitted ==
    // completed + cancelled holds at teardown too.
    for (const auto& [key, id] : queue_) {
      (void)key;
      cancel_locked(*jobs_.at(id), /*expired=*/false);
    }
    queue_.clear();
    stats_.queue_depth = 0;
    if (m_queue_depth_ != nullptr) m_queue_depth_->set(0.0);
  }
  cv_pop_.notify_all();
  cv_space_.notify_all();
  control_.join();
  pool_.reset();
}

JobId Server::submit(Scenario scenario, SubmitOptions options) {
  if (config_.validate_on_submit) validate(scenario);
  std::string key = scenario.key();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_space_.wait(lock, [&] {
    return stop_ || queue_.size() < config_.queue_capacity;
  });
  if (stop_) throw support::Error("svc::Server is shut down");

  auto job = std::make_unique<Job>();
  const JobId id = next_id_++;
  job->id = id;
  job->scenario = std::move(scenario);
  job->key = std::move(key);
  job->opts = options;
  job->queue_key = {-options.priority, ++submit_seq_};
  job->submit_time = std::chrono::steady_clock::now();
  queue_.emplace(job->queue_key, id);
  jobs_.emplace(id, std::move(job));

  ++stats_.submitted;
  stats_.queue_depth = queue_.size();
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth,
                                     stats_.queue_depth);
  if (m_submitted_ != nullptr) m_submitted_->add();
  if (m_queue_depth_ != nullptr) m_queue_depth_->set(double(queue_.size()));
  cv_pop_.notify_one();
  return id;
}

std::optional<JobId> Server::try_submit(Scenario scenario,
                                        SubmitOptions options) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw support::Error("svc::Server is shut down");
    if (queue_.size() >= config_.queue_capacity) return std::nullopt;
  }
  // The queue can only have shrunk since the check (we are the submitter);
  // a racing producer may still fill it, in which case submit blocks
  // briefly — acceptable for the advisory try_ form.
  return submit(std::move(scenario), options);
}

bool Server::cancel(JobId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw support::Error("unknown job id");
  Job& job = *it->second;
  if (job.state != JobState::kQueued) return false;
  queue_.erase(job.queue_key);
  stats_.queue_depth = queue_.size();
  if (m_queue_depth_ != nullptr) m_queue_depth_->set(double(queue_.size()));
  cancel_locked(job, /*expired=*/false);
  cv_space_.notify_one();
  return true;
}

JobStatus Server::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw support::Error("unknown job id");
  Job* job = it->second.get();
  cv_done_.wait(lock, [&] {
    return job->state == JobState::kCompleted ||
           job->state == JobState::kCancelled;
  });
  return JobStatus{job->id, job->state, job->report, job->error};
}

JobStatus Server::status(JobId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw support::Error("unknown job id");
  const Job& job = *it->second;
  return JobStatus{job.id, job.state, job.report, job.error};
}

void Server::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void Server::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_pop_.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = stats_;
  out.queue_depth = queue_.size();
  return out;
}

std::vector<double> Server::latencies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latencies_;
}

void Server::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_pop_.wait(lock, [&] {
      return stop_ || (!paused_ && !queue_.empty());
    });
    if (stop_) return;  // the destructor already cancelled queued jobs

    const auto head = queue_.begin();
    const JobId id = head->second;
    queue_.erase(head);
    stats_.queue_depth = queue_.size();
    if (m_queue_depth_ != nullptr) m_queue_depth_->set(double(queue_.size()));
    cv_space_.notify_one();
    Job& job = *jobs_.at(id);
    const std::uint64_t ordinal = ++pop_ordinal_;

    // Deadlines: the logical pop-ordinal one (deterministic), then the
    // wall-clock one.
    bool expired = job.opts.deadline_tick >= 0 &&
                   std::int64_t(ordinal) > job.opts.deadline_tick;
    if (!expired && job.opts.deadline_s >= 0.0) {
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job.submit_time)
              .count();
      expired = waited > job.opts.deadline_s;
    }
    if (expired) {
      cancel_locked(job, /*expired=*/true);
      continue;
    }

    const bool dedupe = config_.dedupe && job.opts.dedupe;
    if (dedupe) {
      if (const auto cached = report_cache_.find(job.key);
          cached != report_cache_.end()) {
        ++stats_.dedupe_hits;
        if (m_dedupe_hits_ != nullptr) m_dedupe_hits_->add();
        const auto err = error_cache_.find(job.key);
        complete_locked(job, cached->second,
                        err == error_cache_.end() ? std::string() : err->second);
        continue;
      }
      if (const auto slot = running_.find(job.key); slot != running_.end()) {
        ++stats_.dedupe_hits;
        if (m_dedupe_hits_ != nullptr) m_dedupe_hits_->add();
        job.state = JobState::kRunning;
        slot->second->followers.push_back(id);
        continue;  // the leader completes this job
      }
    }

    // Leader: execute outside the lock.
    auto slot = std::make_shared<ExecutionSlot>();
    if (dedupe) running_.emplace(job.key, slot);
    job.state = JobState::kRunning;
    ++inflight_;
    const Scenario scenario = job.scenario;
    const std::string key = job.key;
    lock.unlock();

    Report report;
    std::string error;
    try {
      report = run(scenario);
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (config_.metrics != nullptr && error.empty()) {
      config_.metrics->record_profile("svc/" + to_string(scenario.app),
                                      double(scenario.nodes), report.time_s);
    }

    lock.lock();
    ++stats_.executed;
    if (m_executed_ != nullptr) m_executed_->add();
    complete_locked(*jobs_.at(id), report, error);
    if (dedupe) {
      for (const JobId follower_id : slot->followers) {
        complete_locked(*jobs_.at(follower_id), report, error);
      }
      running_.erase(key);
      report_cache_.emplace(key, report);
      if (!error.empty()) error_cache_.emplace(key, error);
    }
    --inflight_;
    cv_done_.notify_all();
  }
}

void Server::complete_locked(Job& job, const Report& report,
                             const std::string& error) {
  job.state = JobState::kCompleted;
  job.report = report;
  job.error = error;
  ++stats_.completed;
  if (m_completed_ != nullptr) m_completed_->add();
  latencies_.push_back(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job.submit_time)
          .count());
  cv_done_.notify_all();
}

void Server::cancel_locked(Job& job, bool expired) {
  job.state = JobState::kCancelled;
  ++stats_.cancelled;
  if (expired) ++stats_.expired;
  if (m_cancelled_ != nullptr) m_cancelled_->add();
  latencies_.push_back(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job.submit_time)
          .count());
  cv_done_.notify_all();
}

}  // namespace exa::svc
