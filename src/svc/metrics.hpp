#pragma once
/// \file metrics.hpp
/// In-process metric proxy for the simulation service.
///
/// The SC'23 always-on-monitoring stack (SNIPPETS.md) pairs a long-lived
/// service with a metrics sidecar: counters scrape cheaply into
/// Prometheus, per-job timings append into an Extra-P JSONL profile, and
/// scaling models are refit live as samples accumulate. `MetricProxy` is
/// the in-process version of that sidecar:
///
///  * **Counters/gauges** are relaxed atomics behind stable references —
///    hot-path updates are one `fetch_add`/`store` with no lock, safe from
///    any worker thread. Registration (cold path) takes a mutex.
///  * **Profile recording** follows the zero-overhead-off discipline of
///    `trace::Profiler`: while disabled, `record_profile` is one relaxed
///    load and a branch. Enabled, samples buffer in memory and optionally
///    stream to an open JSONL file (one flushed line per sample, so a
///    killed server loses at most the in-flight one).
///  * **Exporters**: `prometheus_text()` renders the Prometheus text
///    exposition format; `export_extrap_jsonl()` appends the buffered
///    samples to a profile file that `exaready-scaling-fit` (and the PR 1
///    fitter) consume; `fit_live()` runs the in-repo Extra-P fitter over
///    the buffered samples directly.
///  * **Sampler**: `start_sampler(period)` runs a background thread that
///    snapshots every counter/gauge on a cadence, for load tests that
///    want a time series rather than a final scrape.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/profile.hpp"
#include "trace/scaling_model.hpp"

namespace exa::svc {

/// Monotonic counter. Obtained from MetricProxy::counter(); the reference
/// stays valid for the proxy's lifetime, so hot paths hold the reference
/// and never re-look it up.
class Counter {
 public:
  /// Adds `delta` (relaxed; safe from any thread).
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Current total (relaxed load).
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricProxy;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (doubles; stored as atomic<double> with relaxed
/// ordering — readers want *a* recent value, not a synchronized one).
class Gauge {
 public:
  /// Overwrites the value (relaxed; safe from any thread).
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Most recent value (relaxed load).
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricProxy;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// One timestamped scrape of every registered metric.
struct MetricSnapshot {
  double uptime_s = 0.0;  ///< seconds since the proxy was constructed
  std::map<std::string, double> values;
};

/// The in-process metrics sidecar described in the file comment:
/// lock-free counters/gauges, Prometheus + Extra-P exporters, live fits.
class MetricProxy {
 public:
  MetricProxy();
  /// Stops the sampler (if running) and closes any profile stream.
  ~MetricProxy();

  MetricProxy(const MetricProxy&) = delete;
  MetricProxy& operator=(const MetricProxy&) = delete;

  /// Registers (or finds) the counter/gauge named `name`. Names are free
  /// form here; the Prometheus exporter sanitizes them ([a-zA-Z0-9_:],
  /// leading digit prefixed) at render time. Registering the same name as
  /// both a counter and a gauge throws support::Error.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);

  /// Scrapes every metric into a snapshot (counters as doubles).
  [[nodiscard]] MetricSnapshot snapshot() const;

  /// Prometheus text exposition format: one `# TYPE` line and one sample
  /// per metric, names sanitized, values rendered locale-free.
  [[nodiscard]] std::string prometheus_text() const;

  // --- Extra-P profile side ------------------------------------------------

  /// Profile recording is off by default (zero overhead beyond one relaxed
  /// load per call).
  void enable_profiles();
  /// Turns profile recording back off (buffered samples are kept).
  void disable_profiles();
  /// Whether record_profile currently buffers (relaxed load).
  [[nodiscard]] bool profiles_enabled() const {
    return profiles_enabled_.load(std::memory_order_relaxed);
  }

  /// Buffers one sample `{params:{p},callpath,metric,value}` (and streams
  /// it when a stream is attached). No-op while disabled.
  void record_profile(const std::string& callpath, double p, double value,
                      const std::string& metric = "time");

  /// Attaches a live JSONL stream: every subsequent recorded sample is
  /// also appended (and flushed) to `path`. Implies enable_profiles().
  void stream_profiles_to(const std::string& path);

  /// Copy of every buffered sample, in recording order.
  [[nodiscard]] std::vector<trace::ProfileSample> profile_samples() const;

  /// Appends every buffered sample to `path` (Extra-P JSONL, the format
  /// tools/scaling_fit consumes).
  void export_extrap_jsonl(const std::string& path) const;

  /// Fits scaling models over the buffered samples — the "fit models live
  /// from the running service" loop.
  [[nodiscard]] std::map<std::string, trace::ScalingFit> fit_live(
      const std::string& param = "p", const std::string& metric = "time") const;

  // --- periodic sampler ----------------------------------------------------

  /// Starts a background thread snapshotting every `period`. Throws if a
  /// sampler is already running.
  void start_sampler(std::chrono::milliseconds period);
  /// Stops the sampler (if running) and returns the collected series.
  std::vector<MetricSnapshot> stop_sampler();

 private:
  [[nodiscard]] double uptime_s() const;

  mutable std::mutex mutex_;  // registration, profile buffer, sampler series
  // node-based maps so Counter&/Gauge& stay valid across registrations
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;

  std::atomic<bool> profiles_enabled_{false};
  std::vector<trace::ProfileSample> profile_buffer_;
  std::unique_ptr<trace::ProfileJsonlStream> profile_stream_;

  std::chrono::steady_clock::time_point start_;
  std::thread sampler_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::vector<MetricSnapshot> sampler_series_;
};

}  // namespace exa::svc
