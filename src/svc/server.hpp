#pragma once
/// \file server.hpp
/// Always-on simulation service: a long-lived `Server` accepts `Scenario`
/// submissions into a bounded priority queue and executes them on a
/// fixed worker pool built on `support::ThreadPool`, with cancellation,
/// deadlines, and content-keyed dedupe.
///
/// ## Scheduling
/// The queue orders by (priority descending, submission order ascending):
/// strict priority, FIFO within a priority. `submit` blocks while the
/// queue is full (backpressure); `try_submit` returns nullopt instead.
///
/// ## Dedupe — decided at pop time, deterministically
/// Scenarios are content-addressed by `Scenario::key()`. When a worker
/// pops a job whose key is already **running**, the job attaches to the
/// running execution and completes with the leader's report; when the key
/// has already **completed**, the job completes immediately from the
/// report cache. Both count as dedupe hits. Because the decision happens
/// under the queue lock at pop time, the invariant
///
///     dedupe_hits == popped_for_execution − distinct_keys_executed
///
/// holds for any worker count and any thread timing: the hit count
/// depends only on the multiset of keys that reach execution, not on the
/// race between workers. (Which job *leads* an execution can vary; every
/// job's observable result — its Report — cannot, because `svc::run` is a
/// pure function of the scenario.)
///
/// ## Deadlines — logical, not wall-clock
/// A job may carry `deadline_tick`: an absolute **pop ordinal** (the
/// server numbers every dequeue 1, 2, 3, ...) after which the job expires.
/// A job popped with ordinal > deadline_tick is cancelled instead of
/// executed. Tick 0 therefore always expires, −1 (default) never does.
/// Logical deadlines make expiry replayable in tests; a wall-clock
/// `deadline_s` (seconds after submit) is also supported for real
/// deployments but is deliberately not used by the deterministic suites.
///
/// ## Conservation (golden-gated)
/// After `drain()` — or after shutdown, which cancels still-queued jobs —
///
///     submitted == completed + cancelled
///
/// exactly: every accepted job reaches exactly one terminal state.
///
/// ## Determinism for the property suite
/// A paused server (`start_paused`, or `pause()`) admits submissions and
/// cancellations without executing anything; `resume()` + `drain()` then
/// executes the queue in its fully-determined priority/FIFO order. In
/// that regime completion sets, cancellation sets, and dedupe counts are
/// identical for 1 or N workers — `tests/svc` checks this against a
/// single-threaded reference scheduler under random interleavings.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/thread_pool.hpp"
#include "svc/metrics.hpp"
#include "svc/scenario.hpp"

namespace exa::svc {

/// Server-assigned job handle (dense, starting at 1).
using JobId = std::uint64_t;

/// Lifecycle of one submitted job; kCompleted/kCancelled are terminal.
enum class JobState {
  kQueued,     ///< accepted, waiting in the queue
  kRunning,    ///< popped by a worker (or attached to a running leader)
  kCompleted,  ///< report available
  kCancelled,  ///< cancelled, expired, or shut down while queued
};

/// Human-readable state name ("queued" | "running" | ...).
[[nodiscard]] std::string to_string(JobState state);

/// Per-submission options.
struct SubmitOptions {
  int priority = 0;  ///< higher runs first; FIFO within equal priority
  /// Absolute pop ordinal after which the job expires (−1 = never; 0 =
  /// always, since ordinals start at 1). See the header comment.
  std::int64_t deadline_tick = -1;
  /// Wall-clock deadline, seconds after submission (< 0 = none). Checked
  /// at pop time, like the logical deadline.
  double deadline_s = -1.0;
  /// Opt this job out of dedupe (it will always execute).
  bool dedupe = true;
};

/// Terminal (or current) view of one job.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  Report report;      ///< valid when state == kCompleted
  std::string error;  ///< nonempty when the scenario run threw
};

/// Server construction knobs.
struct ServerConfig {
  /// Worker count; 0 resolves like the global pool: EXA_THREADS when set,
  /// else hardware concurrency.
  std::size_t workers = 0;
  /// Queue slots; submit blocks (try_submit fails) while full.
  std::size_t queue_capacity = 65536;
  /// Master dedupe switch (per-job SubmitOptions::dedupe can only opt out).
  bool dedupe = true;
  /// Start with workers idle; resume() begins execution.
  bool start_paused = false;
  /// Validate scenarios at submit time (reject bad jobs before they
  /// queue). Costs one catalog lookup per submit.
  bool validate_on_submit = true;
  /// Optional metric proxy; when set the server registers and maintains
  /// svc_* counters/gauges and records one per-job profile sample
  /// ("svc/<app>" at p = nodes) for live scaling fits.
  MetricProxy* metrics = nullptr;
};

/// Aggregate accounting. All counts are since construction.
struct ServerStats {
  std::uint64_t submitted = 0;   ///< jobs accepted into the queue
  std::uint64_t completed = 0;   ///< jobs with a report (incl. dedupe hits)
  std::uint64_t cancelled = 0;   ///< explicit + expired + shutdown-drained
  std::uint64_t dedupe_hits = 0; ///< popped jobs served by another execution
  std::uint64_t executed = 0;    ///< distinct svc::run invocations
  std::uint64_t expired = 0;     ///< cancellations due to deadlines
  std::uint64_t queue_depth = 0; ///< current queued jobs
  std::uint64_t peak_queue_depth = 0;
};

/// The always-on scheduler described in the file comment: bounded
/// priority queue, fixed worker pool, logical deadlines, pop-time dedupe.
class Server {
 public:
  /// Starts the worker pool immediately unless config.start_paused.
  explicit Server(ServerConfig config = {});
  /// Cancels still-queued jobs, waits for running jobs, joins the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolved worker-pool width (after EXA_THREADS resolution).
  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Accepts a job; blocks while the queue is full; throws support::Error
  /// after shutdown or (with validate_on_submit) for invalid scenarios.
  JobId submit(Scenario scenario, SubmitOptions options = {});
  /// Non-blocking variant: nullopt when the queue is full.
  std::optional<JobId> try_submit(Scenario scenario, SubmitOptions options = {});

  /// Cancels a queued job. Returns true when this call moved it to
  /// kCancelled; false when it already ran, finished, or was cancelled.
  bool cancel(JobId id);

  /// Blocks until the job is terminal and returns its status; throws for
  /// unknown ids.
  [[nodiscard]] JobStatus wait(JobId id);
  /// Current status without blocking; throws for unknown ids.
  [[nodiscard]] JobStatus status(JobId id) const;

  /// Stops workers from popping (running jobs finish). Idempotent.
  void pause();
  /// Resumes popping. Idempotent.
  void resume();
  /// Blocks until the queue is empty and no job is running. Call resume()
  /// first on a paused server (a paused queue never drains).
  void drain();

  /// Aggregate counters since construction (see ServerStats).
  [[nodiscard]] ServerStats stats() const;

  /// Wall-clock submit→terminal latencies (seconds) of every terminal job
  /// so far, in completion order. For load-test percentile reporting.
  [[nodiscard]] std::vector<double> latencies() const;

 private:
  struct Job;
  struct ExecutionSlot;

  void worker_loop();
  /// Terminal transition helpers; caller holds mutex_.
  void complete_locked(Job& job, const Report& report, const std::string& error);
  void cancel_locked(Job& job, bool expired);

  std::size_t workers_ = 0;
  ServerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_pop_;     ///< workers: work available / unpause
  std::condition_variable cv_space_;   ///< producers: queue has room
  std::condition_variable cv_done_;    ///< waiters: a job became terminal

  bool paused_ = false;
  bool stop_ = false;

  std::uint64_t next_id_ = 1;
  std::uint64_t submit_seq_ = 0;  ///< FIFO tiebreak within a priority
  std::uint64_t pop_ordinal_ = 0; ///< logical clock for deadline_tick
  std::uint64_t inflight_ = 0;    ///< leader executions outside the lock

  /// Ready queue ordered by (−priority, submit_seq): begin() is the next
  /// job to pop. Values are job ids.
  std::map<std::pair<int, std::uint64_t>, JobId> queue_;
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
  /// Dedupe: executions in flight by scenario key.
  std::unordered_map<std::string, std::shared_ptr<ExecutionSlot>> running_;
  /// Dedupe: completed reports by scenario key.
  std::unordered_map<std::string, Report> report_cache_;
  std::unordered_map<std::string, std::string> error_cache_;

  ServerStats stats_;
  std::vector<double> latencies_;

  std::unique_ptr<support::ThreadPool> pool_;
  std::thread control_;  ///< dispatches worker_loop onto the pool

  // Optional metric handles (valid while config_.metrics lives).
  Counter* m_submitted_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_cancelled_ = nullptr;
  Counter* m_dedupe_hits_ = nullptr;
  Counter* m_executed_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
};

}  // namespace exa::svc
