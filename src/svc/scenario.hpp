#pragma once
/// \file scenario.hpp
/// The service layer's job description: one `Scenario` names a complete
/// simulated run — machine × app × size × fabric/fault/io configuration —
/// and `run()` executes it through the existing app drivers (Pele, GESTS,
/// LAMMPS, CoMet, ExaSky) into a `Report` of named metrics.
///
/// This is the library form of what every bench main used to hand-roll:
/// pick a machine from the arch catalog, build an app config, call the
/// app's timing model, read off the headline numbers. Factoring it out is
/// what lets a long-lived server (server.hpp) schedule thousands of such
/// runs, and what gives the campaign/dedupe machinery a canonical content
/// key: two scenarios with equal `key()` are guaranteed to produce
/// bitwise-identical reports, because `run()` is a pure function of the
/// scenario (every app driver is an analytic or seeded-deterministic
/// model — no wall clock, no global mutable state).

#include <map>
#include <string>

#include "net/fabric.hpp"

namespace exa::svc {

/// The workloads the service can run. Each maps onto one existing app
/// driver; the scenario's `params` carry the app-specific size knobs
/// (defaults below keep every app runnable with an empty map).
enum class App {
  kPele,      ///< apps::pele::time_per_cell_step (code-state ablations)
  kGests,     ///< apps::gests::step_time (PSDNS slabs/pencils)
  kLammps,    ///< apps::lammps QEq equilibration (split vs fused CG)
  kComet,     ///< apps::comet::scale_run (mixed-precision CCC)
  kExaSky,    ///< apps::exasky::step_model (P^3M gravity / hydro)
  kSparseCg,  ///< apps::sparse CG on a 27-point stencil (CSR SpMV)
};

/// The lower-case wire name of `app` ("pele", "gests", ..., "sparse_cg").
[[nodiscard]] std::string to_string(App app);
/// Parses the lower-case app name ("pele" | "gests" | "lammps" | "comet"
/// | "exasky" | "sparse_cg"); throws support::Error on anything else.
[[nodiscard]] App app_from_string(const std::string& name);

/// One complete job description. Everything that can influence the
/// report is in here — which is what makes `key()` a sound dedupe key.
///
/// Recognized `params` (all optional; unknown keys are rejected by
/// `validate` so a typo cannot silently run the default):
///   pele:   code_state (2..4, default 4 = tuned-2023)
///   gests:  n (default 8192), pencils (0|1, default 1)
///   lammps: fused (0|1, default 1), cells (default 2), seed (default 42),
///           atoms_per_rank (default 2e5), nnz_per_rank (default 5.2e6)
///   comet:  vectors_per_device (default 8192), samples (default 1e5)
///   exasky: particles_per_rank (default 4e7), hydro (0|1, default 0)
///   sparse_cg: grid (stencil cube side, default 16), rows_per_rank
///           (default 1e6), tol (relative residual, default 1e-8)
///   any:    checkpoint_bytes_per_rank (default 256 MiB; the per-rank
///           payload priced when io_preset is not "quiet")
struct Scenario {
  App app = App::kExaSky;
  std::string machine = "frontier";  ///< arch::machines::by_name key
  int nodes = 1;                     ///< nodes of `machine` to simulate
  std::map<std::string, double> params;  ///< app-specific size knobs

  /// Storage preset ("quiet" | "lustre" | "bb"). Pele and GESTS plumb it
  /// into their native plotfile/field-dump accounting; the other apps
  /// price one collective checkpoint of checkpoint_bytes_per_rank. The
  /// quiet default adds exactly zero time.
  std::string io_preset = "quiet";

  /// Fabric knobs. Defaults reduce every app's network model to the
  /// analytic CommModel exactly (the golden-stable baseline).
  /// `topology` is the link-graph wiring ("fattree" | "dragonfly").
  std::string topology = "fattree";
  bool congestion = false;
  double straggler_fraction = 0.0;
  double straggler_slowdown = 1.0;

  /// Canonical content key: equal keys imply bitwise-equal reports. The
  /// encoding is sorted and locale-free (%.17g doubles), so it is stable
  /// across hosts and suitable as a cache/dedupe key.
  [[nodiscard]] std::string key() const;

  /// The net::FabricConfig the knobs above describe.
  [[nodiscard]] net::FabricConfig fabric_config() const;
};

/// Throws support::Error when the scenario cannot run: unknown machine,
/// nonpositive nodes, unknown io preset, an unrecognized params key, or
/// an app-specific limit violation (e.g. GESTS slabs beyond its rank
/// cap). `run()` validates implicitly; the server validates at submit
/// time so a bad job is rejected before it ever queues.
void validate(const Scenario& scenario);

/// What a run produced: named metrics plus the two headline numbers every
/// app reports (simulated time and a figure of merit).
struct Report {
  Scenario scenario;
  std::map<std::string, double> metrics;
  double time_s = 0.0;  ///< headline simulated duration (step/solve time)
  double fom = 0.0;     ///< app-native figure of merit (bigger is better)

  /// Looks a metric up; throws support::Error naming the metric when
  /// absent (misspelled metric reads should fail loudly, not return 0).
  [[nodiscard]] double metric(const std::string& name) const;
};

/// Executes the scenario through its app driver. Pure: equal scenarios
/// produce bitwise-equal reports, on any host, at any EXA_THREADS.
[[nodiscard]] Report run(const Scenario& scenario);

}  // namespace exa::svc
