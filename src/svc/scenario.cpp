#include "svc/scenario.hpp"

#include <cstdio>
#include <set>
#include <utility>

#include "apps/comet/ccc.hpp"
#include "apps/exasky/hacc.hpp"
#include "apps/gests/psdns.hpp"
#include "apps/lammps/qeq.hpp"
#include "apps/lammps/system.hpp"
#include "apps/pele/driver.hpp"
#include "apps/sparse/cg.hpp"
#include "arch/machine.hpp"
#include "io/checkpoint.hpp"
#include "io/io_model.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace exa::svc {

namespace {

/// Locale-free shortest-roundtrip double encoding for key(). %.17g is
/// enough digits that distinct doubles never collide.
std::string encode(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double param_or(const Scenario& s, const std::string& name,
                double fallback) {
  const auto it = s.params.find(name);
  return it == s.params.end() ? fallback : it->second;
}

/// The params keys each app understands (plus the shared checkpoint knob).
const std::set<std::string>& known_params(App app) {
  static const std::set<std::string> pele = {"code_state",
                                             "checkpoint_bytes_per_rank"};
  static const std::set<std::string> gests = {"n", "pencils",
                                              "checkpoint_bytes_per_rank"};
  static const std::set<std::string> lammps = {
      "fused",          "cells",        "seed",
      "atoms_per_rank", "nnz_per_rank", "checkpoint_bytes_per_rank"};
  static const std::set<std::string> comet = {"vectors_per_device", "samples",
                                              "checkpoint_bytes_per_rank"};
  static const std::set<std::string> exasky = {"particles_per_rank", "hydro",
                                               "checkpoint_bytes_per_rank"};
  static const std::set<std::string> sparse_cg = {
      "grid", "rows_per_rank", "tol", "checkpoint_bytes_per_rank"};
  switch (app) {
    case App::kPele:
      return pele;
    case App::kGests:
      return gests;
    case App::kLammps:
      return lammps;
    case App::kComet:
      return comet;
    case App::kExaSky:
      return exasky;
    case App::kSparseCg:
      return sparse_cg;
  }
  throw support::Error("unhandled App");
}

/// Ranks the scenario simulates: one per device (GCDs count as 1), or one
/// per node on CPU-only machines.
int ranks_of(const arch::Machine& machine, int nodes) {
  const int per_node = std::max(1, machine.node.gpus_per_node);
  return nodes * per_node;
}

/// Prices the one collective checkpoint apps without native I/O plumbing
/// charge when the preset is not quiet. Exactly 0.0 for quiet, so
/// refactored benches stay bit-identical to their pre-svc goldens.
double checkpoint_surcharge(const Scenario& s, const arch::Machine& machine) {
  const io::IoConfig io = io::IoConfig::preset(s.io_preset);
  if (io.quiet()) return 0.0;
  const double bytes =
      param_or(s, "checkpoint_bytes_per_rank", 256.0 * 1024 * 1024);
  return io::checkpoint_time(io, ranks_of(machine, s.nodes), bytes);
}

Report run_pele(const Scenario& s, const arch::Machine& machine) {
  const auto state =
      static_cast<apps::pele::CodeState>(int(param_or(s, "code_state", 4.0)));
  apps::pele::PeleConfig config;
  config.fabric = s.fabric_config();
  config.io = io::IoConfig::preset(s.io_preset);
  const apps::pele::CellTime cell =
      apps::pele::time_per_cell_step(machine, state, s.nodes, config);
  Report report;
  report.metrics = {{"chem_s", cell.chem_s},     {"hydro_s", cell.hydro_s},
                    {"launch_s", cell.launch_s}, {"uvm_s", cell.uvm_s},
                    {"ghost_s", cell.ghost_s},   {"plot_s", cell.plot_s}};
  report.time_s = cell.total();
  // FOM: cell-steps per second per cell — the inverse of the Figure 2
  // y-axis, so "bigger is better" holds like the other apps.
  report.fom = report.time_s > 0.0 ? 1.0 / report.time_s : 0.0;
  return report;
}

Report run_gests(const Scenario& s, const arch::Machine& machine) {
  apps::gests::PsdnsConfig config;
  config.n = static_cast<std::size_t>(param_or(s, "n", 8192.0));
  config.decomp = param_or(s, "pencils", 1.0) != 0.0
                      ? apps::gests::Decomposition::kPencils
                      : apps::gests::Decomposition::kSlabs;
  config.fabric = s.fabric_config();
  config.io = io::IoConfig::preset(s.io_preset);
  const apps::gests::StepTime step =
      apps::gests::step_time(machine, s.nodes, config);
  Report report;
  report.metrics = {{"fft_s", step.fft_s},
                    {"transpose_s", step.transpose_s},
                    {"pointwise_s", step.pointwise_s},
                    {"io_s", step.io_s}};
  report.time_s = step.total();
  report.fom = step.fom;
  return report;
}

Report run_lammps(const Scenario& s, const arch::Machine& machine) {
  const int cells = int(param_or(s, "cells", 2.0));
  const bool fused = param_or(s, "fused", 1.0) != 0.0;
  support::Rng rng(std::uint64_t(param_or(s, "seed", 42.0)));
  const apps::lammps::System sys =
      apps::lammps::make_molecular_crystal(cells, 5, rng);
  const apps::lammps::NeighborList neigh =
      apps::lammps::build_neighbor_list(sys, 3.0);
  const apps::lammps::QeqMatrix h =
      apps::lammps::build_qeq_matrix(sys, neigh, 3.0);
  const apps::lammps::QeqResult qeq = apps::lammps::equilibrate(sys, h, fused);
  const auto atoms =
      static_cast<std::size_t>(param_or(s, "atoms_per_rank", 2.0e5));
  const auto nnz =
      static_cast<std::size_t>(param_or(s, "nnz_per_rank", 5.2e6));
  const int ranks = ranks_of(machine, s.nodes);
  const double time = apps::lammps::simulate_qeq_time(
      machine, atoms, nnz, qeq.stats, fused ? 2 : 1, ranks,
      s.fabric_config());
  Report report;
  report.metrics = {{"cg_iterations", double(qeq.stats.iterations)},
                    {"matrix_reads", double(qeq.stats.matrix_reads)},
                    {"allreduces", double(qeq.stats.allreduces)},
                    {"converged", qeq.stats.converged ? 1.0 : 0.0}};
  report.time_s = time;
  // FOM: atom-equilibrations per second across the allocation.
  report.fom = time > 0.0 ? double(atoms) * ranks / time : 0.0;
  return report;
}

Report run_comet(const Scenario& s, const arch::Machine& machine) {
  const auto vectors =
      static_cast<std::size_t>(param_or(s, "vectors_per_device", 8192.0));
  const auto samples =
      static_cast<std::size_t>(param_or(s, "samples", 1.0e5));
  const apps::comet::CometScaleResult result = apps::comet::scale_run(
      machine, s.nodes, vectors, samples, s.fabric_config());
  Report report;
  report.metrics = {
      {"seconds_per_step", result.seconds_per_step},
      {"sustained_flops", result.sustained_flops},
      {"weak_scaling_efficiency", result.weak_scaling_efficiency}};
  report.time_s = result.seconds_per_step;
  report.fom = result.sustained_flops;
  return report;
}

Report run_exasky(const Scenario& s, const arch::Machine& machine) {
  const double particles = param_or(s, "particles_per_rank", 4.0e7);
  const auto kind = param_or(s, "hydro", 0.0) != 0.0
                        ? apps::exasky::SimKind::kHydro
                        : apps::exasky::SimKind::kGravityOnly;
  const apps::exasky::StepModel step = apps::exasky::step_model(
      machine, s.nodes, particles, kind, s.fabric_config());
  Report report;
  for (const apps::exasky::GravityKernelTime& kernel : step.kernels) {
    report.metrics[kernel.name + "_s"] = kernel.seconds;
  }
  report.metrics["comm_s"] = step.comm_s;
  report.time_s = step.total_s;
  report.fom = step.fom;
  return report;
}

Report run_sparse_cg(const Scenario& s, const arch::Machine& machine) {
  const auto grid = static_cast<std::size_t>(param_or(s, "grid", 16.0));
  const double tol = param_or(s, "tol", 1e-8);
  const apps::sparse::StencilMatrix a =
      apps::sparse::build_stencil_matrix(grid, grid, grid);
  // A varying dyadic-valued RHS: the all-ones vector is an exact
  // eigenvector of the stencil (every row sums to 1), which would let CG
  // converge in a single trivial iteration.
  std::vector<double> b(a.n);
  for (std::size_t i = 0; i < a.n; ++i) {
    b[i] = 1.0 + 0.125 * static_cast<double>(i % 7);
  }
  const apps::sparse::CgResult cg =
      apps::sparse::cg_solve(a, b, tol, /*max_iter=*/2000);
  const auto rows =
      static_cast<std::size_t>(param_or(s, "rows_per_rank", 1.0e6));
  const apps::sparse::SolveModel model = apps::sparse::solve_model(
      machine, s.nodes, rows, cg.stats, s.fabric_config());
  Report report;
  report.metrics = {{"cg_iterations", double(cg.stats.iterations)},
                    {"matrix_reads", double(cg.stats.matrix_reads)},
                    {"allreduces", double(cg.stats.allreduces)},
                    {"converged", cg.stats.converged ? 1.0 : 0.0},
                    {"spmv_s", model.spmv_s},
                    {"reduce_s", model.reduce_s},
                    {"halo_s", model.halo_s}};
  report.time_s = model.total_s;
  report.fom = model.fom;
  return report;
}

}  // namespace

std::string to_string(App app) {
  switch (app) {
    case App::kPele:
      return "pele";
    case App::kGests:
      return "gests";
    case App::kLammps:
      return "lammps";
    case App::kComet:
      return "comet";
    case App::kExaSky:
      return "exasky";
    case App::kSparseCg:
      return "sparse_cg";
  }
  throw support::Error("unhandled App");
}

App app_from_string(const std::string& name) {
  if (name == "pele") return App::kPele;
  if (name == "gests") return App::kGests;
  if (name == "lammps") return App::kLammps;
  if (name == "comet") return App::kComet;
  if (name == "exasky") return App::kExaSky;
  if (name == "sparse_cg") return App::kSparseCg;
  throw support::Error("unknown app: " + name);
}

std::string Scenario::key() const {
  // Canonical form: fixed field order, sorted params (std::map iterates in
  // key order), locale-free numbers. Two scenarios compare equal exactly
  // when their keys do.
  std::string out = "app=" + svc::to_string(app);
  out += ";machine=" + machine;
  out += ";nodes=" + std::to_string(nodes);
  out += ";io=" + io_preset;
  out += ";topology=" + topology;
  out += ";congestion=" + std::string(congestion ? "1" : "0");
  out += ";straggler_fraction=" + encode(straggler_fraction);
  out += ";straggler_slowdown=" + encode(straggler_slowdown);
  for (const auto& [name, value] : params) {
    out += ";" + name + "=" + encode(value);
  }
  return out;
}

net::FabricConfig Scenario::fabric_config() const {
  net::FabricConfig config;
  config.topology = topology == "dragonfly" ? net::Topology::kDragonfly
                                            : net::Topology::kFatTree;
  config.congestion = congestion;
  config.faults.straggler_fraction = straggler_fraction;
  config.faults.straggler_slowdown = straggler_slowdown;
  return config;
}

void validate(const Scenario& scenario) {
  if (scenario.nodes < 1) {
    throw support::Error("scenario nodes must be >= 1, got " +
                         std::to_string(scenario.nodes));
  }
  const arch::Machine machine = arch::machines::by_name(scenario.machine);
  (void)io::IoConfig::preset(scenario.io_preset);
  if (scenario.topology != "fattree" && scenario.topology != "dragonfly") {
    throw support::Error("scenario topology must be \"fattree\" or "
                         "\"dragonfly\", got \"" + scenario.topology + "\"");
  }
  if (scenario.straggler_fraction < 0.0 || scenario.straggler_fraction > 1.0) {
    throw support::Error("straggler_fraction must be in [0, 1]");
  }
  if (scenario.straggler_slowdown < 1.0) {
    throw support::Error("straggler_slowdown must be >= 1");
  }
  const std::set<std::string>& known = known_params(scenario.app);
  for (const auto& [name, value] : scenario.params) {
    (void)value;
    if (known.count(name) == 0) {
      throw support::Error("unknown " + svc::to_string(scenario.app) +
                           " param: " + name);
    }
  }
  switch (scenario.app) {
    case App::kPele: {
      const double state = param_or(scenario, "code_state", 4.0);
      if (state < 0.0 || state > 4.0 || state != double(int(state))) {
        throw support::Error("pele code_state must be an integer in [0, 4]");
      }
      break;
    }
    case App::kGests: {
      const auto n =
          static_cast<std::size_t>(param_or(scenario, "n", 8192.0));
      const auto decomp = param_or(scenario, "pencils", 1.0) != 0.0
                              ? apps::gests::Decomposition::kPencils
                              : apps::gests::Decomposition::kSlabs;
      const int cap = apps::gests::max_nodes(machine, n, decomp);
      if (scenario.nodes > cap) {
        throw support::Error("gests n=" + std::to_string(n) + " admits at most " +
                             std::to_string(cap) + " nodes, got " +
                             std::to_string(scenario.nodes));
      }
      break;
    }
    case App::kLammps: {
      if (param_or(scenario, "cells", 2.0) < 1.0) {
        throw support::Error("lammps cells must be >= 1");
      }
      break;
    }
    case App::kSparseCg: {
      const double grid = param_or(scenario, "grid", 16.0);
      if (grid < 2.0 || grid > 64.0 || grid != double(int(grid))) {
        throw support::Error("sparse_cg grid must be an integer in [2, 64]");
      }
      const double tol = param_or(scenario, "tol", 1e-8);
      if (tol <= 0.0 || tol > 0.1) {
        throw support::Error("sparse_cg tol must be in (0, 0.1]");
      }
      if (param_or(scenario, "rows_per_rank", 1.0e6) < 1.0) {
        throw support::Error("sparse_cg rows_per_rank must be >= 1");
      }
      if (!machine.node.has_gpu()) {
        throw support::Error("sparse_cg needs a GPU machine, " +
                             machine.name + " has none");
      }
      break;
    }
    case App::kComet:
    case App::kExaSky:
      break;
  }
}

double Report::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) {
    throw support::Error("report has no metric named " + name);
  }
  return it->second;
}

Report run(const Scenario& scenario) {
  validate(scenario);
  const arch::Machine machine = arch::machines::by_name(scenario.machine);
  Report report;
  switch (scenario.app) {
    case App::kPele:
      report = run_pele(scenario, machine);
      break;
    case App::kGests:
      report = run_gests(scenario, machine);
      break;
    case App::kLammps:
      report = run_lammps(scenario, machine);
      break;
    case App::kComet:
      report = run_comet(scenario, machine);
      break;
    case App::kExaSky:
      report = run_exasky(scenario, machine);
      break;
    case App::kSparseCg:
      report = run_sparse_cg(scenario, machine);
      break;
  }
  // Pele and GESTS price the preset natively (plotfiles / field dumps);
  // the others charge one collective checkpoint. Quiet adds exactly 0.0.
  if (scenario.app != App::kPele && scenario.app != App::kGests) {
    const double ckpt = checkpoint_surcharge(scenario, machine);
    if (ckpt > 0.0) {
      report.metrics["checkpoint_s"] = ckpt;
      report.time_s += ckpt;
    }
  }
  report.scenario = scenario;
  return report;
}

}  // namespace exa::svc
