#pragma once
/// \file lint.hpp
/// exa-lint — multi-pass static analysis over the repo's C++ sources.
///
/// The paper's ports accumulated exactly the textual bug classes this pass
/// flags: hipify remnants (deprecated CUDA-era spellings), unchecked hip*
/// return values, raw hipMalloc/hipFree pairs bypassing the pooled view
/// layer, and — the classes that break bitwise reproducibility — blocking
/// calls, locks, wall-clock reads, and shared-state writes buried inside
/// parallel dispatch bodies. The scanner is a lightweight tokenizer
/// (comments and string literals masked, identifiers matched at word
/// boundaries, parallel regions delimited by paren/brace tracking) — not a
/// real parser; rules favour low-noise heuristics over completeness.
///
/// Rule catalogue (ids are stable):
///   unchecked-hip-call        statement-position hip*/cuda* call whose
///                             hipError_t result is discarded
///   deprecated-cuda           CUDA-era spelling (hipify mapping table,
///                             injected via set_cuda_mappings) or a
///                             triple-chevron launch
///   raw-device-alloc          direct hipMalloc/hipMallocManaged/hipFree —
///                             prefer pfw::create_device_view / pooling
///   blocking-in-parallel      blocking HIP call or blocking file I/O
///                             inside a parallel_for/parallel_reduce/
///                             for_chunks lambda body
///   nondeterminism-in-parallel  rand/srand/time/clock/random_device
///                             inside a parallel lambda body — breaks the
///                             bitwise-reproducibility contract
///   lock-in-parallel          mutex/lock acquisition inside a parallel
///                             lambda body — serializes and reorders
///   shared-write-in-parallel  plain write to a captured-by-reference
///                             name inside a [&] parallel lambda body
///                             (subscripted per-index writes are fine)
///   unordered-in-reduction    unordered_{map,set} mentioned inside a
///                             parallel_reduce body — iteration order
///                             feeds the reduction
///   fp-contract-in-mathlib    std::fma / FP_CONTRACT ON / fast-math
///                             pragma in src/mathlib (bitwise-reference
///                             contract: -ffp-contract=off, no FMA)
///
/// Layering rules (emitted by the include-graph pass, see
/// check/lint2/layering.hpp):
///   layer-upward-include      #include reaching a layer of equal or
///                             higher rank in the manifest
///   layer-cycle               cycle in the directory-level include graph
///   layer-private-include     #include of a non-public header (manifest
///                             `private` patterns) from another layer
///
/// Suppression: `// exa-lint: allow(<rule>[, <rule>...])` on the same line
/// or the line directly above the finding. Machine-wide suppressions live
/// in the baseline file (check/lint2/report.hpp).

#include <string>
#include <string_view>
#include <vector>

namespace exa::check::lint {

struct Finding {
  std::string rule;     ///< stable rule id (see catalogue above)
  std::string file;
  int line = 0;         ///< 1-based
  std::string message;

  /// "file:line: exa-lint[rule] message" — the line CI greps for.
  [[nodiscard]] std::string format() const;
};

struct Report {
  std::vector<Finding> findings;  ///< unsuppressed findings only
  int suppressed = 0;             ///< findings silenced by allow() comments
};

/// All rule ids (content rules then layering rules), in catalogue order.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// One CUDA-era identifier spelling and its HIP replacement. The table is
/// injected from above (tools/exa_lint.cpp reads hip::hipify::api_table())
/// so that the lint library never includes upward into src/hip — the
/// layering pass itself enforces this.
struct CudaMapping {
  std::string cuda;
  std::string hip;
  bool deprecated = false;
};

/// Replaces the deprecated-cuda mapping table (default: empty — only the
/// triple-chevron launch heuristic fires).
void set_cuda_mappings(std::vector<CudaMapping> mappings);
[[nodiscard]] const std::vector<CudaMapping>& cuda_mappings();

/// Lints one translation unit. `disabled` rules are skipped entirely. The
/// fp-contract-in-mathlib rule arms itself only when `filename` contains a
/// "mathlib" path component.
[[nodiscard]] Report lint_source(std::string_view source,
                                 const std::string& filename,
                                 const std::vector<std::string>& disabled = {});

}  // namespace exa::check::lint
