#pragma once
/// \file lint.hpp
/// exa-lint — static HIP API-misuse pass over C++ sources.
///
/// The paper's ports accumulated exactly the textual bug classes this pass
/// flags: hipify remnants (deprecated CUDA-era spellings), unchecked hip*
/// return values, raw hipMalloc/hipFree pairs bypassing the pooled view
/// layer, and blocking calls buried inside parallel_for bodies. The
/// scanner is a lightweight tokenizer — comments and string literals are
/// masked out, identifiers are matched at word boundaries — not a real
/// parser; rules favour low-noise heuristics over completeness.
///
/// Rule catalogue (ids are stable):
///   unchecked-hip-call   statement-position hip*/cuda* call whose
///                        hipError_t result is discarded
///   deprecated-cuda      CUDA-era spelling (hipify mapping table) or a
///                        triple-chevron launch
///   raw-device-alloc     direct hipMalloc/hipMallocManaged/hipFree —
///                        prefer pfw::create_device_view / pool allocation
///   blocking-in-parallel blocking hipMemcpy/hipDeviceSynchronize inside a
///                        parallel_for/parallel_reduce body
///
/// Suppression: `// exa-lint: allow(<rule>[, <rule>...])` on the same line
/// or the line directly above the finding.

#include <string>
#include <string_view>
#include <vector>

namespace exa::check::lint {

struct Finding {
  std::string rule;     ///< stable rule id (see catalogue above)
  std::string file;
  int line = 0;         ///< 1-based
  std::string message;

  /// "file:line: exa-lint[rule] message" — the line CI greps for.
  [[nodiscard]] std::string format() const;
};

struct Report {
  std::vector<Finding> findings;  ///< unsuppressed findings only
  int suppressed = 0;             ///< findings silenced by allow() comments
};

/// All rule ids, in catalogue order.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Lints one translation unit. `disabled` rules are skipped entirely.
[[nodiscard]] Report lint_source(std::string_view source,
                                 const std::string& filename,
                                 const std::vector<std::string>& disabled = {});

}  // namespace exa::check::lint
