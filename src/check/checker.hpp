#pragma once
/// \file checker.hpp
/// exa::check — runtime HIP API-misuse detection.
///
/// The paper's porting campaigns were dominated by *correctness* work:
/// hipify remnants, stream/event misuse, unsynchronized async copies, and
/// allocation-lifetime bugs discovered late on scarce hardware (§GAMESS,
/// §Pele). This module catches those bug classes deterministically in CI
/// by validating every call that crosses the hip shim against a
/// happens-before graph built from virtual-time stream ordering and event
/// waits.
///
/// The checker is opt-in (EXA_CHECK=1 / EXA_CHECK=strict, or
/// hip::hipCheckEnableEXA()); disabled it costs one relaxed atomic load
/// per shim call, so default builds keep the PR-3 dispatch fast path.
///
/// Rule catalogue (ids are stable; tests assert them verbatim):
///   uaf           use-after-free of a device allocation
///   double-free   hipFree of an already-freed pointer
///   stream-misuse op on a destroyed stream, a foreign-device stream, or
///                 hipFree from the wrong device
///   async-race    host buffer of a hipMemcpyAsync reused before the copy
///                 is synchronized
///   missing-sync  device-written data read without a synchronization edge
///   event-misuse  event wait/elapsed before record, or out of order
///   leak          allocations/streams/events alive at device teardown
///
/// Happens-before model: every operation enqueued on a stream gets a
/// per-stream sequence number; streams, events, and the host each carry a
/// vector clock over streams. Synchronization calls (stream/device/event
/// sync, successful stream queries, stream-wait-event) join clocks. An
/// access is racy when the writer's (stream, seq) is not covered by the
/// reader's clock — virtual time alone never establishes an edge, exactly
/// as wall-clock luck never does on real hardware.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace exa::check {

enum class Mode { kOff, kOn, kStrict };

enum class Rule {
  kUseAfterFree = 0,
  kDoubleFree,
  kStreamMisuse,
  kAsyncRace,
  kMissingSync,
  kEventMisuse,
  kLeak,
};
inline constexpr int kRuleCount = 7;

/// Stable short id ("uaf", "double-free", ...) used in diagnostics, tests,
/// and docs.
[[nodiscard]] const char* rule_id(Rule rule);

/// One structured diagnostic: the rule, the API call that tripped it, and
/// the provenance of both accesses involved.
struct Diagnostic {
  Rule rule = Rule::kUseAfterFree;
  std::string call;     ///< shim entry point that detected the violation
  std::string message;  ///< human-readable detail
  std::string first;    ///< provenance of the first access (alloc/write/...)
  std::string second;   ///< provenance of the second access (call site)

  /// "exa-check[<rule>] <call>: <message> ..." — the line tests grep for.
  [[nodiscard]] std::string format() const;
};

/// Identifies one simulated stream: (device index, sim stream id). The
/// default stream of device d is {d, 0}. Ids are never reused within a
/// runtime generation, so a key pins one stream's lifetime.
struct StreamKey {
  int device = 0;
  int id = 0;
  [[nodiscard]] std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(device))
            << 32) |
           static_cast<std::uint32_t>(id);
  }
};

/// A buffer a kernel touches, declared on hip::Kernel for provenance
/// (kernels in the simulator carry cost profiles, not pointer arguments,
/// so data-flow through launches is annotated rather than inferred).
struct BufferUse {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  bool write = true;
};

/// Direction tag for copies crossing the shim (mirrors hipMemcpyKind
/// without depending on the hip headers — hip links *against* check).
enum class CopyDir { kHostToHost, kHostToDevice, kDeviceToHost, kDeviceToDevice };

class Checker {
 public:
  static Checker& instance();

  /// Fast-path guard: a single relaxed load, inlined into every shim call.
  [[nodiscard]] static bool armed() {
    return armed_.load(std::memory_order_relaxed);
  }

  void set_mode(Mode mode);
  [[nodiscard]] Mode mode() const;

  /// Drops all diagnostics and tracking state (mode is unchanged).
  void clear();

  [[nodiscard]] std::vector<Diagnostic> diagnostics() const;
  [[nodiscard]] std::uint64_t count(Rule rule) const;
  [[nodiscard]] std::uint64_t total() const;

  /// End-of-run report: per-rule counts plus every retained diagnostic.
  void report(std::ostream& os) const;

  /// Prints the report to stderr when diagnostics exist; under
  /// Mode::kStrict additionally terminates the process with exit code 1.
  /// Registered via atexit when strict mode is enabled from the
  /// environment, and callable directly (hip::hipCheckFinalizeEXA).
  void finalize();

  // --- call-site provenance --------------------------------------------
  /// Pushed by instrumented layers (pfw dispatch) and tests so diagnostics
  /// name the application-level call site, not just the shim entry.
  void push_site(const std::string& site);
  void pop_site();

  // --- hooks from the hip shim -----------------------------------------
  // All hooks are internally locked; callers guard with armed().

  /// Runtime re-configuration destroys every device: scan for leaked
  /// allocations/streams/events, cross-check the sim's live-allocation
  /// census, then reset tracking for the new generation. `sim_live` is one
  /// (trace name, live allocation count) pair per outgoing device.
  void on_configure(
      const std::vector<std::pair<std::string, std::size_t>>& sim_live);

  void on_alloc(const void* ptr, std::size_t bytes, int device, bool managed);

  enum class FreeCheck { kOk, kUnknown, kDoubleFree, kForeignDevice };
  /// Validates a hipFree; emits double-free / foreign-device diagnostics
  /// and tombstones the allocation on success.
  FreeCheck on_free(const void* ptr, int owner, int current_device);

  /// Validates one memcpy. Returns false when the copy must be vetoed
  /// (a pointer resolves into freed device memory — copying would touch
  /// dead storage for real, since device memory is host-backed).
  [[nodiscard]] bool on_copy(const void* dst, const void* src,
                             std::size_t bytes, CopyDir dir, StreamKey stream,
                             bool async, double ready_sim, const char* api);

  /// Validates a device-side access (hipMemset, hipUvmFault, kernel buffer
  /// reads). Returns false on veto (freed memory).
  [[nodiscard]] bool on_device_access(StreamKey stream, const void* ptr,
                                      std::size_t bytes, bool write,
                                      const char* api);

  /// Orders a kernel launch on the happens-before graph and records the
  /// write sets of its declared buffers.
  void on_launch(StreamKey stream, const std::string& name, double ready_sim);
  /// Pre-validates a launch's declared buffers (uaf veto, foreign-device,
  /// unsynchronized read-after-write). Returns false on veto.
  [[nodiscard]] bool on_launch_buffers(StreamKey stream,
                                       const std::vector<BufferUse>& buffers,
                                       const std::string& name);

  void on_stream_create(StreamKey stream);
  void on_stream_destroy(StreamKey stream);
  /// An API call resolved a destroyed stream handle.
  void on_destroyed_stream_use(const char* api);
  /// Host synchronized with `stream` (sync, successful query, destroy).
  void on_stream_sync(StreamKey stream);
  /// Host synchronized with every stream of `device`.
  void on_device_sync(int device);

  void on_event_create(const void* event, int device);
  void on_event_destroy(const void* event);
  void on_event_record(const void* event, StreamKey stream);
  /// Host wait. `recorded` is the shim's view (id >= 0).
  void on_event_sync(const void* event, bool recorded);
  /// stream-wait-event edge; unrecorded waits are ordering violations.
  void on_stream_wait_event(StreamKey stream, const void* event,
                            bool recorded, const char* api);
  void on_event_elapsed(const void* start, const void* stop,
                        bool start_recorded, bool stop_recorded);
  void on_destroyed_event_use(const char* api);

  // --- host-access annotations -----------------------------------------
  void on_host_access(const void* ptr, std::size_t bytes, bool write,
                      const char* site);

 private:
  Checker() = default;

  struct AllocState {
    std::uintptr_t base = 0;
    std::size_t bytes = 0;
    int device = 0;
    bool live = true;
    bool managed = false;
    std::string alloc_site;
    std::string free_site;
  };
  struct StreamState {
    bool live = true;
    std::string create_site;
  };
  struct EventState {
    int device = 0;
    bool live = true;
    bool recorded = false;
    StreamKey record_stream;
    std::uint64_t record_seq = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> vc;
    std::string create_site;
    std::string record_site;
  };
  /// A device-side write to a byte range, stamped with its enqueue point
  /// on the happens-before graph and its virtual completion time.
  struct DevWrite {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    StreamKey stream;
    std::uint64_t seq = 0;
    double ready_sim = 0.0;
    std::string what;
  };
  /// A host byte range pinned by an in-flight async copy: the host must
  /// not reuse it until it has synchronized with the owning stream.
  struct HostPin {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    StreamKey stream;
    std::uint64_t seq = 0;
    bool device_writes = false;  ///< D2H destination (device writing host)
    double ready_sim = 0.0;
    std::string what;
  };

  using VectorClock = std::unordered_map<std::uint64_t, std::uint64_t>;

  // All private helpers assume mutex_ is held.
  void emit(Rule rule, const char* call, std::string message,
            std::string first, std::string second);
  [[nodiscard]] std::string site_label(const char* fallback) const;
  [[nodiscard]] std::uint64_t bump(StreamKey stream);
  void join_into(VectorClock& dst, const VectorClock& src);
  [[nodiscard]] bool covers(const VectorClock& vc, StreamKey stream,
                            std::uint64_t seq) const;
  [[nodiscard]] bool host_covers(StreamKey stream, std::uint64_t seq) const;
  /// The allocation containing `p`, or nullptr (includes tombstones).
  [[nodiscard]] AllocState* find_alloc(const void* p);
  void record_dev_write(const void* ptr, std::size_t bytes, StreamKey stream,
                        std::uint64_t seq, double ready_sim, std::string what);
  /// uaf / missing-sync / async-race checks for one access; returns false
  /// on veto (freed memory).
  [[nodiscard]] bool check_access(const void* ptr, std::size_t bytes,
                                  bool write, bool host_side, StreamKey stream,
                                  const char* api);
  void leak_scan(
      const std::vector<std::pair<std::string, std::size_t>>& sim_live);
  void reset_tracking();

  static inline std::atomic<bool> armed_{false};

  mutable std::mutex mutex_;
  Mode mode_ = Mode::kOff;
  std::vector<Diagnostic> diags_;
  std::uint64_t counts_[kRuleCount] = {};
  std::uint64_t total_ = 0;
  std::vector<std::string> sites_;

  std::unordered_map<std::uint64_t, std::uint64_t> seq_;
  std::unordered_map<std::uint64_t, VectorClock> stream_vc_;
  VectorClock host_vc_;

  std::map<std::uintptr_t, AllocState> allocs_;  // keyed by base address
  std::unordered_map<std::uint64_t, StreamState> streams_;
  std::unordered_map<const void*, EventState> events_;
  std::vector<DevWrite> dev_writes_;
  std::vector<HostPin> host_pins_;
};

/// Declares that host code is about to read [ptr, ptr+bytes): trips
/// missing-sync when the range was device-written without a sync edge,
/// async-race when an in-flight async copy still owns it, uaf when it lies
/// in freed device memory. No-op while the checker is off.
void annotate_host_read(const void* ptr, std::size_t bytes,
                        const char* site = nullptr);
/// Host-write counterpart (reusing an async-copy source buffer, etc.).
void annotate_host_write(const void* ptr, std::size_t bytes,
                         const char* site = nullptr);

/// RAII call-site label for diagnostics ("app::solve", pfw labels, ...).
class ScopedSite {
 public:
  explicit ScopedSite(const std::string& site) {
    if (Checker::armed()) {
      Checker::instance().push_site(site);
      active_ = true;
    }
  }
  ~ScopedSite() {
    if (active_) Checker::instance().pop_site();
  }
  ScopedSite(const ScopedSite&) = delete;
  ScopedSite& operator=(const ScopedSite&) = delete;

 private:
  bool active_ = false;
};

}  // namespace exa::check
