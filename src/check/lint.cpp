#include "check/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>

#include "hip/hipify.hpp"

namespace exa::check::lint {

namespace {

constexpr std::string_view kUncheckedCall = "unchecked-hip-call";
constexpr std::string_view kDeprecatedCuda = "deprecated-cuda";
constexpr std::string_view kRawAlloc = "raw-device-alloc";
constexpr std::string_view kBlockingInParallel = "blocking-in-parallel";

/// hip* functions whose return value carries no error status (or none at
/// all) — discarding it is fine.
constexpr std::array<std::string_view, 6> kNoErrorReturn = {
    "hipGetErrorString", "hipLastLaunchTiming", "hipHostTimeSec",
    "hipHostBusy",       "hipCheckEnableEXA",   "hipCheckDisableEXA",
};

constexpr std::array<std::string_view, 3> kRawAllocCalls = {
    "hipMalloc", "hipMallocManaged", "hipFree"};

constexpr std::array<std::string_view, 2> kBlockingCalls = {
    "hipMemcpy", "hipDeviceSynchronize"};

constexpr std::array<std::string_view, 4> kParallelEntryPoints = {
    "parallel_for", "parallel_for_chunks", "parallel_reduce",
    "parallel_reduce_chunks"};

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Masked view of the source: comments, string literals, and char literals
/// are replaced with spaces (newlines preserved, so offsets and line
/// numbers survive), while `exa-lint: allow(...)` suppressions found in
/// comments are collected per line.
struct MaskedSource {
  std::string code;
  std::map<int, std::set<std::string>> suppressions;  // line -> rule ids
};

void collect_suppressions(std::string_view comment, int line,
                          std::map<int, std::set<std::string>>& out) {
  const std::string_view tag = "exa-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string_view::npos) return;
  pos = comment.find("allow", pos + tag.size());
  if (pos == std::string_view::npos) return;
  const std::size_t open = comment.find('(', pos);
  if (open == std::string_view::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string rule;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',' ) {
      if (!rule.empty()) out[line].insert(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule.push_back(c);
    }
  }
}

[[nodiscard]] MaskedSource mask(std::string_view src) {
  MaskedSource m;
  m.code.assign(src.begin(), src.end());
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      collect_suppressions(src.substr(start, i - start), line,
                           m.suppressions);
      std::fill(m.code.begin() + static_cast<std::ptrdiff_t>(start),
                m.code.begin() + static_cast<std::ptrdiff_t>(i), ' ');
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int first_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      collect_suppressions(src.substr(start, i - start), first_line,
                           m.suppressions);
      for (std::size_t j = start; j < i; ++j) {
        if (m.code[j] != '\n') m.code[j] = ' ';
      }
    } else if (c == '"' && i > 0 && src[i - 1] == 'R') {
      // Raw string literal: R"delim( ... )delim".
      const std::size_t start = i - 1;
      std::size_t d = i + 1;
      while (d < n && src[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(src.substr(i + 1, d - i - 1)) + "\"";
      std::size_t close = src.find(closer, d);
      close = close == std::string_view::npos ? n : close + closer.size();
      for (std::size_t j = start; j < close; ++j) {
        if (m.code[j] == '\n') {
          ++line;
        } else {
          m.code[j] = ' ';
        }
      }
      i = close;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated literal: stay sane
        ++i;
      }
      i = std::min(n, i + 1);
      for (std::size_t j = start; j < i; ++j) {
        if (m.code[j] != '\n') m.code[j] = ' ';
      }
    } else {
      ++i;
    }
  }
  return m;
}

[[nodiscard]] int line_of(std::string_view code, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(code.begin(),
                            code.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

/// Finds `ident` at a word boundary at/after `from`; npos when absent.
[[nodiscard]] std::size_t find_ident(std::string_view code,
                                     std::string_view ident,
                                     std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = code.find(ident, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string_view::npos;
}

/// Offset one past the parenthesized group opening at `open` ('(' there),
/// or npos when unbalanced.
[[nodiscard]] std::size_t match_paren(std::string_view code,
                                      std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

class Linter {
 public:
  Linter(std::string_view source, std::string filename,
         const std::vector<std::string>& disabled)
      : masked_(mask(source)),
        code_(masked_.code),
        file_(std::move(filename)),
        disabled_(disabled.begin(), disabled.end()) {}

  [[nodiscard]] Report run() {
    check_unchecked_calls();
    check_deprecated();
    check_raw_alloc();
    check_blocking_in_parallel();
    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.line < b.line || (a.line == b.line && a.rule < b.rule);
              });
    return std::move(report_);
  }

 private:
  void add(std::string_view rule, std::size_t offset, std::string message) {
    if (disabled_.count(std::string(rule)) != 0) return;
    const int line = line_of(code_, offset);
    for (const int l : {line, line - 1}) {
      const auto it = masked_.suppressions.find(l);
      if (it != masked_.suppressions.end() &&
          it->second.count(std::string(rule)) != 0) {
        ++report_.suppressed;
        return;
      }
    }
    report_.findings.push_back(
        Finding{std::string(rule), file_, line, std::move(message)});
  }

  /// An identifier is a *call in statement position* when the previous
  /// significant character ends a statement/block. `(void)` casts, `=`
  /// assignments, wrapping calls, and conditions all leave other
  /// characters behind and count as "checked".
  [[nodiscard]] bool statement_position(std::size_t ident_begin) const {
    std::size_t i = ident_begin;
    while (i > 0) {
      const char c = code_[i - 1];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        --i;
        continue;
      }
      if (c == ':' && i >= 2 && code_[i - 2] == ':') {
        // Qualified name (hip::hipFoo): skip "::" and the qualifier, keep
        // scanning — the statement context is whatever precedes it.
        i -= 2;
        while (i > 0 && ident_char(code_[i - 1])) --i;
        continue;
      }
      return c == ';' || c == '{' || c == '}' || c == ':';
    }
    return true;  // start of file
  }

  void check_unchecked_calls() {
    std::size_t i = 0;
    while (i < code_.size()) {
      if (!ident_char(code_[i]) ||
          (i > 0 && ident_char(code_[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < code_.size() && ident_char(code_[end])) ++end;
      const std::string_view ident = code_.substr(i, end - i);
      const bool hip_like =
          (ident.size() > 3 && ident.substr(0, 3) == "hip" &&
           std::isupper(static_cast<unsigned char>(ident[3])) != 0) ||
          (ident.size() > 4 && ident.substr(0, 4) == "cuda" &&
           std::isupper(static_cast<unsigned char>(ident[4])) != 0);
      if (hip_like &&
          std::find(kNoErrorReturn.begin(), kNoErrorReturn.end(), ident) ==
              kNoErrorReturn.end()) {
        std::size_t open = end;
        while (open < code_.size() &&
               std::isspace(static_cast<unsigned char>(code_[open])) != 0) {
          ++open;
        }
        if (open < code_.size() && code_[open] == '(' &&
            statement_position(i)) {
          add(kUncheckedCall, i,
              "return value of " + std::string(ident) +
                  " is discarded; check it or cast to (void)");
        }
      }
      i = end;
    }
  }

  void check_deprecated() {
    for (const auto& m : hip::hipify::api_table()) {
      std::size_t pos = 0;
      while ((pos = find_ident(code_, m.cuda, pos)) !=
             std::string_view::npos) {
        add(kDeprecatedCuda, pos,
            "CUDA-era spelling " + m.cuda + "; the HIP port uses " + m.hip +
                (m.deprecated ? " (outdated CUDA syntax)" : ""));
        pos += m.cuda.size();
      }
    }
    std::size_t pos = 0;
    while ((pos = code_.find("<<<", pos)) != std::string_view::npos) {
      add(kDeprecatedCuda, pos,
          "triple-chevron kernel launch; use hipLaunchKernelGGL / "
          "hipLaunchKernelEXA");
      pos += 3;
    }
  }

  void check_raw_alloc() {
    for (const std::string_view call : kRawAllocCalls) {
      std::size_t pos = 0;
      while ((pos = find_ident(code_, call, pos)) != std::string_view::npos) {
        add(kRawAlloc, pos,
            "raw " + std::string(call) +
                "; prefer pfw::create_device_view (pooled, leak-safe)");
        pos += call.size();
      }
    }
  }

  void check_blocking_in_parallel() {
    for (const std::string_view entry : kParallelEntryPoints) {
      std::size_t pos = 0;
      while ((pos = find_ident(code_, entry, pos)) != std::string_view::npos) {
        std::size_t open = pos + entry.size();
        while (open < code_.size() &&
               std::isspace(static_cast<unsigned char>(code_[open])) != 0) {
          ++open;
        }
        if (open >= code_.size() || code_[open] != '(') {
          pos += entry.size();
          continue;
        }
        const std::size_t close = match_paren(code_, open);
        if (close == std::string_view::npos) break;
        const std::string_view body = code_.substr(open, close - open);
        for (const std::string_view blocking : kBlockingCalls) {
          std::size_t hit = 0;
          while ((hit = find_ident(body, blocking, hit)) !=
                 std::string_view::npos) {
            // hipMemcpyAsync and the hipMemcpyKind enumerators share the
            // hipMemcpy prefix but are not blocking calls; find_ident
            // already rejects them via the word boundary.
            add(kBlockingInParallel, open + hit,
                "blocking " + std::string(blocking) + " inside " +
                    std::string(entry) +
                    " body serializes the device; hoist it out or use the "
                    "async form");
            hit += blocking.size();
          }
        }
        pos = close;
      }
    }
  }

  MaskedSource masked_;
  std::string_view code_;
  std::string file_;
  std::set<std::string> disabled_;
  Report report_;
};

}  // namespace

std::string Finding::format() const {
  return file + ":" + std::to_string(line) + ": exa-lint[" + rule + "] " +
         message;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      std::string(kUncheckedCall), std::string(kDeprecatedCuda),
      std::string(kRawAlloc), std::string(kBlockingInParallel)};
  return ids;
}

Report lint_source(std::string_view source, const std::string& filename,
                   const std::vector<std::string>& disabled) {
  return Linter(source, filename, disabled).run();
}

}  // namespace exa::check::lint
