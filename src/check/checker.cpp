#include "check/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/log.hpp"
#include "trace/tracer.hpp"

namespace exa::check {

namespace {

/// Caps keep a misbehaving run bounded: diagnostics beyond the per-rule
/// cap are counted but not retained; write/pin tables drop oldest.
constexpr std::size_t kMaxDiagsPerRule = 64;
constexpr std::size_t kMaxRangeEntries = 4096;

[[nodiscard]] std::uintptr_t addr(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

[[nodiscard]] std::string stream_name(StreamKey s) {
  return "gpu" + std::to_string(s.device) + "/s" + std::to_string(s.id);
}

[[nodiscard]] std::string hex(const void* p) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%p", p);
  return buf;
}

/// Reads EXA_CHECK once at static-init time: "1"/"on"/"true" arms the
/// checker, "strict" additionally arranges a non-zero exit when any
/// diagnostic fired (via an atexit finalizer).
const bool g_env_applied = [] {
  const char* env = std::getenv("EXA_CHECK");
  if (env == nullptr) return false;
  const std::string v(env);
  if (v == "1" || v == "on" || v == "true") {
    Checker::instance().set_mode(Mode::kOn);
  } else if (v == "strict") {
    Checker::instance().set_mode(Mode::kStrict);
  }
  return true;
}();

}  // namespace

const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::kUseAfterFree: return "uaf";
    case Rule::kDoubleFree: return "double-free";
    case Rule::kStreamMisuse: return "stream-misuse";
    case Rule::kAsyncRace: return "async-race";
    case Rule::kMissingSync: return "missing-sync";
    case Rule::kEventMisuse: return "event-misuse";
    case Rule::kLeak: return "leak";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::string out = "exa-check[";
  out += rule_id(rule);
  out += "] ";
  out += call;
  out += ": ";
  out += message;
  if (!first.empty()) out += " (first: " + first + ")";
  if (!second.empty()) out += " (second: " + second + ")";
  return out;
}

Checker& Checker::instance() {
  static Checker checker;
  return checker;
}

void Checker::set_mode(Mode mode) {
  static std::atomic<bool> exit_hook_registered{false};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    mode_ = mode;
  }
  armed_.store(mode != Mode::kOff, std::memory_order_relaxed);
  if (mode != Mode::kOff &&
      !exit_hook_registered.exchange(true, std::memory_order_acq_rel)) {
    std::atexit([] { Checker::instance().finalize(); });
  }
}

Mode Checker::mode() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return mode_;
}

void Checker::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  diags_.clear();
  std::fill(std::begin(counts_), std::end(counts_), 0);
  total_ = 0;
  reset_tracking();
}

void Checker::reset_tracking() {
  sites_.clear();
  seq_.clear();
  stream_vc_.clear();
  host_vc_.clear();
  allocs_.clear();
  streams_.clear();
  events_.clear();
  dev_writes_.clear();
  host_pins_.clear();
}

std::vector<Diagnostic> Checker::diagnostics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return diags_;
}

std::uint64_t Checker::count(Rule rule) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_[static_cast<int>(rule)];
}

std::uint64_t Checker::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void Checker::report(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "exa-check report: " << total_ << " diagnostic"
     << (total_ == 1 ? "" : "s") << "\n";
  for (int r = 0; r < kRuleCount; ++r) {
    if (counts_[r] == 0) continue;
    os << "  " << rule_id(static_cast<Rule>(r)) << ": " << counts_[r] << "\n";
  }
  for (const Diagnostic& d : diags_) os << "  " << d.format() << "\n";
}

void Checker::finalize() {
  Mode mode;
  std::uint64_t total;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    mode = mode_;
    total = total_;
  }
  if (total == 0) return;
  report(std::cerr);
  std::cerr.flush();
  if (mode == Mode::kStrict) {
    // _Exit keeps the exit code deterministic under sanitizers and inside
    // death-test children (no atexit / static-destructor re-entry).
    std::fflush(nullptr);
    std::_Exit(1);
  }
}

void Checker::push_site(const std::string& site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sites_.push_back(site);
}

void Checker::pop_site() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!sites_.empty()) sites_.pop_back();
}

std::string Checker::site_label(const char* fallback) const {
  if (!sites_.empty()) return sites_.back();
  return fallback;
}

void Checker::emit(Rule rule, const char* call, std::string message,
                   std::string first, std::string second) {
  ++total_;
  auto& count = counts_[static_cast<int>(rule)];
  ++count;
  Diagnostic d;
  d.rule = rule;
  d.call = call;
  d.message = std::move(message);
  d.first = std::move(first);
  d.second = std::move(second);
  const std::string line = d.format();
  support::log_warn(line);
  if (auto& tracer = trace::Tracer::instance(); tracer.enabled()) {
    tracer.instant(line, "check", trace::kNoSim, "check");
  }
  if (count <= kMaxDiagsPerRule) diags_.push_back(std::move(d));
}

// --- happens-before plumbing -------------------------------------------

std::uint64_t Checker::bump(StreamKey stream) {
  const std::uint64_t key = stream.packed();
  const std::uint64_t seq = ++seq_[key];
  stream_vc_[key][key] = seq;
  return seq;
}

void Checker::join_into(VectorClock& dst, const VectorClock& src) {
  for (const auto& [k, v] : src) {
    auto& slot = dst[k];
    slot = std::max(slot, v);
  }
}

bool Checker::covers(const VectorClock& vc, StreamKey stream,
                     std::uint64_t seq) const {
  const auto it = vc.find(stream.packed());
  return it != vc.end() && it->second >= seq;
}

bool Checker::host_covers(StreamKey stream, std::uint64_t seq) const {
  return covers(host_vc_, stream, seq);
}

Checker::AllocState* Checker::find_alloc(const void* p) {
  if (allocs_.empty()) return nullptr;
  const std::uintptr_t a = addr(p);
  auto it = allocs_.upper_bound(a);
  if (it == allocs_.begin()) return nullptr;
  --it;
  AllocState& alloc = it->second;
  if (a >= alloc.base && a < alloc.base + alloc.bytes) return &alloc;
  return nullptr;
}

void Checker::record_dev_write(const void* ptr, std::size_t bytes,
                               StreamKey stream, std::uint64_t seq,
                               double ready_sim, std::string what) {
  if (ptr == nullptr || bytes == 0) return;
  const std::uintptr_t lo = addr(ptr);
  const std::uintptr_t hi = lo + bytes;
  // The new write supersedes older overlapping writes on the same stream
  // (program order); unordered cross-stream writes are kept — both are
  // live race candidates.
  dev_writes_.erase(
      std::remove_if(dev_writes_.begin(), dev_writes_.end(),
                     [&](const DevWrite& w) {
                       return w.stream.packed() == stream.packed() &&
                              w.lo < hi && lo < w.hi;
                     }),
      dev_writes_.end());
  if (dev_writes_.size() >= kMaxRangeEntries) {
    dev_writes_.erase(dev_writes_.begin());
  }
  dev_writes_.push_back(
      DevWrite{lo, hi, stream, seq, ready_sim, std::move(what)});
}

// --- lifecycle hooks ----------------------------------------------------

void Checker::on_configure(
    const std::vector<std::pair<std::string, std::size_t>>& sim_live) {
  const std::lock_guard<std::mutex> lock(mutex_);
  leak_scan(sim_live);
  reset_tracking();
}

void Checker::leak_scan(
    const std::vector<std::pair<std::string, std::size_t>>& sim_live) {
  std::size_t tracked_live = 0;
  for (const auto& [base, alloc] : allocs_) {
    if (!alloc.live) continue;
    ++tracked_live;
    emit(Rule::kLeak, "teardown",
         std::to_string(alloc.bytes) + " bytes on device " +
             std::to_string(alloc.device) + " never freed (" +
             hex(reinterpret_cast<const void*>(base)) + ")",
         "allocated at " + alloc.alloc_site, "");
  }
  for (const auto& [key, stream] : streams_) {
    if (!stream.live) continue;
    emit(Rule::kLeak, "teardown",
         "stream " +
             stream_name(StreamKey{static_cast<int>(key >> 32),
                                   static_cast<int>(key & 0xffffffffu)}) +
             " never destroyed",
         "created at " + stream.create_site, "");
  }
  for (const auto& [handle, event] : events_) {
    if (!event.live) continue;
    emit(Rule::kLeak, "teardown",
         "event " + hex(handle) + " never destroyed",
         "created at " + event.create_site, "");
  }
  // Cross-check against the device simulator's own census: allocations
  // made behind the shim's back (direct DeviceSim::malloc_device) leak
  // invisibly to the pointer table above.
  std::size_t sim_total = 0;
  for (const auto& [name, live] : sim_live) sim_total += live;
  if (sim_total > tracked_live) {
    emit(Rule::kLeak, "teardown",
         std::to_string(sim_total - tracked_live) +
             " device allocation(s) live at teardown but unknown to the HIP "
             "API (allocated outside the shim)",
         "", "");
  }
}

void Checker::on_alloc(const void* ptr, std::size_t bytes, int device,
                       bool managed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uintptr_t lo = addr(ptr);
  const std::uintptr_t hi = lo + bytes;
  // The host allocator may hand back a previously freed range: drop any
  // tombstones (and stale write records) the new allocation overlaps.
  for (auto it = allocs_.begin(); it != allocs_.end();) {
    const AllocState& a = it->second;
    if (!a.live && a.base < hi && lo < a.base + a.bytes) {
      it = allocs_.erase(it);
    } else {
      ++it;
    }
  }
  dev_writes_.erase(std::remove_if(dev_writes_.begin(), dev_writes_.end(),
                                   [&](const DevWrite& w) {
                                     return w.lo < hi && lo < w.hi;
                                   }),
                    dev_writes_.end());
  AllocState alloc;
  alloc.base = lo;
  alloc.bytes = bytes;
  alloc.device = device;
  alloc.managed = managed;
  alloc.alloc_site = site_label("hipMalloc");
  allocs_[lo] = std::move(alloc);
}

Checker::FreeCheck Checker::on_free(const void* ptr, int owner,
                                    int current_device) {
  const std::lock_guard<std::mutex> lock(mutex_);
  AllocState* alloc = find_alloc(ptr);
  if (alloc == nullptr) return FreeCheck::kUnknown;
  if (!alloc->live) {
    emit(Rule::kDoubleFree, "hipFree",
         "pointer " + hex(ptr) + " freed twice",
         "allocated at " + alloc->alloc_site + "; freed at " +
             alloc->free_site,
         site_label("hipFree"));
    return FreeCheck::kDoubleFree;
  }
  if (owner >= 0 && owner != current_device) {
    emit(Rule::kStreamMisuse, "hipFree",
         "pointer " + hex(ptr) + " owned by device " + std::to_string(owner) +
             " freed from device " + std::to_string(current_device),
         "allocated at " + alloc->alloc_site, site_label("hipFree"));
    return FreeCheck::kForeignDevice;
  }
  // Freeing memory an in-flight async op still touches is use-after-free
  // on real hardware (the runtime may recycle the page mid-copy).
  const std::uintptr_t lo = alloc->base;
  const std::uintptr_t hi = lo + alloc->bytes;
  for (const DevWrite& w : dev_writes_) {
    if (w.lo < hi && lo < w.hi && !host_covers(w.stream, w.seq)) {
      emit(Rule::kUseAfterFree, "hipFree",
           "freeing " + hex(ptr) + " while " + w.what + " on " +
               stream_name(w.stream) + " is not synchronized",
           w.what + " enqueued on " + stream_name(w.stream) +
               " (completes at t=" + std::to_string(w.ready_sim) + "s)",
           site_label("hipFree"));
      break;
    }
  }
  alloc->live = false;
  alloc->free_site = site_label("hipFree");
  return FreeCheck::kOk;
}

// --- access validation --------------------------------------------------

bool Checker::check_access(const void* ptr, std::size_t bytes, bool write,
                           bool host_side, StreamKey stream, const char* api) {
  if (ptr == nullptr || bytes == 0) return true;
  if (AllocState* alloc = find_alloc(ptr); alloc != nullptr && !alloc->live) {
    emit(Rule::kUseAfterFree, api,
         std::string(write ? "write to" : "read of") + " " + hex(ptr) +
             " (" + std::to_string(bytes) + " bytes) in freed device memory",
         "allocated at " + alloc->alloc_site + "; freed at " +
             alloc->free_site,
         site_label(api));
    return false;  // veto: the backing host storage is genuinely gone
  }
  const std::uintptr_t lo = addr(ptr);
  const std::uintptr_t hi = lo + bytes;
  for (const DevWrite& w : dev_writes_) {
    if (!(w.lo < hi && lo < w.hi)) continue;
    const bool ordered = host_side
                             ? host_covers(w.stream, w.seq)
                             : (w.stream.packed() == stream.packed() ||
                                covers(stream_vc_[stream.packed()], w.stream,
                                       w.seq));
    if (ordered) continue;
    emit(Rule::kMissingSync, api,
         std::string(host_side ? "host" : stream_name(stream).c_str()) +
             std::string(write ? " writes " : " reads ") + hex(ptr) +
             " while " + w.what + " on " + stream_name(w.stream) +
             " has no synchronization edge",
         w.what + " enqueued on " + stream_name(w.stream) +
             " (completes at t=" + std::to_string(w.ready_sim) + "s)",
         site_label(api));
    break;
  }
  if (host_side) {
    for (const HostPin& pin : host_pins_) {
      if (!(pin.lo < hi && lo < pin.hi)) continue;
      if (host_covers(pin.stream, pin.seq)) continue;
      // Reading a buffer the device is still filling, or writing a buffer
      // the device is still reading/filling, races the in-flight copy.
      if (!write && !pin.device_writes) continue;
      emit(Rule::kAsyncRace, api,
           std::string("host ") + (write ? "reuses" : "reads") + " " +
               hex(ptr) + " before " + pin.what + " on " +
               stream_name(pin.stream) + " is synchronized",
           pin.what + " enqueued on " + stream_name(pin.stream) +
               " (completes at t=" + std::to_string(pin.ready_sim) + "s)",
           site_label(api));
      break;
    }
  }
  return true;
}

bool Checker::on_copy(const void* dst, const void* src, std::size_t bytes,
                      CopyDir dir, StreamKey stream, bool async,
                      double ready_sim, const char* api) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool dst_device =
      dir == CopyDir::kHostToDevice || dir == CopyDir::kDeviceToDevice;
  const bool src_device =
      dir == CopyDir::kDeviceToHost || dir == CopyDir::kDeviceToDevice;

  bool ok = true;
  // Device-side validation (uaf veto, unsynchronized read-after-write).
  if (!check_access(src, bytes, /*write=*/false, /*host_side=*/!src_device,
                    stream, api)) {
    ok = false;
  }
  if (!check_access(dst, bytes, /*write=*/true, /*host_side=*/!dst_device,
                    stream, api)) {
    ok = false;
  }
  if (!ok) return false;

  // Foreign-device stream: a copy touching memory owned by one device but
  // queued on another device's stream.
  for (const void* p : {dst, src}) {
    AllocState* alloc = find_alloc(p);
    if (alloc != nullptr && alloc->live && alloc->device != stream.device) {
      emit(Rule::kStreamMisuse, api,
           "pointer " + hex(p) + " owned by device " +
               std::to_string(alloc->device) + " used on stream " +
               stream_name(stream),
           "allocated at " + alloc->alloc_site, site_label(api));
      break;
    }
  }

  const std::uint64_t seq = bump(stream);
  if (dst_device) {
    record_dev_write(dst, bytes, stream, seq, ready_sim, api);
  }
  if (async) {
    if (host_pins_.size() >= kMaxRangeEntries) {
      host_pins_.erase(host_pins_.begin());
    }
    if (dir == CopyDir::kHostToDevice) {
      host_pins_.push_back(HostPin{addr(src), addr(src) + bytes, stream, seq,
                                   /*device_writes=*/false, ready_sim, api});
    } else if (dir == CopyDir::kDeviceToHost) {
      // The host destination is covered by the pin alone: registering it as
      // a device write too would double-report one racy read.
      host_pins_.push_back(HostPin{addr(dst), addr(dst) + bytes, stream, seq,
                                   /*device_writes=*/true, ready_sim, api});
    }
  } else {
    // A synchronous copy blocks the host until its stream drained it.
    join_into(host_vc_, stream_vc_[stream.packed()]);
  }
  return true;
}

bool Checker::on_device_access(StreamKey stream, const void* ptr,
                               std::size_t bytes, bool write,
                               const char* api) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!check_access(ptr, bytes, write, /*host_side=*/false, stream, api)) {
    return false;
  }
  if (AllocState* alloc = find_alloc(ptr);
      alloc != nullptr && alloc->live && alloc->device != stream.device) {
    emit(Rule::kStreamMisuse, api,
         "pointer " + hex(ptr) + " owned by device " +
             std::to_string(alloc->device) + " used on stream " +
             stream_name(stream),
         "allocated at " + alloc->alloc_site, site_label(api));
  }
  if (write) {
    const std::uint64_t seq = bump(stream);
    record_dev_write(ptr, bytes, stream, seq, 0.0, api);
  }
  return true;
}

void Checker::on_launch(StreamKey stream, const std::string& name,
                        double ready_sim) {
  const std::lock_guard<std::mutex> lock(mutex_);
  (void)name;
  (void)ready_sim;
  (void)bump(stream);
}

bool Checker::on_launch_buffers(StreamKey stream,
                                const std::vector<BufferUse>& buffers,
                                const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string what = "kernel " + (name.empty() ? "<kernel>" : name);
  for (const BufferUse& b : buffers) {
    if (!check_access(b.ptr, b.bytes, b.write, /*host_side=*/false, stream,
                      what.c_str())) {
      return false;
    }
    if (AllocState* alloc = find_alloc(b.ptr);
        alloc != nullptr && alloc->live && alloc->device != stream.device) {
      emit(Rule::kStreamMisuse, what.c_str(),
           "pointer " + hex(b.ptr) + " owned by device " +
               std::to_string(alloc->device) + " used on stream " +
               stream_name(stream),
           "allocated at " + alloc->alloc_site, site_label(what.c_str()));
    }
  }
  // One sequence point for the launch; all written buffers share it.
  const std::uint64_t seq = bump(stream);
  for (const BufferUse& b : buffers) {
    if (b.write) record_dev_write(b.ptr, b.bytes, stream, seq, 0.0, what);
  }
  return true;
}

// --- streams ------------------------------------------------------------

void Checker::on_stream_create(StreamKey stream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StreamState s;
  s.create_site = site_label("hipStreamCreate");
  streams_[stream.packed()] = std::move(s);
}

void Checker::on_stream_destroy(StreamKey stream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // hipStreamDestroy drains the stream: a host synchronization edge.
  join_into(host_vc_, stream_vc_[stream.packed()]);
  const auto it = streams_.find(stream.packed());
  if (it != streams_.end()) it->second.live = false;
}

void Checker::on_destroyed_stream_use(const char* api) {
  const std::lock_guard<std::mutex> lock(mutex_);
  emit(Rule::kStreamMisuse, api, "operation on a destroyed stream", "",
       site_label(api));
}

void Checker::on_stream_sync(StreamKey stream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  join_into(host_vc_, stream_vc_[stream.packed()]);
}

void Checker::on_device_sync(int device) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, vc] : stream_vc_) {
    if (static_cast<int>(key >> 32) == device) join_into(host_vc_, vc);
  }
}

// --- events -------------------------------------------------------------

void Checker::on_event_create(const void* event, int device) {
  const std::lock_guard<std::mutex> lock(mutex_);
  EventState e;
  e.device = device;
  e.create_site = site_label("hipEventCreate");
  events_[event] = std::move(e);
}

void Checker::on_event_destroy(const void* event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = events_.find(event);
  if (it != events_.end()) it->second.live = false;
}

void Checker::on_event_record(const void* event, StreamKey stream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& e = events_[event];
  e.recorded = true;
  e.record_stream = stream;
  // The record is itself a marker enqueued on the stream: give it a fresh
  // sequence number so two records on one stream are totally ordered (the
  // elapsed-time inversion check depends on this).
  e.record_seq = bump(stream);
  e.vc = stream_vc_[stream.packed()];
  e.record_site = site_label("hipEventRecord");
}

void Checker::on_event_sync(const void* event, bool recorded) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = events_.find(event);
  if (!recorded || it == events_.end() || !it->second.recorded) {
    emit(Rule::kEventMisuse, "hipEventSynchronize",
         "wait on event " + hex(event) + " that was never recorded",
         it != events_.end() ? "created at " + it->second.create_site : "",
         site_label("hipEventSynchronize"));
    return;
  }
  join_into(host_vc_, it->second.vc);
}

void Checker::on_stream_wait_event(StreamKey stream, const void* event,
                                   bool recorded, const char* api) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = events_.find(event);
  if (!recorded || it == events_.end() || !it->second.recorded) {
    emit(Rule::kEventMisuse, api,
         "stream " + stream_name(stream) + " waits on event " + hex(event) +
             " that was never recorded (the wait is a no-op)",
         it != events_.end() ? "created at " + it->second.create_site : "",
         site_label(api));
    return;
  }
  join_into(stream_vc_[stream.packed()], it->second.vc);
}

void Checker::on_event_elapsed(const void* start, const void* stop,
                               bool start_recorded, bool stop_recorded) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!start_recorded || !stop_recorded) {
    emit(Rule::kEventMisuse, "hipEventElapsedTime",
         "elapsed time queried on a never-recorded event", "",
         site_label("hipEventElapsedTime"));
    return;
  }
  const auto sit = events_.find(start);
  const auto pit = events_.find(stop);
  if (sit == events_.end() || pit == events_.end()) return;
  const EventState& s = sit->second;
  const EventState& p = pit->second;
  if (s.record_stream.packed() == p.record_stream.packed() &&
      s.record_seq > p.record_seq) {
    emit(Rule::kEventMisuse, "hipEventElapsedTime",
         "stop event recorded before start event on " +
             stream_name(s.record_stream),
         "start recorded at " + s.record_site + "; stop recorded at " +
             p.record_site,
         site_label("hipEventElapsedTime"));
  }
}

void Checker::on_destroyed_event_use(const char* api) {
  const std::lock_guard<std::mutex> lock(mutex_);
  emit(Rule::kEventMisuse, api, "operation on a destroyed event", "",
       site_label(api));
}

// --- host annotations ---------------------------------------------------

void Checker::on_host_access(const void* ptr, std::size_t bytes, bool write,
                             const char* site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (site != nullptr) sites_.push_back(site);
  (void)check_access(ptr, bytes, write, /*host_side=*/true, StreamKey{},
                     write ? "host write" : "host read");
  if (site != nullptr) sites_.pop_back();
}

void annotate_host_read(const void* ptr, std::size_t bytes,
                        const char* site) {
  if (!Checker::armed()) return;
  Checker::instance().on_host_access(ptr, bytes, /*write=*/false, site);
}

void annotate_host_write(const void* ptr, std::size_t bytes,
                         const char* site) {
  if (!Checker::armed()) return;
  Checker::instance().on_host_access(ptr, bytes, /*write=*/true, site);
}

}  // namespace exa::check
