#pragma once
/// \file tokenize.hpp
/// Shared lexical layer for the exa-lint passes: comment/string masking,
/// suppression harvesting, identifier search, and brace/paren region
/// tracking (the upgrade that turned the line-local rules of the original
/// single-file lint into region-local ones).
///
/// The masker replaces comments, string literals (including prefixed and
/// raw strings with custom delimiters), and character literals with
/// spaces, preserving newlines so byte offsets and line numbers survive.
/// Known-tricky inputs covered by regression tests: backslash line
/// continuations inside `//` comments, `R"xx(...)xx"` raw strings,
/// `u8R"(...)"`-style prefixes, identifiers that merely *end* in R before
/// a string, character literals holding `"` or `{`, and digit separators
/// (`1'000'000`).

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace exa::check::lint {

[[nodiscard]] bool ident_char(char c);

/// Masked view of one translation unit.
struct MaskedSource {
  std::string code;  ///< source with comments/strings/chars blanked
  std::map<int, std::set<std::string>> suppressions;  ///< line -> rule ids
};

/// Masks `src`; collects `exa-lint: allow(rule, ...)` comments per line.
[[nodiscard]] MaskedSource mask(std::string_view src);

/// 1-based line number of byte `offset` in `code`.
[[nodiscard]] int line_of(std::string_view code, std::size_t offset);

/// Finds `ident` at a word boundary at/after `from`; npos when absent.
[[nodiscard]] std::size_t find_ident(std::string_view code,
                                     std::string_view ident,
                                     std::size_t from = 0);

/// Offset one past the group opening at `open` ('(' or '{' there), or
/// npos when unbalanced.
[[nodiscard]] std::size_t match_group(std::string_view code, std::size_t open,
                                      char open_ch, char close_ch);

/// One lambda body lexically inside a parallel-dispatch call. `begin`/`end`
/// delimit the *body* (inside the braces); `captures_by_ref` is true when
/// the capture list contains `&`; `params` are the lambda parameter names.
struct ParallelRegion {
  std::string entry;        ///< parallel_for / parallel_reduce / ...
  bool is_reduce = false;   ///< entry is a reduction dispatch
  std::size_t begin = 0;
  std::size_t end = 0;
  bool captures_by_ref = false;
  std::vector<std::string> params;
};

/// All lambda bodies inside `pfw::parallel_for`/`parallel_reduce`/
/// `ThreadPool::for_chunks`-family call extents, found by paren + brace
/// tracking over the masked code.
[[nodiscard]] std::vector<ParallelRegion> find_parallel_regions(
    std::string_view code);

}  // namespace exa::check::lint
