/// \file rules.cpp
/// Content rules of the exa-lint pass: the HIP porting-hygiene rules the
/// original single-file lint shipped, plus the region-local determinism
/// rules (DESIGN.md §14). Layering lives in layering.cpp; output formats
/// and the baseline in report.cpp.

#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <utility>

#include "check/lint.hpp"
#include "check/lint2/tokenize.hpp"

namespace exa::check::lint {

namespace {

constexpr std::string_view kUncheckedCall = "unchecked-hip-call";
constexpr std::string_view kDeprecatedCuda = "deprecated-cuda";
constexpr std::string_view kRawAlloc = "raw-device-alloc";
constexpr std::string_view kBlockingInParallel = "blocking-in-parallel";
constexpr std::string_view kNondetInParallel = "nondeterminism-in-parallel";
constexpr std::string_view kLockInParallel = "lock-in-parallel";
constexpr std::string_view kSharedWrite = "shared-write-in-parallel";
constexpr std::string_view kUnorderedInReduction = "unordered-in-reduction";
constexpr std::string_view kFpContract = "fp-contract-in-mathlib";

/// hip* functions whose return value carries no error status (or none at
/// all) — discarding it is fine.
constexpr std::array<std::string_view, 6> kNoErrorReturn = {
    "hipGetErrorString", "hipLastLaunchTiming", "hipHostTimeSec",
    "hipHostBusy",       "hipCheckEnableEXA",   "hipCheckDisableEXA",
};

constexpr std::array<std::string_view, 3> kRawAllocCalls = {
    "hipMalloc", "hipMallocManaged", "hipFree"};

/// Blocking calls (device-synchronizing HIP entry points and buffered file
/// I/O) that serialize a parallel body.
constexpr std::array<std::string_view, 13> kBlockingCalls = {
    "hipMemcpy", "hipDeviceSynchronize", "hipStreamSynchronize",
    "hipEventSynchronize", "fopen", "fclose", "fread", "fwrite",
    "fprintf", "fscanf", "fflush", "getline", "sleep_for"};

/// Blocking stream types — flagged as bare identifiers (constructing one
/// inside a parallel body opens a file).
constexpr std::array<std::string_view, 3> kBlockingTypes = {
    "ofstream", "ifstream", "fstream"};

/// Wall-clock / PRNG entry points that make a parallel body's result
/// depend on scheduling.
constexpr std::array<std::string_view, 7> kNondetCalls = {
    "rand", "srand", "rand_r", "drand48", "time", "clock", "gettimeofday"};

constexpr std::array<std::string_view, 6> kLockIdents = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock", "mutex",
    "try_lock"};

constexpr std::array<std::string_view, 4> kUnorderedIdents = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::array<std::string_view, 6> kFmaCalls = {
    "fma", "fmaf", "fmal", "__builtin_fma", "__builtin_fmaf",
    "__builtin_fmal"};

/// Type-ish tokens that start a local declaration inside a lambda body.
constexpr std::array<std::string_view, 20> kTypeKeywords = {
    "auto",     "double",   "float",    "int",      "unsigned", "signed",
    "long",     "short",    "bool",     "char",     "size_t",   "ptrdiff_t",
    "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
    "uint32_t", "uint64_t"};

[[nodiscard]] std::size_t skip_space(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  return i;
}

/// Previous significant character before `i`, or '\0' at start of input.
[[nodiscard]] char prev_sig(std::string_view code, std::size_t i) {
  while (i > 0) {
    const char c = code[i - 1];
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return c;
    --i;
  }
  return '\0';
}

/// True when the identifier at `pos` is reached through `.` or `->` (a
/// member access — a different function than the global we are matching).
[[nodiscard]] bool member_access(std::string_view code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(code[i - 1])) != 0) {
    --i;
  }
  if (i == 0) return false;
  if (code[i - 1] == '.') return true;
  return i >= 2 && code[i - 1] == '>' && code[i - 2] == '-';
}

class Linter {
 public:
  Linter(std::string_view source, std::string filename,
         const std::vector<std::string>& disabled)
      : masked_(mask(source)),
        code_(masked_.code),
        file_(std::move(filename)),
        disabled_(disabled.begin(), disabled.end()) {}

  [[nodiscard]] Report run() {
    check_unchecked_calls();
    check_deprecated();
    check_raw_alloc();
    check_parallel_regions();
    check_fp_contract();
    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.line < b.line || (a.line == b.line && a.rule < b.rule);
              });
    return std::move(report_);
  }

 private:
  void add(std::string_view rule, std::size_t offset, std::string message) {
    if (disabled_.count(std::string(rule)) != 0) return;
    const int line = line_of(code_, offset);
    if (!seen_.insert({std::string(rule), line}).second) return;
    for (const int l : {line, line - 1}) {
      const auto it = masked_.suppressions.find(l);
      if (it != masked_.suppressions.end() &&
          it->second.count(std::string(rule)) != 0) {
        ++report_.suppressed;
        return;
      }
    }
    report_.findings.push_back(
        Finding{std::string(rule), file_, line, std::move(message)});
  }

  /// An identifier is a *call in statement position* when the previous
  /// significant character ends a statement/block. `(void)` casts, `=`
  /// assignments, wrapping calls, and conditions all leave other
  /// characters behind and count as "checked".
  [[nodiscard]] bool statement_position(std::size_t ident_begin) const {
    std::size_t i = ident_begin;
    while (i > 0) {
      const char c = code_[i - 1];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        --i;
        continue;
      }
      if (c == ':' && i >= 2 && code_[i - 2] == ':') {
        // Qualified name (hip::hipFoo): skip "::" and the qualifier, keep
        // scanning — the statement context is whatever precedes it.
        i -= 2;
        while (i > 0 && ident_char(code_[i - 1])) --i;
        continue;
      }
      return c == ';' || c == '{' || c == '}' || c == ':';
    }
    return true;  // start of file
  }

  void check_unchecked_calls() {
    std::size_t i = 0;
    while (i < code_.size()) {
      if (!ident_char(code_[i]) || (i > 0 && ident_char(code_[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < code_.size() && ident_char(code_[end])) ++end;
      const std::string_view ident = code_.substr(i, end - i);
      const bool hip_like =
          (ident.size() > 3 && ident.substr(0, 3) == "hip" &&
           std::isupper(static_cast<unsigned char>(ident[3])) != 0) ||
          (ident.size() > 4 && ident.substr(0, 4) == "cuda" &&
           std::isupper(static_cast<unsigned char>(ident[4])) != 0);
      if (hip_like &&
          std::find(kNoErrorReturn.begin(), kNoErrorReturn.end(), ident) ==
              kNoErrorReturn.end()) {
        const std::size_t open = skip_space(code_, end);
        if (open < code_.size() && code_[open] == '(' &&
            statement_position(i)) {
          add(kUncheckedCall, i,
              "return value of " + std::string(ident) +
                  " is discarded; check it or cast to (void)");
        }
      }
      i = end;
    }
  }

  void check_deprecated() {
    for (const auto& m : cuda_mappings()) {
      std::size_t pos = 0;
      while ((pos = find_ident(code_, m.cuda, pos)) !=
             std::string_view::npos) {
        add(kDeprecatedCuda, pos,
            "CUDA-era spelling " + m.cuda + "; the HIP port uses " + m.hip +
                (m.deprecated ? " (outdated CUDA syntax)" : ""));
        pos += m.cuda.size();
      }
    }
    std::size_t pos = 0;
    while ((pos = code_.find("<<<", pos)) != std::string_view::npos) {
      add(kDeprecatedCuda, pos,
          "triple-chevron kernel launch; use hipLaunchKernelGGL / "
          "hipLaunchKernelEXA");
      pos += 3;
    }
  }

  void check_raw_alloc() {
    for (const std::string_view call : kRawAllocCalls) {
      std::size_t pos = 0;
      while ((pos = find_ident(code_, call, pos)) != std::string_view::npos) {
        add(kRawAlloc, pos,
            "raw " + std::string(call) +
                "; prefer pfw::create_device_view (pooled, leak-safe)");
        pos += call.size();
      }
    }
  }

  /// Finds `ident` inside [begin, end) of the masked code, in call
  /// position when `call_only`, skipping member accesses.
  void flag_in_region(const ParallelRegion& region, std::string_view ident,
                      bool call_only, std::string_view rule,
                      const std::string& what) {
    std::size_t pos = region.begin;
    while (pos < region.end) {
      pos = find_ident(code_, ident, pos);
      if (pos == std::string_view::npos || pos >= region.end) return;
      const std::size_t after = skip_space(code_, pos + ident.size());
      const bool is_call = after < code_.size() && code_[after] == '(';
      if ((!call_only || is_call) && !member_access(code_, pos)) {
        add(rule, pos,
            what + " inside " + region.entry + " body" +
                (rule == kBlockingInParallel
                     ? "; hoist it out or use the async form"
                     : "; hoist it out of the parallel region"));
      }
      pos += ident.size();
    }
  }

  void check_parallel_regions() {
    for (const ParallelRegion& region : find_parallel_regions(code_)) {
      for (const std::string_view b : kBlockingCalls) {
        flag_in_region(region, b, /*call_only=*/true, kBlockingInParallel,
                       "blocking " + std::string(b));
      }
      for (const std::string_view t : kBlockingTypes) {
        flag_in_region(region, t, /*call_only=*/false, kBlockingInParallel,
                       "blocking file stream " + std::string(t));
      }
      for (const std::string_view c : kNondetCalls) {
        flag_in_region(region, c, /*call_only=*/true, kNondetInParallel,
                       "nondeterministic " + std::string(c) + "()");
      }
      flag_in_region(region, "random_device", /*call_only=*/false,
                     kNondetInParallel, "nondeterministic random_device");
      for (const std::string_view l : kLockIdents) {
        flag_in_region(region, l, /*call_only=*/false, kLockInParallel,
                       "lock acquisition (" + std::string(l) + ")");
      }
      check_lock_method(region);
      if (region.is_reduce) {
        for (const std::string_view u : kUnorderedIdents) {
          flag_in_region(region, u, /*call_only=*/false,
                         kUnorderedInReduction,
                         "unordered container " + std::string(u) +
                             " feeds a reduction (iteration order is "
                             "unspecified)");
        }
      }
      if (region.captures_by_ref) check_shared_writes(region);
    }
  }

  /// `.lock()` / `->lock()` calls — the member spelling the bare-identifier
  /// scan above deliberately skips.
  void check_lock_method(const ParallelRegion& region) {
    std::size_t pos = region.begin;
    while (pos < region.end) {
      pos = find_ident(code_, "lock", pos);
      if (pos == std::string_view::npos || pos >= region.end) return;
      const std::size_t after = skip_space(code_, pos + 4);
      if (member_access(code_, pos) && after < code_.size() &&
          code_[after] == '(') {
        add(kLockInParallel, pos,
            "lock acquisition (.lock()) inside " + region.entry +
                " body; hoist it out of the parallel region");
      }
      pos += 4;
    }
  }

  /// Names declared inside the region body (plus the lambda parameters):
  /// an identifier directly following a type keyword, or inside an
  /// `auto [a, b]` structured binding.
  [[nodiscard]] std::set<std::string, std::less<>> declared_names(
      const ParallelRegion& region) const {
    std::set<std::string, std::less<>> declared(region.params.begin(),
                                                region.params.end());
    std::size_t i = region.begin;
    std::string prev;
    while (i < region.end) {
      const char c = code_[i];
      if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < region.end && ident_char(code_[end])) ++end;
      const std::string tok(code_.substr(i, end - i));
      const bool prev_is_type =
          std::find(kTypeKeywords.begin(), kTypeKeywords.end(), prev) !=
          kTypeKeywords.end();
      if (prev_is_type) declared.insert(tok);
      if (std::find(kTypeKeywords.begin(), kTypeKeywords.end(), tok) !=
          kTypeKeywords.end()) {
        const std::size_t after = skip_space(code_, end);
        if (after < region.end && code_[after] == '[') {
          // Structured binding: auto [a, b] = ...
          std::size_t j = after + 1;
          while (j < region.end && code_[j] != ']') {
            if (ident_char(code_[j])) {
              std::size_t e = j;
              while (e < region.end && ident_char(code_[e])) ++e;
              declared.insert(std::string(code_.substr(j, e - j)));
              j = e;
            } else {
              ++j;
            }
          }
        }
      }
      prev = tok;
      i = end;
    }
    return declared;
  }

  /// Plain writes (`x = `, `x += `, `x++`, `++x`) to names that are not
  /// declared inside the body of a [&] lambda: every worker mutates the
  /// same captured object. Subscripted (`a[i] = `), member (`s.f = `) and
  /// dereferencing (`*p = `) writes are deliberately skipped — those are
  /// either the normal per-index output pattern or too ambiguous for a
  /// tokenizer to judge.
  void check_shared_writes(const ParallelRegion& region) {
    const auto declared = declared_names(region);
    std::size_t i = region.begin;
    while (i < region.end) {
      const char c = code_[i];
      if (!ident_char(c) ||
          std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (i > 0 && ident_char(code_[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < region.end && ident_char(code_[end])) ++end;
      const std::string_view ident = code_.substr(i, end - i);
      i = end;
      if (declared.count(ident) != 0) continue;
      // `T& x = ...`, `T* p = ...`, `SomeType x = ...`: a declaration —
      // the preceding significant character is '&', '*', '>', or the tail
      // of a type name. Only statement-position writes to *previously
      // declared* names survive this filter.
      const char before = prev_sig(code_, /*i=*/end - ident.size());
      if (before == '.' || before == '>' || before == '*' || before == '&' ||
          ident_char(before)) {
        continue;
      }
      const std::size_t after = skip_space(code_, end);
      if (after + 1 >= code_.size()) continue;
      const char a0 = code_[after];
      const char a1 = code_[after + 1];
      // `++st.pc`, `++a[i]`, `++it->second`: the increment lands on the
      // member/element, not on the captured name itself.
      const bool member_or_subscript_after =
          a0 == '.' || a0 == '[' || (a0 == '-' && a1 == '>') ||
          (a0 == ':' && a1 == ':');
      const bool plain_assign = a0 == '=' && a1 != '=';
      const bool compound =
          (a0 == '+' || a0 == '-' || a0 == '*' || a0 == '/' || a0 == '%' ||
           a0 == '&' || a0 == '|' || a0 == '^') &&
          a1 == '=';
      const bool shift_assign =
          (a0 == '<' || a0 == '>') && a1 == a0 &&
          after + 2 < code_.size() && code_[after + 2] == '=';
      const bool post_incr = (a0 == '+' && a1 == '+') ||
                             (a0 == '-' && a1 == '-');
      const std::size_t pre = end - ident.size();
      const bool pre_incr =
          !member_or_subscript_after && pre >= 2 &&
          ((code_[pre - 1] == '+' && code_[pre - 2] == '+') ||
           (code_[pre - 1] == '-' && code_[pre - 2] == '-'));
      if (plain_assign || compound || shift_assign || post_incr || pre_incr) {
        add(kSharedWrite, end - ident.size(),
            "write to captured-by-reference '" + std::string(ident) +
                "' inside " + region.entry +
                " body races across workers; use the chunk-reduction "
                "helpers or a per-index output slot");
      }
    }
  }

  /// FP-determinism contract for src/mathlib (DESIGN.md §13: bitwise-equal
  /// scalar references, -ffp-contract=off): no fused multiply-add and no
  /// contraction/fast-math pragmas.
  void check_fp_contract() {
    if (file_.find("mathlib") == std::string::npos) return;
    for (const std::string_view f : kFmaCalls) {
      std::size_t pos = 0;
      while ((pos = find_ident(code_, f, pos)) != std::string_view::npos) {
        const std::size_t after = skip_space(code_, pos + f.size());
        if (after < code_.size() && code_[after] == '(' &&
            !member_access(code_, pos)) {
          add(kFpContract, pos,
              std::string(f) +
                  "() fuses the multiply-add; src/mathlib is built "
                  "-ffp-contract=off against bitwise scalar references");
        }
        pos += f.size();
      }
    }
    std::size_t pos = 0;
    while ((pos = code_.find("#pragma", pos)) != std::string_view::npos) {
      const std::size_t eol = code_.find('\n', pos);
      const std::string_view line = code_.substr(
          pos, (eol == std::string_view::npos ? code_.size() : eol) - pos);
      const bool contract_on = line.find("FP_CONTRACT") !=
                                   std::string_view::npos &&
                               line.find("ON") != std::string_view::npos;
      const bool fp_fast = line.find("contract(fast") !=
                           std::string_view::npos;
      const bool fast_math = line.find("fast-math") !=
                                 std::string_view::npos ||
                             line.find("Ofast") != std::string_view::npos;
      const bool fc_off = line.find("float_control") !=
                              std::string_view::npos &&
                          line.find("off") != std::string_view::npos;
      if (contract_on || fp_fast || fast_math || fc_off) {
        add(kFpContract, pos,
            "pragma re-enables FP contraction / fast-math; src/mathlib's "
            "bitwise-reference contract forbids it");
      }
      pos = eol == std::string_view::npos ? code_.size() : eol;
    }
  }

  MaskedSource masked_;
  std::string_view code_;
  std::string file_;
  std::set<std::string> disabled_;
  std::set<std::pair<std::string, int>> seen_;
  Report report_;
};

}  // namespace

std::string Finding::format() const {
  return file + ":" + std::to_string(line) + ": exa-lint[" + rule + "] " +
         message;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      std::string(kUncheckedCall),
      std::string(kDeprecatedCuda),
      std::string(kRawAlloc),
      std::string(kBlockingInParallel),
      std::string(kNondetInParallel),
      std::string(kLockInParallel),
      std::string(kSharedWrite),
      std::string(kUnorderedInReduction),
      std::string(kFpContract),
      "layer-upward-include",
      "layer-cycle",
      "layer-private-include"};
  return ids;
}

namespace {
std::vector<CudaMapping>& mutable_cuda_mappings() {
  static std::vector<CudaMapping> mappings;
  return mappings;
}
}  // namespace

void set_cuda_mappings(std::vector<CudaMapping> mappings) {
  mutable_cuda_mappings() = std::move(mappings);
}

const std::vector<CudaMapping>& cuda_mappings() {
  return mutable_cuda_mappings();
}

Report lint_source(std::string_view source, const std::string& filename,
                   const std::vector<std::string>& disabled) {
  return Linter(source, filename, disabled).run();
}

}  // namespace exa::check::lint
