#include "check/lint2/layering.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <tuple>

#include "check/lint2/tokenize.hpp"

namespace exa::check::lint {

namespace {

constexpr std::string_view kUpward = "layer-upward-include";
constexpr std::string_view kCycle = "layer-cycle";
constexpr std::string_view kPrivate = "layer-private-include";

[[nodiscard]] std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

[[nodiscard]] std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

/// First path component of `p` ("net/fabric.hpp" -> "net"); empty when the
/// path has no directory part.
[[nodiscard]] std::string first_component(std::string_view p) {
  const std::size_t slash = p.find('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(p.substr(0, slash));
}

struct Include {
  std::string path;  ///< quoted include target, as written
  int line = 0;
};

/// Quoted includes of one file: located in the *masked* code (so
/// commented-out includes are ignored) with the path read back from the
/// raw source, which masking keeps offset-identical.
[[nodiscard]] std::vector<Include> quoted_includes(std::string_view raw,
                                                   std::string_view masked) {
  std::vector<Include> out;
  std::size_t pos = 0;
  while ((pos = masked.find("#include", pos)) != std::string_view::npos) {
    std::size_t i = pos + 8;
    while (i < raw.size() &&
           (raw[i] == ' ' || raw[i] == '\t')) {
      ++i;
    }
    if (i < raw.size() && raw[i] == '"') {
      const std::size_t close = raw.find('"', i + 1);
      if (close != std::string_view::npos) {
        out.push_back(Include{normalize(std::string(
                                  raw.substr(i + 1, close - i - 1))),
                              line_of(masked, pos)});
      }
    }
    pos += 8;
  }
  return out;
}

}  // namespace

LayerManifest parse_layer_manifest(std::string_view text) {
  LayerManifest m;
  std::istringstream in{std::string(text)};
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "layer") {
      int rank = -1;
      std::string dir;
      fields >> rank >> dir;
      if (fields.fail() || dir.empty() || rank < 0) {
        m.error = "line " + std::to_string(lineno) +
                  ": expected 'layer <rank> <dir>'";
        return m;
      }
      if (m.rank.count(dir) != 0) {
        m.error = "line " + std::to_string(lineno) + ": duplicate layer '" +
                  dir + "'";
        return m;
      }
      m.rank[dir] = rank;
    } else if (directive == "private") {
      std::string pat;
      fields >> pat;
      if (pat.empty()) {
        m.error = "line " + std::to_string(lineno) +
                  ": expected 'private <substring>'";
        return m;
      }
      m.private_patterns.push_back(pat);
    } else {
      m.error = "line " + std::to_string(lineno) + ": unknown directive '" +
                directive + "'";
      return m;
    }
  }
  return m;
}

Report check_layering(const LayerManifest& manifest,
                      const std::vector<SourceFile>& files,
                      const std::string& layer_root) {
  Report report;
  const std::string root = normalize(layer_root);
  // dir -> set of dirs it includes, for the cycle scan.
  std::map<std::string, std::set<std::string>> graph;

  for (const SourceFile& file : files) {
    const std::string path = normalize(file.path);
    std::string own;  // ranked layer of this file; empty = unranked
    const std::string prefix = root.empty() ? root : root + "/";
    if (!prefix.empty() && path.rfind(prefix, 0) == 0) {
      own = first_component(path.substr(prefix.size()));
    }
    if (manifest.rank.count(own) == 0) own.clear();

    const MaskedSource masked = mask(file.content);
    const auto suppressed = [&](std::string_view rule, int line) {
      for (const int l : {line, line - 1}) {
        const auto it = masked.suppressions.find(l);
        if (it != masked.suppressions.end() &&
            it->second.count(std::string(rule)) != 0) {
          return true;
        }
      }
      return false;
    };
    const auto add = [&](std::string_view rule, int line,
                         std::string message) {
      if (suppressed(rule, line)) {
        ++report.suppressed;
        return;
      }
      report.findings.push_back(
          Finding{std::string(rule), file.path, line, std::move(message)});
    };

    for (const Include& inc : quoted_includes(file.content, masked.code)) {
      const std::string target = first_component(inc.path);
      const bool target_ranked =
          !target.empty() && manifest.rank.count(target) != 0;
      if (!own.empty() && target_ranked && target != own) {
        graph[own].insert(target);
        const int own_rank = manifest.rank.at(own);
        const int target_rank = manifest.rank.at(target);
        if (target_rank >= own_rank) {
          add(kUpward, inc.line,
              "layer '" + own + "' (rank " + std::to_string(own_rank) +
                  ") includes \"" + inc.path + "\" from layer '" + target +
                  "' (rank " + std::to_string(target_rank) +
                  "); layers link only downward (docs/ARCHITECTURE.md)");
        }
      }
      for (const std::string& pat : manifest.private_patterns) {
        if (inc.path.find(pat) != std::string::npos &&
            (own.empty() || target != own)) {
          add(kPrivate, inc.line,
              "\"" + inc.path + "\" is a non-public header (manifest "
              "'private " + pat + "'); reach into the layer's public "
              "interface instead");
        }
      }
    }
  }

  // Directory-level cycle scan (iterative DFS with an explicit path so the
  // reported chain reads a -> b -> a). Each cycle is reported once, keyed
  // by its sorted member set.
  std::set<std::set<std::string>> reported;
  for (const auto& [start, _] : graph) {
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    // Depth-first walk over out-edges with per-frame iterators.
    struct Frame {
      std::set<std::string>::const_iterator it, end;
    };
    std::vector<Frame> stack;
    const auto& edges = graph.at(start);
    stack.push_back({edges.begin(), edges.end()});
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.it == top.end) {
        on_path.erase(path.back());
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string next = *top.it++;
      if (on_path.count(next) != 0) {
        // Found a cycle: path from first occurrence of `next` to here.
        const auto first =
            std::find(path.begin(), path.end(), next);
        std::set<std::string> members(first, path.end());
        if (reported.insert(members).second) {
          std::string chain;
          for (auto it = first; it != path.end(); ++it) chain += *it + " -> ";
          chain += next;
          report.findings.push_back(Finding{
              std::string(kCycle), "(layering)", 0,
              "include cycle between layers: " + chain});
        }
        continue;
      }
      if (graph.count(next) == 0) continue;
      path.push_back(next);
      on_path.insert(next);
      const auto& out = graph.at(next);
      stack.push_back({out.begin(), out.end()});
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

}  // namespace exa::check::lint
