#include "check/lint2/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

namespace exa::check::lint {

namespace {

[[nodiscard]] std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

Baseline parse_baseline(std::string_view text) {
  Baseline b;
  std::istringstream in{std::string(text)};
  std::string raw;
  int lineno = 0;
  std::string pending_comment;  // justification from the line(s) above
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty()) {
      pending_comment.clear();
      continue;
    }
    if (line[0] == '#') {
      pending_comment = trim(line.substr(1));
      continue;
    }
    const std::size_t hash = line.find('#');
    const std::string entry_part =
        trim(hash == std::string::npos ? line : line.substr(0, hash));
    const std::string inline_comment =
        hash == std::string::npos ? std::string()
                                  : trim(line.substr(hash + 1));
    std::istringstream fields(entry_part);
    std::string rule;
    std::string path;
    fields >> rule >> path;
    std::string extra;
    if (rule.empty() || path.empty() || (fields >> extra)) {
      b.error = "line " + std::to_string(lineno) +
                ": expected '<rule> <path-suffix>  # justification'";
      return b;
    }
    const std::string why =
        !inline_comment.empty() ? inline_comment : pending_comment;
    if (why.empty()) {
      b.error = "line " + std::to_string(lineno) + ": baseline entry '" +
                rule + " " + path +
                "' has no justification comment (add '# why' inline or on "
                "the line above)";
      return b;
    }
    b.entries.push_back(BaselineEntry{rule, path, why});
    pending_comment.clear();
  }
  return b;
}

int apply_baseline(Report& report, const Baseline& baseline,
                   std::vector<bool>* used) {
  if (used != nullptr) used->assign(baseline.entries.size(), false);
  int matched = 0;
  auto& findings = report.findings;
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       for (std::size_t i = 0;
                            i < baseline.entries.size(); ++i) {
                         const BaselineEntry& e = baseline.entries[i];
                         if (e.rule == f.rule &&
                             ends_with(f.file, e.path_suffix)) {
                           if (used != nullptr) (*used)[i] = true;
                           ++matched;
                           return true;
                         }
                       }
                       return false;
                     }),
      findings.end());
  report.suppressed += matched;
  return matched;
}

std::string to_text(const Report& report) {
  std::string out;
  for (const Finding& f : report.findings) out += f.format() + "\n";
  return out;
}

std::string to_json(const Report& report) {
  std::string out = "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": \"" + json_escape(f.rule) + "\", \"file\": \"" +
           json_escape(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"suppressed\": " + std::to_string(report.suppressed) + "\n}\n";
  return out;
}

std::string to_sarif(const Report& report) {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"exa-lint\",\n"
      "          \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "            {\"id\": \"" + json_escape(id) + "\"}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  first = true;
  for (const Finding& f : report.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"warning\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) +
           "\"}, \"region\": {\"startLine\": " +
           std::to_string(std::max(1, f.line)) + "}}}]}";
  }
  out += first ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

// --- minimal JSON parser (for the SARIF shape validator) -----------------

namespace {

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;
};

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    ok = false;
    return false;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    auto v = std::make_shared<JsonValue>();
    if (!ok || pos >= text.size()) {
      ok = false;
      return v;
    }
    const char c = text[pos];
    if (c == '{') {
      v->kind = JsonValue::Kind::kObject;
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return v;
      }
      while (ok) {
        skip_ws();
        const std::string key = parse_string_body();
        if (!ok || !consume(':')) break;
        v->object[key] = parse_value();
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        consume('}');
        break;
      }
    } else if (c == '[') {
      v->kind = JsonValue::Kind::kArray;
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return v;
      }
      while (ok) {
        v->array.push_back(parse_value());
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        consume(']');
        break;
      }
    } else if (c == '"') {
      v->kind = JsonValue::Kind::kString;
      v->string = parse_string_body();
    } else if (c == 't' || c == 'f') {
      v->kind = JsonValue::Kind::kBool;
      const std::string_view word = c == 't' ? "true" : "false";
      if (text.substr(pos, word.size()) == word) {
        v->boolean = c == 't';
        pos += word.size();
      } else {
        ok = false;
      }
    } else if (c == 'n') {
      if (text.substr(pos, 4) == "null") {
        pos += 4;
      } else {
        ok = false;
      }
    } else {
      v->kind = JsonValue::Kind::kNumber;
      std::size_t end = pos;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
              text[end] == '-' || text[end] == '+' || text[end] == '.' ||
              text[end] == 'e' || text[end] == 'E')) {
        ++end;
      }
      if (end == pos) {
        ok = false;
      } else {
        v->number = std::stod(std::string(text.substr(pos, end - pos)));
        pos = end;
      }
    }
    return v;
  }

  std::string parse_string_body() {
    skip_ws();
    std::string out;
    if (pos >= text.size() || text[pos] != '"') {
      ok = false;
      return out;
    }
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        const char e = text[pos + 1];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': out += '?'; pos += 4; break;  // shape check only
          default: out += e;
        }
        pos += 2;
      } else {
        out += text[pos++];
      }
    }
    if (pos >= text.size()) {
      ok = false;
    } else {
      ++pos;
    }
    return out;
  }
};

[[nodiscard]] const JsonValue* get(const JsonValue& v, const std::string& k) {
  if (v.kind != JsonValue::Kind::kObject) return nullptr;
  const auto it = v.object.find(k);
  return it == v.object.end() ? nullptr : it->second.get();
}

bool fail(std::string* why, const std::string& what) {
  if (why != nullptr) *why = what;
  return false;
}

}  // namespace

bool sarif_has_minimal_shape(std::string_view sarif_text, std::string* why) {
  JsonParser parser{sarif_text};
  const auto root = parser.parse_value();
  parser.skip_ws();
  if (!parser.ok || parser.pos != parser.text.size()) {
    return fail(why, "not well-formed JSON");
  }
  const JsonValue* version = get(*root, "version");
  if (version == nullptr || version->string != "2.1.0") {
    return fail(why, "missing \"version\": \"2.1.0\"");
  }
  const JsonValue* runs = get(*root, "runs");
  if (runs == nullptr || runs->kind != JsonValue::Kind::kArray ||
      runs->array.empty()) {
    return fail(why, "missing non-empty \"runs\" array");
  }
  for (const auto& run : runs->array) {
    const JsonValue* tool = get(*run, "tool");
    const JsonValue* driver = tool != nullptr ? get(*tool, "driver") : nullptr;
    const JsonValue* name = driver != nullptr ? get(*driver, "name") : nullptr;
    if (name == nullptr || name->string.empty()) {
      return fail(why, "run missing tool.driver.name");
    }
    const JsonValue* results = get(*run, "results");
    if (results == nullptr || results->kind != JsonValue::Kind::kArray) {
      return fail(why, "run missing \"results\" array");
    }
    for (const auto& result : results->array) {
      const JsonValue* rule_id = get(*result, "ruleId");
      if (rule_id == nullptr || rule_id->string.empty()) {
        return fail(why, "result missing ruleId");
      }
      const JsonValue* message = get(*result, "message");
      const JsonValue* msg_text =
          message != nullptr ? get(*message, "text") : nullptr;
      if (msg_text == nullptr) {
        return fail(why, "result missing message.text");
      }
      const JsonValue* locations = get(*result, "locations");
      if (locations == nullptr ||
          locations->kind != JsonValue::Kind::kArray ||
          locations->array.empty()) {
        return fail(why, "result missing locations");
      }
      const JsonValue* phys =
          get(*locations->array.front(), "physicalLocation");
      const JsonValue* artifact =
          phys != nullptr ? get(*phys, "artifactLocation") : nullptr;
      const JsonValue* uri =
          artifact != nullptr ? get(*artifact, "uri") : nullptr;
      if (uri == nullptr || uri->string.empty()) {
        return fail(why, "result missing physicalLocation.artifactLocation"
                         ".uri");
      }
      const JsonValue* region = phys != nullptr ? get(*phys, "region")
                                                : nullptr;
      const JsonValue* start =
          region != nullptr ? get(*region, "startLine") : nullptr;
      if (start == nullptr || start->kind != JsonValue::Kind::kNumber ||
          start->number < 1.0) {
        return fail(why, "result missing region.startLine >= 1");
      }
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace exa::check::lint
