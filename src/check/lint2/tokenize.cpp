#include "check/lint2/tokenize.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace exa::check::lint {

namespace {

void collect_suppressions(std::string_view comment, int line,
                          std::map<int, std::set<std::string>>& out) {
  const std::string_view tag = "exa-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string_view::npos) return;
  pos = comment.find("allow", pos + tag.size());
  if (pos == std::string_view::npos) return;
  const std::size_t open = comment.find('(', pos);
  if (open == std::string_view::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string rule;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',') {
      if (!rule.empty()) out[line].insert(rule);
      rule.clear();
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      rule.push_back(c);
    }
  }
}

/// True when the line ending at `nl` ('\n' there) is spliced onto the next
/// one by a backslash (optionally through a '\r').
[[nodiscard]] bool spliced(std::string_view src, std::size_t nl) {
  std::size_t i = nl;
  if (i > 0 && src[i - 1] == '\r') --i;
  return i > 0 && src[i - 1] == '\\';
}

/// Raw-string prefix check: `quote` indexes the '"'; returns the offset of
/// the prefix start (R / uR / UR / LR / u8R) or npos when the '"' does not
/// open a raw string. Guards against identifiers that merely end in R.
[[nodiscard]] std::size_t raw_prefix_start(std::string_view src,
                                           std::size_t quote) {
  if (quote == 0 || src[quote - 1] != 'R') return std::string_view::npos;
  const std::size_t r = quote - 1;
  static constexpr std::array<std::string_view, 3> kOneBefore = {"u", "U",
                                                                 "L"};
  // Bare R"..."
  if (r == 0 || !ident_char(src[r - 1])) return r;
  // u8R"..."
  if (r >= 2 && src.substr(r - 2, 2) == "u8" &&
      (r == 2 || !ident_char(src[r - 3]))) {
    return r - 2;
  }
  // uR / UR / LR
  for (const std::string_view p : kOneBefore) {
    if (src.substr(r - 1, 1) == p && (r == 1 || !ident_char(src[r - 2]))) {
      return r - 1;
    }
  }
  return std::string_view::npos;  // FOOR"..." — not a raw string
}

}  // namespace

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

MaskedSource mask(std::string_view src) {
  MaskedSource m;
  m.code.assign(src.begin(), src.end());
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      // A `//` comment extends across backslash-spliced lines (translation
      // phase 2 happens before comment recognition).
      const std::size_t start = i;
      const int first_line = line;
      while (i < n) {
        if (src[i] == '\n') {
          if (!spliced(src, i)) break;
          ++line;
        }
        ++i;
      }
      collect_suppressions(src.substr(start, i - start), first_line,
                           m.suppressions);
      for (std::size_t j = start; j < i; ++j) {
        if (m.code[j] != '\n') m.code[j] = ' ';
      }
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int first_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      collect_suppressions(src.substr(start, i - start), first_line,
                           m.suppressions);
      for (std::size_t j = start; j < i; ++j) {
        if (m.code[j] != '\n') m.code[j] = ' ';
      }
    } else if (c == '"' &&
               raw_prefix_start(src, i) != std::string_view::npos) {
      // Raw string literal: [prefix]R"delim( ... )delim". The delimiter is
      // at most 16 chars; when no '(' follows within that bound, fall back
      // to treating it as an ordinary string.
      const std::size_t start = raw_prefix_start(src, i);
      std::size_t d = i + 1;
      while (d < n && d - i <= 17 && src[d] != '(') ++d;
      if (d >= n || src[d] != '(') {
        ++i;  // malformed; let the ordinary-string branch pick it up
        continue;
      }
      const std::string closer =
          ")" + std::string(src.substr(i + 1, d - i - 1)) + "\"";
      std::size_t close = src.find(closer, d);
      close = close == std::string_view::npos ? n : close + closer.size();
      for (std::size_t j = start; j < close; ++j) {
        if (m.code[j] == '\n') {
          ++line;
        } else {
          m.code[j] = ' ';
        }
      }
      i = close;
    } else if (c == '\'' && i > 0 && i + 1 < n &&
               std::isdigit(static_cast<unsigned char>(src[i - 1])) != 0 &&
               std::isxdigit(static_cast<unsigned char>(src[i + 1])) != 0) {
      ++i;  // digit separator (1'000'000), not a character literal
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated literal: stay sane
        ++i;
      }
      i = std::min(n, i + 1);
      for (std::size_t j = start; j < i; ++j) {
        if (m.code[j] != '\n') m.code[j] = ' ';
      }
    } else {
      ++i;
    }
  }
  return m;
}

int line_of(std::string_view code, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(code.begin(),
                            code.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

std::size_t find_ident(std::string_view code, std::string_view ident,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = code.find(ident, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string_view::npos;
}

std::size_t match_group(std::string_view code, std::size_t open, char open_ch,
                        char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) ++depth;
    if (code[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

namespace {

constexpr std::array<std::string_view, 6> kParallelEntryPoints = {
    "parallel_for", "parallel_for_chunks", "parallel_reduce",
    "parallel_reduce_chunks", "for_chunks", "for_each"};

[[nodiscard]] std::size_t skip_space(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  return i;
}

/// Parses lambda parameter names out of `(...)` at `open` — the last
/// identifier of each comma-separated declarator at paren depth 1.
void collect_params(std::string_view code, std::size_t open, std::size_t close,
                    std::vector<std::string>& out) {
  int depth = 0;
  std::string last;
  for (std::size_t i = open; i < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '<' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '>' || c == '}') --depth;
    if (depth == 1 && ident_char(c) &&
        std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t end = i;
      while (end < close && ident_char(code[end])) ++end;
      last.assign(code.substr(i, end - i));
      i = end - 1;
    } else if (depth <= 1 && (c == ',' || c == ')')) {
      if (!last.empty()) out.push_back(last);
      last.clear();
    }
  }
}

/// Locates the lambdas inside one call extent. A '[' opens a lambda-intro
/// when the previous significant character cannot end a postfix expression
/// (identifier, ')', ']') — otherwise it is a subscript.
void collect_lambdas(std::string_view code, std::size_t begin,
                     std::size_t end, const std::string& entry,
                     std::vector<ParallelRegion>& out) {
  const bool is_reduce = entry.find("reduce") != std::string::npos;
  std::size_t i = begin;
  while (i < end) {
    if (code[i] != '[') {
      ++i;
      continue;
    }
    std::size_t prev = i;
    while (prev > begin &&
           std::isspace(static_cast<unsigned char>(code[prev - 1])) != 0) {
      --prev;
    }
    const char p = prev > begin ? code[prev - 1] : '(';
    if (ident_char(p) || p == ')' || p == ']') {
      ++i;  // subscript
      continue;
    }
    const std::size_t intro_end = match_group(code, i, '[', ']');
    if (intro_end == std::string_view::npos) break;
    ParallelRegion region;
    region.entry = entry;
    region.is_reduce = is_reduce;
    region.captures_by_ref =
        code.substr(i, intro_end - i).find('&') != std::string_view::npos;
    std::size_t j = skip_space(code, intro_end);
    if (j < end && code[j] == '(') {
      const std::size_t params_end = match_group(code, j, '(', ')');
      if (params_end == std::string_view::npos) break;
      collect_params(code, j, params_end, region.params);
      j = skip_space(code, params_end);
    }
    // Skip specifiers (mutable, noexcept, -> T) up to the body brace.
    while (j < end && code[j] != '{' && code[j] != ';' && code[j] != ',') {
      ++j;
    }
    if (j >= end || code[j] != '{') {
      i = intro_end;
      continue;
    }
    const std::size_t body_end = match_group(code, j, '{', '}');
    if (body_end == std::string_view::npos) break;
    region.begin = j + 1;
    region.end = body_end - 1;
    out.push_back(std::move(region));
    i = body_end;
  }
}

}  // namespace

std::vector<ParallelRegion> find_parallel_regions(std::string_view code) {
  std::vector<ParallelRegion> regions;
  for (const std::string_view entry : kParallelEntryPoints) {
    std::size_t pos = 0;
    while ((pos = find_ident(code, entry, pos)) != std::string_view::npos) {
      const std::size_t open = skip_space(code, pos + entry.size());
      if (open >= code.size() || code[open] != '(') {
        pos += entry.size();
        continue;
      }
      const std::size_t close = match_group(code, open, '(', ')');
      if (close == std::string_view::npos) break;
      collect_lambdas(code, open + 1, close - 1, std::string(entry), regions);
      pos = close;
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const ParallelRegion& a, const ParallelRegion& b) {
              return a.begin < b.begin;
            });
  return regions;
}

}  // namespace exa::check::lint
