#pragma once
/// \file layering.hpp
/// Whole-tree layering conformance: the `#include` graph of src/ checked
/// against the machine-readable layer manifest (docs/layers.manifest, the
/// enforced form of the docs/ARCHITECTURE.md "layers link only downward"
/// rule).
///
/// Manifest grammar (line oriented, `#` comments):
///   layer <rank> <dir>      directory under the layer root, lower rank =
///                           lower layer; a file may include only layers
///                           of strictly lower rank (or its own dir)
///   private <substring>     headers whose include path contains the
///                           substring are non-public: including one from
///                           a different directory is a reach-in
///
/// Findings use the layer-upward-include / layer-cycle /
/// layer-private-include rule ids (see check/lint.hpp). Suppression via
/// `// exa-lint: allow(...)` works as for content rules; machine-wide
/// waivers belong in the baseline file.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "check/lint.hpp"

namespace exa::check::lint {

struct LayerManifest {
  std::map<std::string, int> rank;            ///< dir -> rank
  std::vector<std::string> private_patterns;  ///< non-public header marks
  std::string error;  ///< parse diagnostic; empty on success
};

/// Parses the manifest text; on malformed input `error` is set and the
/// partial tables must not be used.
[[nodiscard]] LayerManifest parse_layer_manifest(std::string_view text);

/// One source file handed to the layering pass.
struct SourceFile {
  std::string path;     ///< as reported in findings
  std::string content;  ///< raw source text
};

/// Checks every `#include "..."` in `files` against the manifest. A file's
/// own layer is the first path component after `layer_root` (files outside
/// the root, e.g. bench/ or tools/, are unranked: they may include any
/// layer but still may not reach into private headers). Also reports any
/// cycle in the directory-level include graph.
[[nodiscard]] Report check_layering(const LayerManifest& manifest,
                                    const std::vector<SourceFile>& files,
                                    const std::string& layer_root);

}  // namespace exa::check::lint
