#pragma once
/// \file report.hpp
/// Reporting infrastructure for exa-lint: text/JSON/SARIF emitters, the
/// checked-in baseline-suppression file, and a minimal-shape validator
/// for the emitted SARIF (what the `lint_sarif_shape` ctest runs).
///
/// Baseline grammar (line oriented):
///   # <free text>                        comment / justification
///   <rule> <path-suffix>  # <why>        one machine-wide suppression
///
/// Every entry MUST carry a justification — either inline after `#` or on
/// a comment line directly above; an unexplained entry is a parse error
/// (exit 2 in the CLI), which is how "zero unexplained baseline
/// suppressions" is enforced mechanically. An entry matches a finding
/// when the rule is equal and the finding's path ends with the entry's
/// path suffix.

#include <string>
#include <string_view>
#include <vector>

#include "check/lint.hpp"

namespace exa::check::lint {

struct BaselineEntry {
  std::string rule;
  std::string path_suffix;
  std::string justification;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
  std::string error;  ///< parse diagnostic; empty on success
};

[[nodiscard]] Baseline parse_baseline(std::string_view text);

/// Removes findings matched by the baseline from `report`; returns how
/// many findings were suppressed (also added to report.suppressed). When
/// `used` is non-null it receives one flag per baseline entry telling
/// whether that entry matched anything in this run.
int apply_baseline(Report& report, const Baseline& baseline,
                   std::vector<bool>* used = nullptr);

/// One "file:line: exa-lint[rule] message" line per finding.
[[nodiscard]] std::string to_text(const Report& report);

/// {"findings": [...], "suppressed": N} — stable key order.
[[nodiscard]] std::string to_json(const Report& report);

/// SARIF 2.1.0 with the minimal required shape: version, one run, a tool
/// driver with the rule catalogue, and one result per finding carrying
/// ruleId, message.text, and a physicalLocation (uri + startLine).
[[nodiscard]] std::string to_sarif(const Report& report);

/// Validates `sarif_text` against the minimal shape to_sarif() promises.
/// On failure returns false and sets `why` (when non-null).
[[nodiscard]] bool sarif_has_minimal_shape(std::string_view sarif_text,
                                           std::string* why = nullptr);

}  // namespace exa::check::lint
