#include "campaign/runner.hpp"

#include <utility>

#include "support/assert.hpp"
#include "svc/metrics.hpp"
#include "svc/server.hpp"

namespace exa::campaign {

CampaignRunner::CampaignRunner(RunnerConfig config)
    : config_(std::move(config)) {}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) {
  const std::vector<svc::Scenario> grid = expand_grid(spec);
  EXA_REQUIRE_MSG(!grid.empty(), "campaign " + spec.name + " has an empty grid");

  svc::MetricProxy proxy;
  proxy.enable_profiles();

  svc::ServerConfig server_config;
  server_config.workers = config_.workers;
  server_config.queue_capacity = grid.size();
  server_config.metrics = &proxy;
  // Paused submission: the whole grid queues first, so dedupe and pop
  // order are a pure function of the spec at any worker count.
  server_config.start_paused = true;
  svc::Server server(server_config);

  svc::SubmitOptions options;
  options.priority = spec.priority;
  std::vector<svc::JobId> ids;
  ids.reserve(grid.size());
  for (const svc::Scenario& scenario : grid) {
    ids.push_back(server.submit(scenario, options));
  }
  server.resume();
  server.drain();

  CampaignResult result;
  result.grid_size = grid.size();
  result.reports.reserve(grid.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const svc::JobStatus status = server.wait(ids[i]);
    EXA_REQUIRE_MSG(status.error.empty(),
                    "campaign job " + grid[i].key() + " failed: " + status.error);
    result.total_sim_time_s += status.report.time_s;
    proxy.record_profile(
        "campaign/" + svc::to_string(grid[i].app) + "/" + grid[i].machine,
        double(grid[i].nodes), status.report.time_s);
    result.reports.push_back(status.report);
  }

  const svc::ServerStats stats = server.stats();
  result.submitted = stats.submitted;
  result.completed = stats.completed;
  result.dedupe_hits = stats.dedupe_hits;
  result.executed = stats.executed;

  if (!config_.jsonl_path.empty()) {
    proxy.export_extrap_jsonl(config_.jsonl_path);
    result.jsonl_path = config_.jsonl_path;
  }
  // Fit only the campaign/ callpaths: the proxy also carries the server's
  // own svc/<app> samples, which mix machines and belong to live ops, not
  // to the campaign's scaling answer.
  for (auto& [callpath, fit] : proxy.fit_live()) {
    if (callpath.rfind("campaign/", 0) == 0) {
      result.fits.emplace(callpath, fit);
    }
  }
  return result;
}

}  // namespace exa::campaign
