#pragma once
/// \file spec.hpp
/// Declarative campaign specifications — the JSON form of "sweep these
/// apps across these machines at these scales".
///
/// The paper's readiness evidence is built from *campaigns*: the same
/// application run across machines, node counts, fabric topologies, fault
/// plans, and I/O presets. `CampaignSpec` is that sweep as data. Every
/// list-valued field is one axis of a cross-product grid; `expand_grid`
/// turns the spec into concrete `svc::Scenario`s in a deterministic
/// order, ready for submission through `svc::Server`.
///
/// The parser is dependency-free: it reads the JSON subset the in-repo
/// `trace::json_parse` understands and layers schema validation on top.
/// Every rejection carries a distinct, actionable message (unknown key,
/// type mismatch, empty sweep axis, duplicated axis value, ...) so a
/// typo'd campaign file fails loudly at load time, never at run time.
/// The full schema is documented in docs/CAMPAIGNS.md.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "svc/scenario.hpp"

namespace exa::campaign {

/// One parsed and schema-validated campaign. Defaulted axes hold their
/// single default value, so `grid_size()` is always the plain product.
struct CampaignSpec {
  std::string name;         ///< campaign identifier (required, non-empty)
  std::string description;  ///< free-form note (optional)

  // Sweep axes. Each vector is one axis of the cross-product grid.
  std::vector<std::string> machines;  ///< arch::machines::by_name keys
  std::vector<svc::App> apps;         ///< workloads to sweep
  std::vector<int> nodes;             ///< node counts (all >= 1)
  std::vector<std::string> io = {"quiet"};        ///< io presets
  std::vector<std::string> topology = {"fattree"};  ///< fabric wirings
  std::vector<bool> congestion = {false};           ///< fabric congestion
  std::vector<double> straggler_fraction = {0.0};   ///< fault plan axis
  std::vector<double> straggler_slowdown = {1.0};   ///< fault plan axis

  /// Per-app parameter axes: app name → param name → values. Each listed
  /// param is a further grid axis for that app's scenarios only.
  std::map<std::string, std::map<std::string, std::vector<double>>> params;

  int priority = 0;  ///< svc::SubmitOptions priority for every job

  /// Number of grid points the spec expands to (before dedupe).
  [[nodiscard]] std::size_t grid_size() const;
};

/// Parses and schema-validates one campaign JSON document. Throws
/// support::Error with a distinct, actionable message for every failure
/// mode: malformed JSON, a missing required key, an unknown key, a type
/// mismatch, an empty sweep axis, or a duplicated axis value (duplicate
/// grid points would only dedupe away — list each value once).
[[nodiscard]] CampaignSpec parse_campaign(const std::string& json_text);

/// `parse_campaign` over the contents of `path`; throws support::Error
/// when the file cannot be read.
[[nodiscard]] CampaignSpec load_campaign(const std::string& path);

/// Expands the spec into scenarios, one per grid point, in deterministic
/// nested-axis order (machines outermost, per-app params innermost).
/// Scenarios are canonicalized before keying: a zero straggler fraction
/// forces the slowdown to 1.0 (no straggler means the slowdown knob is
/// inert), so fault-plan sweeps that cross the zero point collapse onto
/// one canonical key and dedupe inside the server.
[[nodiscard]] std::vector<svc::Scenario> expand_grid(const CampaignSpec& spec);

}  // namespace exa::campaign
