#include "campaign/spec.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "support/assert.hpp"
#include "trace/json.hpp"

namespace exa::campaign {

namespace {

using trace::JsonValue;

[[noreturn]] void fail(const std::string& message) {
  throw support::Error("campaign: " + message);
}

/// Renders a double the way the error messages quote it.
std::string num_text(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

const JsonValue::Array& axis_array(const JsonValue& value,
                                   const std::string& key,
                                   const char* element_kind) {
  if (!value.is_array()) {
    fail("\"" + key + "\" must be an array of " + element_kind);
  }
  const JsonValue::Array& array = value.as_array();
  if (array.empty()) {
    fail("sweep axis \"" + key + "\" is empty — a campaign grid needs at "
         "least one value per axis");
  }
  return array;
}

[[noreturn]] void fail_duplicate(const std::string& key,
                                 const std::string& value) {
  fail("sweep axis \"" + key + "\" repeats value " + value +
       " — duplicate grid points would only dedupe away; list each value "
       "once");
}

std::vector<std::string> string_axis(const JsonValue& value,
                                     const std::string& key) {
  const JsonValue::Array& array = axis_array(value, key, "strings");
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const JsonValue& element : array) {
    if (!element.is_string()) {
      fail("\"" + key + "\" must be an array of strings");
    }
    const std::string& text = element.as_string();
    if (!seen.insert(text).second) fail_duplicate(key, "\"" + text + "\"");
    out.push_back(text);
  }
  return out;
}

std::vector<double> number_axis(const JsonValue& value,
                                const std::string& key) {
  const JsonValue::Array& array = axis_array(value, key, "numbers");
  std::vector<double> out;
  std::set<double> seen;
  for (const JsonValue& element : array) {
    if (!element.is_number()) {
      fail("\"" + key + "\" must be an array of numbers");
    }
    const double number = element.as_number();
    if (!seen.insert(number).second) fail_duplicate(key, num_text(number));
    out.push_back(number);
  }
  return out;
}

std::vector<int> int_axis(const JsonValue& value, const std::string& key) {
  std::vector<int> out;
  for (const double number : number_axis(value, key)) {
    if (number < 1.0 || number != std::floor(number)) {
      fail("\"" + key + "\" values must be positive integers, got " +
           num_text(number));
    }
    out.push_back(static_cast<int>(number));
  }
  return out;
}

std::vector<bool> bool_axis(const JsonValue& value, const std::string& key) {
  const JsonValue::Array& array = axis_array(value, key, "booleans");
  std::vector<bool> out;
  std::set<bool> seen;
  for (const JsonValue& element : array) {
    if (!element.is_bool()) {
      fail("\"" + key + "\" must be an array of booleans");
    }
    const bool flag = element.as_bool();
    if (!seen.insert(flag).second) {
      fail_duplicate(key, flag ? "true" : "false");
    }
    out.push_back(flag);
  }
  return out;
}

void parse_fault(const JsonValue& value, CampaignSpec& spec) {
  if (!value.is_object()) {
    fail("\"fault\" must be an object with straggler_fraction / "
         "straggler_slowdown arrays");
  }
  for (const auto& [key, member] : value.as_object()) {
    if (key == "straggler_fraction") {
      spec.straggler_fraction = number_axis(member, "fault.straggler_fraction");
    } else if (key == "straggler_slowdown") {
      spec.straggler_slowdown = number_axis(member, "fault.straggler_slowdown");
    } else {
      fail("unknown key \"fault." + key + "\" (expected straggler_fraction, "
           "straggler_slowdown)");
    }
  }
}

void parse_params(const JsonValue& value, CampaignSpec& spec) {
  if (!value.is_object()) {
    fail("\"params\" must be an object mapping app name -> { param -> "
         "array of numbers }");
  }
  std::set<std::string> swept_apps;
  for (const svc::App app : spec.apps) swept_apps.insert(svc::to_string(app));
  for (const auto& [app_name, per_app] : value.as_object()) {
    if (swept_apps.count(app_name) == 0) {
      fail("params given for app \"" + app_name + "\" which is not listed "
           "in \"apps\"");
    }
    if (!per_app.is_object()) {
      fail("params." + app_name + " must be an object mapping param -> "
           "array of numbers");
    }
    for (const auto& [param_name, values] : per_app.as_object()) {
      spec.params[app_name][param_name] =
          number_axis(values, "params." + app_name + "." + param_name);
    }
  }
}

}  // namespace

std::size_t CampaignSpec::grid_size() const {
  const std::size_t shared = machines.size() * nodes.size() * io.size() *
                             topology.size() * congestion.size() *
                             straggler_fraction.size() *
                             straggler_slowdown.size();
  std::size_t total = 0;
  for (const svc::App app : apps) {
    std::size_t per_app = 1;
    if (const auto it = params.find(svc::to_string(app)); it != params.end()) {
      for (const auto& [param, values] : it->second) {
        (void)param;
        per_app *= values.size();
      }
    }
    total += shared * per_app;
  }
  return total;
}

CampaignSpec parse_campaign(const std::string& json_text) {
  const JsonValue doc = trace::json_parse(json_text);
  if (!doc.is_object()) fail("top level must be a JSON object");

  CampaignSpec spec;
  bool have_name = false;
  bool have_machines = false;
  bool have_apps = false;
  bool have_nodes = false;
  const JsonValue* params_value = nullptr;

  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      if (!value.is_string() || value.as_string().empty()) {
        fail("\"name\" must be a non-empty string");
      }
      spec.name = value.as_string();
      have_name = true;
    } else if (key == "description") {
      if (!value.is_string()) fail("\"description\" must be a string");
      spec.description = value.as_string();
    } else if (key == "machines") {
      spec.machines = string_axis(value, "machines");
      have_machines = true;
    } else if (key == "apps") {
      for (const std::string& name : string_axis(value, "apps")) {
        try {
          spec.apps.push_back(svc::app_from_string(name));
        } catch (const support::Error&) {
          fail("unknown app \"" + name + "\" in \"apps\"");
        }
      }
      have_apps = true;
    } else if (key == "nodes") {
      spec.nodes = int_axis(value, "nodes");
      have_nodes = true;
    } else if (key == "io") {
      spec.io = string_axis(value, "io");
    } else if (key == "topology") {
      spec.topology = string_axis(value, "topology");
    } else if (key == "congestion") {
      spec.congestion = bool_axis(value, "congestion");
    } else if (key == "fault") {
      parse_fault(value, spec);
    } else if (key == "params") {
      params_value = &value;  // parsed after "apps" is known (map order)
    } else if (key == "priority") {
      if (!value.is_number() ||
          value.as_number() != std::floor(value.as_number())) {
        fail("\"priority\" must be an integer");
      }
      spec.priority = static_cast<int>(value.as_number());
    } else {
      fail("unknown key \"" + key + "\" (expected name, description, "
           "machines, apps, nodes, io, topology, congestion, fault, params, "
           "priority)");
    }
  }

  if (!have_name) fail("missing required key \"name\"");
  if (!have_machines) fail("missing required key \"machines\"");
  if (!have_apps) fail("missing required key \"apps\"");
  if (!have_nodes) fail("missing required key \"nodes\"");
  if (params_value != nullptr) parse_params(*params_value, spec);
  return spec;
}

CampaignSpec load_campaign(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw support::Error("campaign: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_campaign(text.str());
  } catch (const support::Error& err) {
    throw support::Error(std::string(err.what()) + " [" + path + "]");
  }
}

std::vector<svc::Scenario> expand_grid(const CampaignSpec& spec) {
  std::vector<svc::Scenario> grid;
  grid.reserve(spec.grid_size());

  for (const std::string& machine : spec.machines) {
    for (const svc::App app : spec.apps) {
      // The app's param axes in name order (std::map), each one more
      // nested loop realized as an odometer over value indices.
      std::vector<std::pair<std::string, const std::vector<double>*>> axes;
      if (const auto it = spec.params.find(svc::to_string(app));
          it != spec.params.end()) {
        for (const auto& [param, values] : it->second) {
          axes.emplace_back(param, &values);
        }
      }
      std::vector<std::size_t> odometer(axes.size(), 0);
      bool more = true;
      while (more) {
        for (const int nodes : spec.nodes) {
          for (const std::string& io : spec.io) {
            for (const std::string& topology : spec.topology) {
              for (const bool congestion : spec.congestion) {
                for (const double fraction : spec.straggler_fraction) {
                  for (const double slowdown : spec.straggler_slowdown) {
                    svc::Scenario s;
                    s.app = app;
                    s.machine = machine;
                    s.nodes = nodes;
                    s.io_preset = io;
                    s.topology = topology;
                    s.congestion = congestion;
                    s.straggler_fraction = fraction;
                    // Canonical form: no stragglers => the slowdown knob
                    // is inert, so pin it. Fault sweeps crossing zero
                    // then dedupe inside the server.
                    s.straggler_slowdown = fraction == 0.0 ? 1.0 : slowdown;
                    for (std::size_t i = 0; i < axes.size(); ++i) {
                      s.params[axes[i].first] = (*axes[i].second)[odometer[i]];
                    }
                    grid.push_back(std::move(s));
                  }
                }
              }
            }
          }
        }
        // Advance the param odometer (rightmost axis fastest); the sweep
        // for this (machine, app) ends when every axis wraps.
        more = false;
        for (std::size_t axis = axes.size(); axis > 0;) {
          --axis;
          if (++odometer[axis] < axes[axis].second->size()) {
            more = true;
            break;
          }
          odometer[axis] = 0;
        }
      }
    }
  }
  return grid;
}

}  // namespace exa::campaign
