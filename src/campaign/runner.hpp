#pragma once
/// \file runner.hpp
/// Campaign execution: grid → svc::Server → Extra-P fits.
///
/// `CampaignRunner` is the thin orchestration layer the tentpole of this
/// subsystem promises: it expands a `CampaignSpec` into scenarios,
/// submits every grid point through a private `svc::Server` (priority
/// ordering, pop-time content-keyed dedupe, and the conservation ledger
/// come from the server for free), records one profile sample per grid
/// point into a `svc::MetricProxy` at callpath `campaign/<app>/<machine>`
/// with parameter p = nodes, exports the campaign's Extra-P JSONL, and
/// runs the in-repo fitter so every campaign ends with fitted scaling
/// models t(p) = a + b·p^c·(log2 p)^d per (app, machine).
///
/// Everything observable — reports, ledger counts, fits — is a pure
/// function of the spec at any worker count, because `svc::run` is pure
/// and dedupe is decided deterministically at pop time.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "svc/scenario.hpp"
#include "trace/scaling_model.hpp"

namespace exa::campaign {

/// Runner knobs.
struct RunnerConfig {
  /// Server worker threads; 0 resolves like the global pool (EXA_THREADS
  /// when set, else hardware concurrency).
  std::size_t workers = 0;
  /// Extra-P JSONL output path; empty suppresses the file (fits are
  /// still computed from the in-memory samples).
  std::string jsonl_path;
};

/// What one campaign produced. Counts mirror svc::ServerStats; reports
/// are in grid order (one per grid point, dedupe hits included — equal
/// keys carry bitwise-equal reports).
struct CampaignResult {
  std::size_t grid_size = 0;      ///< scenarios expanded from the spec
  std::uint64_t submitted = 0;    ///< jobs accepted by the server
  std::uint64_t completed = 0;    ///< jobs that reached a report
  std::uint64_t dedupe_hits = 0;  ///< jobs served by another execution
  std::uint64_t executed = 0;     ///< distinct svc::run invocations
  std::vector<svc::Report> reports;  ///< per grid point, grid order
  /// Fitted scaling models keyed "campaign/<app>/<machine>" (node-count
  /// sweeps with >= 2 distinct scales; others are skipped by the fitter).
  std::map<std::string, trace::ScalingFit> fits;
  double total_sim_time_s = 0.0;  ///< sum of report.time_s over the grid
  std::string jsonl_path;         ///< where the Extra-P JSONL landed ("" = none)
};

/// Orchestrates one campaign end to end (see the file comment).
class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerConfig config = {});

  /// Expands, submits, drains, fits. Throws support::Error when any grid
  /// point fails submit-time validation (an invalid campaign must fail
  /// loudly, not silently shrink its grid).
  [[nodiscard]] CampaignResult run(const CampaignSpec& spec);

 private:
  RunnerConfig config_;
};

}  // namespace exa::campaign
