#include "mathlib/dense.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::ml {

namespace {

constexpr std::size_t kBlock = 64;  // complex-path cache tile edge
// Real-path microkernel shape: MR rows of C against an NR-wide packed B
// panel, KC-deep depth blocks (NR spans two cache lines of doubles, so
// the inner loop is a clean simd strip; KC keeps the panel in L2).
constexpr std::size_t kMicroRows = 4;    // MR
constexpr std::size_t kMicroCols = 32;   // NR
constexpr std::size_t kDepthBlock = 256; // KC

/// Full MR x NR register tile: one add per depth step per C element, depth
/// ascending — the exact addition sequence of the historical
/// `crow[j] += av * brow[j]` loop, so results are bitwise unchanged. The
/// branchless body (no data-dependent `av == 0` skip) is what lets the
/// strip vectorize and makes kernel cost input-independent.
template <typename T>
void microkernel(const T* arow, std::size_t lda, const T* panel,
                 std::size_t kb, T alpha, T* acc) {
  for (std::size_t p = 0; p < kb; ++p) {
    const T* bp = &panel[p * kMicroCols];
    T av[kMicroRows];
    for (std::size_t r = 0; r < kMicroRows; ++r) {
      av[r] = alpha * arow[r * lda + p];
    }
#pragma omp simd
    for (std::size_t j = 0; j < kMicroCols; ++j) {
      for (std::size_t r = 0; r < kMicroRows; ++r) {
        acc[r * kMicroCols + j] += av[r] * bp[j];
      }
    }
  }
}

/// Packed-panel path for float/double: B is repacked per depth block into
/// zero-padded NR-wide panels (unit-stride, no edge branches in the hot
/// loop); C row tiles are distributed across the pool. Rows of C are
/// written by exactly one task and accumulate depth-ascending, so the
/// result is bitwise identical at any EXA_THREADS.
template <typename T>
void gemm_panels(std::span<const T> a, std::span<const T> b, std::span<T> c,
                 std::size_t m, std::size_t n, std::size_t k, T alpha) {
  auto& pool = support::ThreadPool::global();
  const std::size_t jt_count = (n + kMicroCols - 1) / kMicroCols;
  const std::size_t row_tiles = (m + kMicroRows - 1) / kMicroRows;
  std::vector<T> pack(jt_count * kDepthBlock * kMicroCols);
  for (std::size_t kk = 0; kk < k; kk += kDepthBlock) {
    const std::size_t kb = std::min(k - kk, kDepthBlock);
    pool.for_each(0, jt_count, [&](std::size_t jt) {
      const std::size_t j0 = jt * kMicroCols;
      const std::size_t jw = std::min(kMicroCols, n - j0);
      T* dst = &pack[jt * kb * kMicroCols];
      for (std::size_t p = 0; p < kb; ++p) {
        const T* src = &b[(kk + p) * n + j0];
        for (std::size_t j = 0; j < jw; ++j) dst[p * kMicroCols + j] = src[j];
        for (std::size_t j = jw; j < kMicroCols; ++j) {
          dst[p * kMicroCols + j] = T{};
        }
      }
    });
    pool.for_each(0, row_tiles, [&](std::size_t it) {
      const std::size_t i0 = it * kMicroRows;
      const std::size_t ib = std::min(kMicroRows, m - i0);
      for (std::size_t jt = 0; jt < jt_count; ++jt) {
        const std::size_t j0 = jt * kMicroCols;
        const std::size_t jw = std::min(kMicroCols, n - j0);
        const T* panel = &pack[jt * kb * kMicroCols];
        T acc[kMicroRows * kMicroCols];
        for (std::size_t r = 0; r < ib; ++r) {
          for (std::size_t j = 0; j < jw; ++j) {
            acc[r * kMicroCols + j] = c[(i0 + r) * n + j0 + j];
          }
          for (std::size_t j = jw; j < kMicroCols; ++j) {
            acc[r * kMicroCols + j] = T{};
          }
        }
        if (ib == kMicroRows) {
          microkernel(&a[i0 * k + kk], k, panel, kb, alpha, acc);
        } else {
          // Ragged bottom rows: same panel, same depth-ascending adds.
          for (std::size_t p = 0; p < kb; ++p) {
            const T* bp = &panel[p * kMicroCols];
            for (std::size_t r = 0; r < ib; ++r) {
              const T av = alpha * a[(i0 + r) * k + kk + p];
              T* accr = &acc[r * kMicroCols];
#pragma omp simd
              for (std::size_t j = 0; j < kMicroCols; ++j) {
                accr[j] += av * bp[j];
              }
            }
          }
        }
        for (std::size_t r = 0; r < ib; ++r) {
          for (std::size_t j = 0; j < jw; ++j) {
            c[(i0 + r) * n + j0 + j] = acc[r * kMicroCols + j];
          }
        }
      }
    });
  }
}

}  // namespace

template <typename T>
void gemm(std::span<const T> a, std::span<const T> b, std::span<T> c,
          std::size_t m, std::size_t n, std::size_t k, T alpha, T beta) {
  EXA_REQUIRE(a.size() >= m * k);
  EXA_REQUIRE(b.size() >= k * n);
  EXA_REQUIRE(c.size() >= m * n);

  // Scale C by beta first.
  if (beta == T{}) {
    std::fill(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(m * n), T{});
  } else if (!(beta == T{1})) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == T{} || m == 0 || n == 0 || k == 0) return;

  if constexpr (std::is_floating_point_v<T>) {
    gemm_panels(a, b, c, m, n, k, alpha);
  } else {
    // Complex path: cache-blocked, branchless (the data-dependent
    // `av == 0` skip blocked vectorization and made cost input-dependent).
    // Row blocks are owned by one task each, and every C element
    // accumulates depth-ascending — bitwise stable across pool sizes.
    const std::size_t row_blocks = (m + kBlock - 1) / kBlock;
    support::ThreadPool::global().for_each(
        0, row_blocks, [&](std::size_t rb) {
          const std::size_t i0 = rb * kBlock;
          const std::size_t i1 = std::min(m, i0 + kBlock);
          for (std::size_t kk = 0; kk < k; kk += kBlock) {
            const std::size_t k1 = std::min(k, kk + kBlock);
            for (std::size_t i = i0; i < i1; ++i) {
              for (std::size_t p = kk; p < k1; ++p) {
                const T av = alpha * a[i * k + p];
                const T* brow = &b[p * n];
                T* crow = &c[i * n];
                for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
              }
            }
          }
        });
  }
}

template void gemm<float>(std::span<const float>, std::span<const float>,
                          std::span<float>, std::size_t, std::size_t,
                          std::size_t, float, float);
template void gemm<double>(std::span<const double>, std::span<const double>,
                           std::span<double>, std::size_t, std::size_t,
                           std::size_t, double, double);
template void gemm<zcomplex>(std::span<const zcomplex>,
                             std::span<const zcomplex>, std::span<zcomplex>,
                             std::size_t, std::size_t, std::size_t, zcomplex,
                             zcomplex);

void dgemm(std::span<const double> a, std::span<const double> b,
           std::span<double> c, std::size_t m, std::size_t n, std::size_t k,
           double alpha, double beta) {
  gemm<double>(a, b, c, m, n, k, alpha, beta);
}

void sgemm(std::span<const float> a, std::span<const float> b,
           std::span<float> c, std::size_t m, std::size_t n, std::size_t k,
           float alpha, float beta) {
  gemm<float>(a, b, c, m, n, k, alpha, beta);
}

void zgemm(std::span<const zcomplex> a, std::span<const zcomplex> b,
           std::span<zcomplex> c, std::size_t m, std::size_t n, std::size_t k,
           zcomplex alpha, zcomplex beta) {
  gemm<zcomplex>(a, b, c, m, n, k, alpha, beta);
}

float round_to_f16(float x) {
  // Clamp to the binary16 range, then round the significand to 10 bits
  // (round-to-nearest-even) by the classic float-bit trick.
  if (!std::isfinite(x)) return x;
  constexpr float kMax = 65504.0f;
  x = std::clamp(x, -kMax, kMax);
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  // Keep 10 significand bits: add half of the dropped ULP, tie to even.
  const std::uint32_t mask = (1u << 13) - 1u;
  const std::uint32_t half = 1u << 12;
  const std::uint32_t rem = bits & mask;
  bits &= ~mask;
  if (rem > half || (rem == half && (bits & (1u << 13)))) bits += (1u << 13);
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  // Flush subnormals (magnitude below 2^-14) to zero, as GPU units do.
  if (std::fabs(out) < 6.103515625e-5f && out != 0.0f) out = 0.0f;
  return out;
}

void hgemm_f32acc(std::span<const float> a, std::span<const float> b,
                  std::span<float> c, std::size_t m, std::size_t n,
                  std::size_t k) {
  EXA_REQUIRE(a.size() >= m * k);
  EXA_REQUIRE(b.size() >= k * n);
  EXA_REQUIRE(c.size() >= m * n);
  // Quantize inputs once (this is what feeding FP16 tensor cores does).
  std::vector<float> aq(m * k);
  std::vector<float> bq(k * n);
  for (std::size_t i = 0; i < m * k; ++i) aq[i] = round_to_f16(a[i]);
  for (std::size_t i = 0; i < k * n; ++i) bq[i] = round_to_f16(b[i]);
  gemm<float>(aq, bq, c, m, n, k, 1.0f, 0.0f);
}

template <typename T>
double rel_error(std::span<const T> x, std::span<const T> y) {
  EXA_REQUIRE(x.size() == y.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto d = x[i] - y[i];
    num += std::norm(std::complex<double>(d));
    den += std::norm(std::complex<double>(y[i]));
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

template double rel_error<float>(std::span<const float>, std::span<const float>);
template double rel_error<double>(std::span<const double>,
                                  std::span<const double>);
template double rel_error<zcomplex>(std::span<const zcomplex>,
                                    std::span<const zcomplex>);

}  // namespace exa::ml
