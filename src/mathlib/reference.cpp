#include "mathlib/reference.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "mathlib/fft.hpp"
#include "support/assert.hpp"

namespace exa::ml {

template <typename T>
void gemm_reference(std::span<const T> a, std::span<const T> b,
                    std::span<T> c, std::size_t m, std::size_t n,
                    std::size_t k, T alpha, T beta) {
  EXA_REQUIRE(a.size() >= m * k);
  EXA_REQUIRE(b.size() >= k * n);
  EXA_REQUIRE(c.size() >= m * n);
  if (beta == T{}) {
    std::fill(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(m * n), T{});
  } else if (!(beta == T{1})) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == T{} || m == 0 || n == 0 || k == 0) return;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const T av = alpha * a[i * k + p];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += av * b[p * n + j];
      }
    }
  }
}

template void gemm_reference<float>(std::span<const float>,
                                    std::span<const float>, std::span<float>,
                                    std::size_t, std::size_t, std::size_t,
                                    float, float);
template void gemm_reference<double>(std::span<const double>,
                                     std::span<const double>,
                                     std::span<double>, std::size_t,
                                     std::size_t, std::size_t, double, double);
template void gemm_reference<zcomplex>(std::span<const zcomplex>,
                                       std::span<const zcomplex>,
                                       std::span<zcomplex>, std::size_t,
                                       std::size_t, std::size_t, zcomplex,
                                       zcomplex);

void fft_reference(std::span<zcomplex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  EXA_REQUIRE_MSG(is_pow2(n), "FFT length must be a power of two");
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const std::vector<zcomplex>& tw = fft_twiddles(n);
  const double tsign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const double wr = tw[j * stride].real();
        const double wi = -tsign * tw[j * stride].imag();
        const zcomplex x = data[i + j + half];
        const zcomplex v(x.real() * wr - x.imag() * wi,
                         x.real() * wi + x.imag() * wr);
        const zcomplex u = data[i + j];
        data[i + j] = u + v;
        data[i + j + half] = u - v;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

int getrf_reference(std::span<double> a, std::size_t n,
                    std::span<int> pivots) {
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(pivots.size() >= n);
  int info = 0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a[r * n + col]);
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    pivots[col] = static_cast<int>(piv);
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[piv * n + j]);
      }
    }
    const double d = a[col * n + col];
    if (d == 0.0) {
      if (info == 0) info = static_cast<int>(col) + 1;
      continue;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      a[r * n + col] /= d;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double l = a[r * n + col];
      for (std::size_t j = col + 1; j < n; ++j) {
        a[r * n + j] -= l * a[col * n + j];
      }
    }
  }
  return info;
}

}  // namespace exa::ml
