#pragma once
/// \file device_blas.hpp
/// Simulated vendor math libraries (rocBLAS/rocSOLVER/rocFFT/rocPRIM and
/// their cu* counterparts): cost profiles with *problem-size-dependent*
/// efficiency tables, launched through the HIP runtime.
///
/// §4's library-tuning story is modeled explicitly: "libraries often
/// contain a large collection of problem-size-dependent implementations"
/// and application teams that provided target problem sizes early got
/// routines tuned for exactly those shapes. TuningRegistry records such
/// sizes; registered shapes reach top-tier efficiency.

#include <cstddef>
#include <set>
#include <string>
#include <tuple>

#include "arch/gpu_arch.hpp"
#include "hip/hip_runtime.hpp"
#include "sim/exec_model.hpp"

namespace exa::ml {

/// Problem sizes application teams communicated to the vendor early (§4).
class TuningRegistry {
 public:
  static TuningRegistry& instance();

  void register_gemm(const std::string& app, std::size_t m, std::size_t n,
                     std::size_t k, arch::DType dtype);
  [[nodiscard]] bool is_tuned(std::size_t m, std::size_t n, std::size_t k,
                              arch::DType dtype) const;
  [[nodiscard]] std::size_t size() const { return tuned_.size(); }
  void clear();

 private:
  TuningRegistry() = default;
  using Key = std::tuple<std::size_t, std::size_t, std::size_t, arch::DType>;
  std::set<Key> tuned_;
};

// --- efficiency tables -------------------------------------------------------

/// Fraction of dtype peak a vendor GEMM reaches for the given shape.
[[nodiscard]] double gemm_efficiency(const arch::GpuArch& gpu,
                                     arch::DType dtype, bool matrix_cores,
                                     std::size_t m, std::size_t n,
                                     std::size_t k);
/// LU factorization efficiency relative to GEMM peak (panel factorization
/// limits small problems).
[[nodiscard]] double getrf_efficiency(const arch::GpuArch& gpu, std::size_t n);
/// FFTs are memory bound; fraction of HBM bandwidth achieved.
[[nodiscard]] double fft_memory_efficiency(const arch::GpuArch& gpu,
                                           std::size_t n);

// --- profile builders (timing-only; usable for any scale) -------------------

[[nodiscard]] sim::KernelProfile gemm_profile(const arch::GpuArch& gpu,
                                              arch::DType dtype,
                                              bool matrix_cores, std::size_t m,
                                              std::size_t n, std::size_t k);
[[nodiscard]] sim::KernelProfile getrf_profile(const arch::GpuArch& gpu,
                                               arch::DType dtype,
                                               std::size_t n);
[[nodiscard]] sim::KernelProfile getrs_profile(const arch::GpuArch& gpu,
                                               arch::DType dtype, std::size_t n,
                                               std::size_t nrhs);
[[nodiscard]] sim::KernelProfile fft_profile(const arch::GpuArch& gpu,
                                             std::size_t n, std::size_t batch);
[[nodiscard]] sim::KernelProfile sort_profile(const arch::GpuArch& gpu,
                                              std::size_t count,
                                              std::size_t elem_bytes);
[[nodiscard]] sim::KernelProfile reduce_profile(const arch::GpuArch& gpu,
                                                std::size_t count,
                                                std::size_t elem_bytes);
/// Sparse matrix-vector product y = A x (CSR): nnz multiplies+adds,
/// bandwidth-dominated. `vectors` models the fused dual-RHS SpMV of the
/// LAMMPS QEq optimization (§3.10.2): the matrix is read once for all
/// right-hand sides.
[[nodiscard]] sim::KernelProfile spmv_profile(const arch::GpuArch& gpu,
                                              std::size_t rows,
                                              std::size_t nnz, int vectors);

// --- launch helpers (charge time on the current HIP device) ------------------

sim::KernelTiming launch_gemm(arch::DType dtype, bool matrix_cores,
                              std::size_t m, std::size_t n, std::size_t k,
                              hip::hipStream_t stream = nullptr);
sim::KernelTiming launch_getrf(arch::DType dtype, std::size_t n,
                               hip::hipStream_t stream = nullptr);
sim::KernelTiming launch_getrs(arch::DType dtype, std::size_t n,
                               std::size_t nrhs,
                               hip::hipStream_t stream = nullptr);
sim::KernelTiming launch_fft(std::size_t n, std::size_t batch,
                             hip::hipStream_t stream = nullptr);

}  // namespace exa::ml
