#include "mathlib/fft.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::ml {

namespace {

std::mutex twiddle_mutex;
/// Process-wide per-size tables. Entries are shared_ptrs so a caller's
/// reference stays valid while other threads extend the cache.
std::vector<std::pair<std::size_t,
                      std::shared_ptr<const std::vector<zcomplex>>>>
    twiddle_cache;

}  // namespace

const std::vector<zcomplex>& fft_twiddles(std::size_t n) {
  EXA_REQUIRE_MSG(is_pow2(n), "FFT length must be a power of two");
  // fft() is called from pool workers (fft_batch/fft3d), so the lookup is
  // mutex-guarded with a per-thread memo of the last table used — the
  // steady state (batches of one size) never touches the lock.
  thread_local std::size_t memo_n = 0;
  thread_local std::shared_ptr<const std::vector<zcomplex>> memo;
  if (memo_n == n && memo) return *memo;

  std::shared_ptr<const std::vector<zcomplex>> entry;
  {
    const std::lock_guard<std::mutex> lock(twiddle_mutex);
    for (const auto& e : twiddle_cache) {
      if (e.first == n) {
        entry = e.second;
        break;
      }
    }
    if (!entry) {
      auto table = std::make_shared<std::vector<zcomplex>>(n / 2);
      for (std::size_t j = 0; j < n / 2; ++j) {
        const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(n);
        (*table)[j] = zcomplex(std::cos(ang), std::sin(ang));
      }
      twiddle_cache.emplace_back(n, table);
      entry = std::move(table);
    }
  }
  memo = std::move(entry);
  memo_n = n;
  return *memo;
}

void fft(std::span<zcomplex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  EXA_REQUIRE_MSG(is_pow2(n), "FFT length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies on the raw (re, im) pairs: the cached table replaces the
  // per-butterfly `w *= wlen` recurrence (two sin/cos per level total,
  // amortized to zero), and splitting the complex ops into real lanes
  // lets the inner loop vectorize. std::complex<double> is
  // layout-compatible with double[2] by [complex.numbers.general].
  const std::vector<zcomplex>& tw = fft_twiddles(n);
  auto* d = reinterpret_cast<double*>(data.data());
  const auto* t = reinterpret_cast<const double*>(tw.data());
  const double tsign = inverse ? 1.0 : -1.0;  // table holds the forward sign
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      double* lo = d + 2 * i;
      double* hi = d + 2 * (i + half);
#pragma omp simd
      for (std::size_t j = 0; j < half; ++j) {
        const double wr = t[2 * j * stride];
        const double wi = -tsign * t[2 * j * stride + 1];
        const double xr = hi[2 * j];
        const double xi = hi[2 * j + 1];
        // Same formula as std::complex operator* (no FMA contraction in
        // this translation unit), so the scalar reference path is bitwise
        // identical.
        const double vr = xr * wr - xi * wi;
        const double vi = xr * wi + xi * wr;
        const double ur = lo[2 * j];
        const double ui = lo[2 * j + 1];
        lo[2 * j] = ur + vr;
        lo[2 * j + 1] = ui + vi;
        hi[2 * j] = ur - vr;
        hi[2 * j + 1] = ui - vi;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

void fft_batch(std::span<zcomplex> data, std::size_t n, std::size_t count,
               bool inverse) {
  EXA_REQUIRE(data.size() >= n * count);
  support::ThreadPool::global().for_each(0, count, [&](std::size_t line) {
    fft(data.subspan(line * n, n), inverse);
  });
}

void fft3d(std::span<zcomplex> data, std::size_t nx, std::size_t ny,
           std::size_t nz, bool inverse) {
  EXA_REQUIRE(data.size() >= nx * ny * nz);
  EXA_REQUIRE(is_pow2(nx) && is_pow2(ny) && is_pow2(nz));

  // Along z (contiguous lines).
  fft_batch(data, nz, nx * ny, inverse);

  // Along y (stride nz within each x-plane). Chunked so the gather/scatter
  // line buffer is allocated once per chunk, not once per line.
  support::ThreadPool::global().for_chunks(
      0, nx * nz, [&](std::size_t lo, std::size_t hi) {
        std::vector<zcomplex> line(ny);
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t x = idx / nz;
          const std::size_t z = idx % nz;
          for (std::size_t y = 0; y < ny; ++y) {
            line[y] = data[(x * ny + y) * nz + z];
          }
          fft(line, inverse);
          for (std::size_t y = 0; y < ny; ++y) {
            data[(x * ny + y) * nz + z] = line[y];
          }
        }
      });

  // Along x (stride ny*nz).
  support::ThreadPool::global().for_chunks(
      0, ny * nz, [&](std::size_t lo, std::size_t hi) {
        std::vector<zcomplex> line(nx);
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t y = idx / nz;
          const std::size_t z = idx % nz;
          for (std::size_t x = 0; x < nx; ++x) {
            line[x] = data[(x * ny + y) * nz + z];
          }
          fft(line, inverse);
          for (std::size_t x = 0; x < nx; ++x) {
            data[(x * ny + y) * nz + z] = line[x];
          }
        }
      });
}

double fft_flops(std::size_t n) {
  if (n <= 1) return 0.0;
  const double dn = static_cast<double>(n);
  return 5.0 * dn * std::log2(dn);
}

}  // namespace exa::ml
