#include "mathlib/fft.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::ml {

void fft(std::span<zcomplex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  EXA_REQUIRE_MSG(is_pow2(n), "FFT length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const zcomplex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      zcomplex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const zcomplex u = data[i + j];
        const zcomplex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

void fft_batch(std::span<zcomplex> data, std::size_t n, std::size_t count,
               bool inverse) {
  EXA_REQUIRE(data.size() >= n * count);
  support::ThreadPool::global().for_each(0, count, [&](std::size_t line) {
    fft(data.subspan(line * n, n), inverse);
  });
}

void fft3d(std::span<zcomplex> data, std::size_t nx, std::size_t ny,
           std::size_t nz, bool inverse) {
  EXA_REQUIRE(data.size() >= nx * ny * nz);
  EXA_REQUIRE(is_pow2(nx) && is_pow2(ny) && is_pow2(nz));

  // Along z (contiguous lines).
  fft_batch(data, nz, nx * ny, inverse);

  // Along y (stride nz within each x-plane). Chunked so the gather/scatter
  // line buffer is allocated once per chunk, not once per line.
  support::ThreadPool::global().for_chunks(
      0, nx * nz, [&](std::size_t lo, std::size_t hi) {
        std::vector<zcomplex> line(ny);
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t x = idx / nz;
          const std::size_t z = idx % nz;
          for (std::size_t y = 0; y < ny; ++y) {
            line[y] = data[(x * ny + y) * nz + z];
          }
          fft(line, inverse);
          for (std::size_t y = 0; y < ny; ++y) {
            data[(x * ny + y) * nz + z] = line[y];
          }
        }
      });

  // Along x (stride ny*nz).
  support::ThreadPool::global().for_chunks(
      0, ny * nz, [&](std::size_t lo, std::size_t hi) {
        std::vector<zcomplex> line(nx);
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t y = idx / nz;
          const std::size_t z = idx % nz;
          for (std::size_t x = 0; x < nx; ++x) {
            line[x] = data[(x * ny + y) * nz + z];
          }
          fft(line, inverse);
          for (std::size_t x = 0; x < nx; ++x) {
            data[(x * ny + y) * nz + z] = line[x];
          }
        }
      });
}

double fft_flops(std::size_t n) {
  if (n <= 1) return 0.0;
  const double dn = static_cast<double>(n);
  return 5.0 * dn * std::log2(dn);
}

}  // namespace exa::ml
