#pragma once
/// \file dense.hpp
/// Real host implementations of the dense linear algebra the applications
/// lean on (GAMESS RI-MP2 contractions, LSMS ZGEMM, CoMet's GEMM-shaped
/// metrics, NuCCOR tensor contractions). Row-major throughout. These are
/// the *functional* halves of the simulated vendor libraries; timing comes
/// from device_blas.hpp profiles.

#include <complex>
#include <cstddef>
#include <span>

namespace exa::ml {

using zcomplex = std::complex<double>;

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), row-major, blocked
/// and threaded. Works for float, double, std::complex<double>.
template <typename T>
void gemm(std::span<const T> a, std::span<const T> b, std::span<T> c,
          std::size_t m, std::size_t n, std::size_t k, T alpha, T beta);

/// Convenience overloads matching BLAS naming.
void dgemm(std::span<const double> a, std::span<const double> b,
           std::span<double> c, std::size_t m, std::size_t n, std::size_t k,
           double alpha = 1.0, double beta = 0.0);
void sgemm(std::span<const float> a, std::span<const float> b,
           std::span<float> c, std::size_t m, std::size_t n, std::size_t k,
           float alpha = 1.0f, float beta = 0.0f);
void zgemm(std::span<const zcomplex> a, std::span<const zcomplex> b,
           std::span<zcomplex> c, std::size_t m, std::size_t n, std::size_t k,
           zcomplex alpha = {1.0, 0.0}, zcomplex beta = {0.0, 0.0});

/// Mixed-precision GEMM (the CoMet §3.6 path): inputs quantized to FP16
/// (round-to-nearest-even on the significand), products accumulated in
/// FP32. `a`/`b` are given in float; quantization happens internally.
void hgemm_f32acc(std::span<const float> a, std::span<const float> b,
                  std::span<float> c, std::size_t m, std::size_t n,
                  std::size_t k);

/// Rounds a float through IEEE binary16 (used by hgemm_f32acc and tests).
[[nodiscard]] float round_to_f16(float x);

/// Frobenius-norm relative error ||x - y|| / ||y||, for test assertions.
template <typename T>
[[nodiscard]] double rel_error(std::span<const T> x, std::span<const T> y);

/// Flop count conventions (2mnk for real, 8mnk for complex).
[[nodiscard]] constexpr double gemm_flops_real(std::size_t m, std::size_t n,
                                               std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}
[[nodiscard]] constexpr double gemm_flops_complex(std::size_t m, std::size_t n,
                                                  std::size_t k) {
  return 8.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace exa::ml
