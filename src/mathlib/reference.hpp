#pragma once
/// \file reference.hpp
/// Serial scalar reference kernels for the vectorized mathlib paths.
///
/// Ginkgo's porting testimonial (PAPERS.md, arxiv 2006.14290) argues for
/// one kernel source validated by properties instead of per-target forks;
/// these references are that validation surface. Each one is written as
/// the plainest possible serial loop that performs the *same floating-
/// point operations in the same order* as the optimized kernel, so the
/// determinism tests can demand bitwise equality (memcmp, not tolerance)
/// at every EXA_THREADS setting:
///
///  * `gemm_reference` accumulates each C element depth-ascending into C —
///    the addition sequence both the packed-panel microkernel and the
///    blocked complex path preserve;
///  * `fft_reference` runs the textbook scalar butterfly over the *shared*
///    cached twiddle table (`fft_twiddles`), with the multiply spelled the
///    way std::complex and the simd kernel both evaluate it;
///  * `getrf_reference` is the serial row-by-row panel factorization the
///    parallel dgetrf must reproduce exactly.
///
/// These run on one thread with no blocking — slow on purpose; tests only.

#include <cstddef>
#include <span>

#include "mathlib/dense.hpp"

namespace exa::ml {

/// C = alpha*A*B + beta*C, naive serial i/p/j with depth-ascending
/// accumulation directly into C.
template <typename T>
void gemm_reference(std::span<const T> a, std::span<const T> b,
                    std::span<T> c, std::size_t m, std::size_t n,
                    std::size_t k, T alpha, T beta);

/// In-place radix-2 FFT, scalar butterflies over the shared twiddle cache.
void fft_reference(std::span<zcomplex> data, bool inverse = false);

/// Serial unblocked LU with partial pivoting; same contract as `dgetrf`.
int getrf_reference(std::span<double> a, std::size_t n,
                    std::span<int> pivots);

}  // namespace exa::ml
