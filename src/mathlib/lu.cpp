#include "mathlib/lu.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace exa::ml {

namespace {
/// Trailing rows below which a getrf column update stays on the calling
/// thread (a pool dispatch costs more than the update itself).
constexpr std::size_t kParallelRows = 128;
}  // namespace

int zgetrf(std::span<zcomplex> a, std::size_t n, std::span<int> pivots) {
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(pivots.size() >= n);
  int info = 0;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in column at or below the diagonal.
    std::size_t piv = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a[r * n + col]);
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    pivots[col] = static_cast<int>(piv);
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[piv * n + j]);
      }
    }
    const zcomplex d = a[col * n + col];
    if (d == zcomplex{}) {
      if (info == 0) info = static_cast<int>(col) + 1;
      continue;
    }
    // Scale the panel column, then rank-1-update the trailing rows.
    // Rows are independent and each accumulates left-to-right, so the
    // parallel path is bitwise identical to the serial one (and to any
    // EXA_THREADS setting); the branchless inner loop vectorizes.
    for (std::size_t r = col + 1; r < n; ++r) {
      a[r * n + col] /= d;
    }
    const auto update_row = [&](std::size_t r) {
      const zcomplex l = a[r * n + col];
      const zcomplex* urow = &a[col * n];
      zcomplex* arow = &a[r * n];
      for (std::size_t j = col + 1; j < n; ++j) {
        arow[j] -= l * urow[j];
      }
    };
    if (n - col - 1 >= kParallelRows) {
      support::ThreadPool::global().for_each(col + 1, n, update_row);
    } else {
      for (std::size_t r = col + 1; r < n; ++r) update_row(r);
    }
  }
  return info;
}

void zgetrs(std::span<const zcomplex> lu, std::size_t n,
            std::span<const int> pivots, std::span<zcomplex> b,
            std::size_t nrhs) {
  EXA_REQUIRE(lu.size() >= n * n);
  EXA_REQUIRE(pivots.size() >= n);
  EXA_REQUIRE(b.size() >= n * nrhs);

  // Apply the row interchanges in order.
  for (std::size_t r = 0; r < n; ++r) {
    const auto p = static_cast<std::size_t>(pivots[r]);
    EXA_REQUIRE(p < n);
    if (p != r) {
      for (std::size_t j = 0; j < nrhs; ++j) {
        std::swap(b[r * nrhs + j], b[p * nrhs + j]);
      }
    }
  }
  // Forward substitution with unit-diagonal L (branchless: the zero-skip
  // made solve cost depend on the fill pattern and blocked vectorization).
  for (std::size_t r = 1; r < n; ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      const zcomplex l = lu[r * n + c];
      for (std::size_t j = 0; j < nrhs; ++j) {
        b[r * nrhs + j] -= l * b[c * nrhs + j];
      }
    }
  }
  // Back substitution with U: subtract the already-solved trailing
  // unknowns, then divide by the diagonal.
  for (std::size_t ri = n; ri-- > 0;) {
    const zcomplex d = lu[ri * n + ri];
    EXA_REQUIRE_MSG(d != zcomplex{}, "singular U in zgetrs");
    for (std::size_t c = ri + 1; c < n; ++c) {
      const zcomplex u = lu[ri * n + c];
      for (std::size_t j = 0; j < nrhs; ++j) {
        b[ri * nrhs + j] -= u * b[c * nrhs + j];
      }
    }
    for (std::size_t j = 0; j < nrhs; ++j) b[ri * nrhs + j] /= d;
  }
}

int dgetrf(std::span<double> a, std::size_t n, std::span<int> pivots) {
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(pivots.size() >= n);
  int info = 0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(a[r * n + col]);
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    pivots[col] = static_cast<int>(piv);
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[piv * n + j]);
      }
    }
    const double d = a[col * n + col];
    if (d == 0.0) {
      if (info == 0) info = static_cast<int>(col) + 1;
      continue;
    }
    // Same shape as zgetrf: scale the panel column, then run the
    // independent (hence bitwise-deterministic) row updates in parallel
    // with a branchless simd strip.
    for (std::size_t r = col + 1; r < n; ++r) {
      a[r * n + col] /= d;
    }
    const auto update_row = [&](std::size_t r) {
      const double l = a[r * n + col];
      const double* urow = &a[col * n];
      double* arow = &a[r * n];
#pragma omp simd
      for (std::size_t j = col + 1; j < n; ++j) {
        arow[j] -= l * urow[j];
      }
    };
    if (n - col - 1 >= kParallelRows) {
      support::ThreadPool::global().for_each(col + 1, n, update_row);
    } else {
      for (std::size_t r = col + 1; r < n; ++r) update_row(r);
    }
  }
  return info;
}

void dgetrs(std::span<const double> lu, std::size_t n,
            std::span<const int> pivots, std::span<double> b,
            std::size_t nrhs) {
  EXA_REQUIRE(lu.size() >= n * n);
  EXA_REQUIRE(pivots.size() >= n);
  EXA_REQUIRE(b.size() >= n * nrhs);
  for (std::size_t r = 0; r < n; ++r) {
    const auto p = static_cast<std::size_t>(pivots[r]);
    EXA_REQUIRE(p < n);
    if (p != r) {
      for (std::size_t j = 0; j < nrhs; ++j) {
        std::swap(b[r * nrhs + j], b[p * nrhs + j]);
      }
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      const double l = lu[r * n + c];
#pragma omp simd
      for (std::size_t j = 0; j < nrhs; ++j) {
        b[r * nrhs + j] -= l * b[c * nrhs + j];
      }
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    const double d = lu[ri * n + ri];
    EXA_REQUIRE_MSG(d != 0.0, "singular U in dgetrs");
    for (std::size_t c = ri + 1; c < n; ++c) {
      const double u = lu[ri * n + c];
#pragma omp simd
      for (std::size_t j = 0; j < nrhs; ++j) {
        b[ri * nrhs + j] -= u * b[c * nrhs + j];
      }
    }
    for (std::size_t j = 0; j < nrhs; ++j) b[ri * nrhs + j] /= d;
  }
}

std::vector<zcomplex> zinverse(std::span<const zcomplex> a, std::size_t n) {
  EXA_REQUIRE(a.size() >= n * n);
  std::vector<zcomplex> lu(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(n * n));
  std::vector<int> piv(n);
  const int info = zgetrf(lu, n, piv);
  EXA_REQUIRE_MSG(info == 0, "singular matrix in zinverse");
  std::vector<zcomplex> inv(n * n, zcomplex{});
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = zcomplex{1.0, 0.0};
  zgetrs(lu, n, piv, inv, n);
  return inv;
}

void zblock_lu_inverse_topleft(std::span<zcomplex> a, std::size_t n,
                               std::size_t block, std::span<zcomplex> inv_tl) {
  EXA_REQUIRE(block > 0 && n % block == 0);
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(inv_tl.size() >= block * block);
  const std::size_t nb = n / block;

  // Eliminate trailing diagonal blocks from the last to the second: after
  // each step the leading (k0 x k0) submatrix holds the Schur complement,
  // whose top-left tile's inverse equals that of the original matrix.
  std::vector<zcomplex> dblk(block * block);
  std::vector<zcomplex> w;     // Dinv * A[k, 0..k0]
  std::vector<zcomplex> colk;  // A[0..k0, k]
  for (std::size_t kb = nb; kb-- > 1;) {
    const std::size_t k0 = kb * block;
    // Extract and invert the trailing diagonal block.
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t j = 0; j < block; ++j) {
        dblk[i * block + j] = a[(k0 + i) * n + (k0 + j)];
      }
    }
    const std::vector<zcomplex> dinv = zinverse(dblk, block);

    // W = Dinv * A[k0.., 0..k0]   (block x k0)
    w.assign(block * k0, zcomplex{});
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t p = 0; p < block; ++p) {
        const zcomplex v = dinv[i * block + p];
        for (std::size_t j = 0; j < k0; ++j) {
          w[i * k0 + j] += v * a[(k0 + p) * n + j];
        }
      }
    }
    // colk = A[0..k0, k0..k0+block]   (k0 x block)
    colk.resize(k0 * block);
    for (std::size_t i = 0; i < k0; ++i) {
      for (std::size_t j = 0; j < block; ++j) {
        colk[i * block + j] = a[i * n + (k0 + j)];
      }
    }
    // A[0..k0, 0..k0] -= colk * W. Rows are independent and each
    // accumulates p-ascending, so the parallel dispatch is bitwise
    // deterministic at any pool size.
    support::ThreadPool::global().for_each(0, k0, [&](std::size_t i) {
      for (std::size_t p = 0; p < block; ++p) {
        const zcomplex v = colk[i * block + p];
        for (std::size_t j = 0; j < k0; ++j) {
          a[i * n + j] -= v * w[p * k0 + j];
        }
      }
    });
  }

  // Invert the remaining leading block.
  for (std::size_t i = 0; i < block; ++i) {
    for (std::size_t j = 0; j < block; ++j) {
      dblk[i * block + j] = a[i * n + j];
    }
  }
  const std::vector<zcomplex> inv = zinverse(dblk, block);
  std::copy(inv.begin(), inv.end(), inv_tl.begin());
}

int dgetrf_batched(std::span<double> a, std::size_t n, std::size_t count,
                   std::span<int> pivots) {
  EXA_REQUIRE(a.size() >= n * n * count);
  EXA_REQUIRE(pivots.size() >= n * count);
  std::atomic<int> info{0};
  support::ThreadPool::global().for_each(0, count, [&](std::size_t b) {
    const int local = dgetrf(a.subspan(b * n * n, n * n), n,
                             pivots.subspan(b * n, n));
    if (local != 0) {
      int expected = 0;
      info.compare_exchange_strong(expected, local);
    }
  });
  return info.load();
}

void dgetrs_batched(std::span<const double> lu, std::size_t n,
                    std::size_t count, std::span<const int> pivots,
                    std::span<double> b, std::size_t nrhs) {
  EXA_REQUIRE(lu.size() >= n * n * count);
  EXA_REQUIRE(b.size() >= n * nrhs * count);
  support::ThreadPool::global().for_each(0, count, [&](std::size_t i) {
    dgetrs(lu.subspan(i * n * n, n * n), n, pivots.subspan(i * n, n),
           b.subspan(i * n * nrhs, n * nrhs), nrhs);
  });
}

double zgetrf_flops(std::size_t n) {
  // Real-flop count of complex LU: ~ (8/3) n^3 multiplies+adds.
  const double dn = static_cast<double>(n);
  return 8.0 / 3.0 * dn * dn * dn;
}

double zgetrs_flops(std::size_t n, std::size_t nrhs) {
  const double dn = static_cast<double>(n);
  return 8.0 * dn * dn * static_cast<double>(nrhs);
}

}  // namespace exa::ml
