#pragma once
/// \file fft.hpp
/// Radix-2 complex FFTs — the core of GESTS' pseudo-spectral DNS (§3.3)
/// and the FFT component of the SHOC suite. Real, tested numerics; device
/// timing comes from the tuned library profiles (device_blas.hpp).

#include <cstddef>
#include <span>
#include <vector>

#include "mathlib/dense.hpp"

namespace exa::ml {

/// In-place iterative radix-2 FFT; `data.size()` must be a power of two.
/// The inverse transform is scaled by 1/N (so ifft(fft(x)) == x).
void fft(std::span<zcomplex> data, bool inverse = false);

/// The cached forward twiddle table for length-n transforms:
/// `table[j] = exp(-2*pi*i*j/n)` for j < n/2 (level `len` strides it by
/// n/len; the inverse transform conjugates). Tables are computed once per
/// size, cached process-wide, and safe to request from pool workers — the
/// reference scalar path shares them so kernel/reference comparisons are
/// bitwise, not just tolerance-close.
[[nodiscard]] const std::vector<zcomplex>& fft_twiddles(std::size_t n);

/// Batched 1-D transforms: `count` contiguous lines of length `n`.
void fft_batch(std::span<zcomplex> data, std::size_t n, std::size_t count,
               bool inverse = false);

/// Full 3-D transform of an nx x ny x nz row-major brick (z fastest).
void fft3d(std::span<zcomplex> data, std::size_t nx, std::size_t ny,
           std::size_t nz, bool inverse = false);

/// Standard flop-count convention for a complex length-n transform.
[[nodiscard]] double fft_flops(std::size_t n);

[[nodiscard]] constexpr bool is_pow2(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace exa::ml
