#include "mathlib/device_blas.hpp"

#include <algorithm>
#include <cmath>

#include "mathlib/dense.hpp"
#include "mathlib/fft.hpp"
#include "mathlib/lu.hpp"
#include "support/assert.hpp"

namespace exa::ml {

using arch::DType;

TuningRegistry& TuningRegistry::instance() {
  static TuningRegistry reg;
  return reg;
}

void TuningRegistry::register_gemm(const std::string& app, std::size_t m,
                                   std::size_t n, std::size_t k, DType dtype) {
  (void)app;  // recorded for provenance in a fuller system
  tuned_.insert(Key{m, n, k, dtype});
}

bool TuningRegistry::is_tuned(std::size_t m, std::size_t n, std::size_t k,
                              DType dtype) const {
  return tuned_.count(Key{m, n, k, dtype}) > 0;
}

void TuningRegistry::clear() { tuned_.clear(); }

double gemm_efficiency(const arch::GpuArch& gpu, DType dtype,
                       bool matrix_cores, std::size_t m, std::size_t n,
                       std::size_t k) {
  const std::size_t shortest = std::min({m, n, k});
  double eff = 0.0;
  // A matrix-core request only engages the matrix-unit efficiency table
  // when the architecture actually has matrix units for the type (V100
  // has no FP64 tensor cores: DGEMM runs on the vector pipes there).
  const bool uses_matrix_units =
      matrix_cores &&
      gpu.peak_matrix_flops.count(arch::real_of(dtype)) > 0;
  if (uses_matrix_units) {
    // Matrix/tensor units double (or 16x) the nominal peak but sustained
    // GEMM reaches only about half of it, and they need large tiles.
    if (shortest < 16) eff = 0.03;
    else if (shortest < 64) eff = 0.12;
    else if (shortest < 256) eff = 0.28;
    else if (shortest < 1024) eff = 0.42;
    else eff = 0.50;
    if (TuningRegistry::instance().is_tuned(m, n, k, dtype)) {
      eff = std::max(eff, 0.55);
    }
    return eff;
  }
  if (shortest < 16) eff = 0.06;
  else if (shortest < 64) eff = 0.30;
  else if (shortest < 256) eff = 0.55;
  else if (shortest < 1024) eff = 0.75;
  else eff = 0.88;
  if (TuningRegistry::instance().is_tuned(m, n, k, dtype)) {
    eff = std::max(eff, 0.92);
  }
  return eff;
}

double getrf_efficiency(const arch::GpuArch& gpu, std::size_t n) {
  (void)gpu;
  // Panel factorization serializes small problems; even large problems
  // sustain well under GEMM efficiency.
  if (n < 128) return 0.04;
  if (n < 512) return 0.12;
  if (n < 2048) return 0.28;
  if (n < 4096) return 0.33;
  if (n < 16384) return 0.45;
  return 0.55;
}

double fft_memory_efficiency(const arch::GpuArch& gpu, std::size_t n) {
  (void)gpu;
  if (n < 256) return 0.35;  // launch-bound small transforms
  if (n < 4096) return 0.6;
  return 0.8;
}

namespace {

/// Grid sized so each thread covers a small tile of the output.
sim::LaunchConfig cover_elems(double elems, std::uint32_t block = 256,
                              double per_thread = 4.0) {
  sim::LaunchConfig cfg;
  cfg.block_threads = block;
  cfg.blocks = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(elems / (per_thread * block))));
  return cfg;
}

}  // namespace

sim::KernelProfile gemm_profile(const arch::GpuArch& gpu, DType dtype,
                                bool matrix_cores, std::size_t m,
                                std::size_t n, std::size_t k) {
  const bool cx = arch::is_complex(dtype);
  const double flops =
      cx ? gemm_flops_complex(m, n, k) : gemm_flops_real(m, n, k);
  const double sz = static_cast<double>(arch::size_of(dtype));
  sim::KernelProfile p;
  p.name = "gemm_" + arch::to_string(dtype);
  p.add_flops(dtype, flops, matrix_cores);
  p.bytes_read = (static_cast<double>(m * k) + static_cast<double>(k * n) +
                  static_cast<double>(m * n)) * sz;
  p.bytes_written = static_cast<double>(m * n) * sz;
  p.registers_per_thread = 128;  // accumulator tiles
  p.lds_per_block_bytes = 32 * 1024;
  p.compute_efficiency = gemm_efficiency(gpu, dtype, matrix_cores, m, n, k);
  p.memory_efficiency = 0.85;
  return p;
}

sim::KernelProfile getrf_profile(const arch::GpuArch& gpu, DType dtype,
                                 std::size_t n) {
  const bool cx = arch::is_complex(dtype);
  const double dn = static_cast<double>(n);
  const double flops = (cx ? 8.0 : 2.0) / 3.0 * dn * dn * dn;
  const double sz = static_cast<double>(arch::size_of(dtype));
  sim::KernelProfile p;
  p.name = "getrf_" + arch::to_string(dtype);
  p.add_flops(dtype, flops);
  p.bytes_read = 2.0 * dn * dn * sz;  // matrix revisited across panels
  p.bytes_written = dn * dn * sz;
  p.registers_per_thread = 96;
  p.compute_efficiency = getrf_efficiency(gpu, n);
  p.memory_efficiency = 0.75;
  return p;
}

sim::KernelProfile getrs_profile(const arch::GpuArch& gpu, DType dtype,
                                 std::size_t n, std::size_t nrhs) {
  (void)gpu;
  const bool cx = arch::is_complex(dtype);
  const double dn = static_cast<double>(n);
  const double dr = static_cast<double>(nrhs);
  const double flops = (cx ? 8.0 : 2.0) * dn * dn * dr;
  const double sz = static_cast<double>(arch::size_of(dtype));
  sim::KernelProfile p;
  p.name = "getrs_" + arch::to_string(dtype);
  p.add_flops(dtype, flops);
  p.bytes_read = (dn * dn + 2.0 * dn * dr) * sz;
  p.bytes_written = dn * dr * sz;
  p.registers_per_thread = 64;
  // Triangular solves reach GEMM-like efficiency only for many RHS.
  p.compute_efficiency = nrhs >= n / 2 ? 0.55 : 0.25;
  p.memory_efficiency = 0.75;
  return p;
}

sim::KernelProfile fft_profile(const arch::GpuArch& gpu, std::size_t n,
                               std::size_t batch) {
  EXA_REQUIRE(is_pow2(n));
  const double total = static_cast<double>(n) * static_cast<double>(batch);
  sim::KernelProfile p;
  p.name = "fft_c64";
  p.add_flops(DType::kF64, fft_flops(n) * static_cast<double>(batch));
  // Fused radix passes: the array is streamed ceil(log2(n)/4) times
  // (radix-16 stages), read + write each pass, 16 B per element.
  const double passes = std::ceil(std::log2(static_cast<double>(n)) / 4.0);
  p.bytes_read = passes * total * 16.0;
  p.bytes_written = passes * total * 16.0;
  p.registers_per_thread = 64;
  p.lds_per_block_bytes = 48 * 1024;
  p.compute_efficiency = 0.6;
  p.memory_efficiency = fft_memory_efficiency(gpu, n);
  return p;
}

sim::KernelProfile sort_profile(const arch::GpuArch& gpu, std::size_t count,
                                std::size_t elem_bytes) {
  (void)gpu;
  const double bytes = static_cast<double>(count * elem_bytes);
  sim::KernelProfile p;
  p.name = "radix_sort";
  // 8-bit digits over a 32/64-bit key: ~4-8 passes, each read+write.
  const double passes = elem_bytes <= 4 ? 4.0 : 8.0;
  p.add_flops(DType::kI32, 4.0 * static_cast<double>(count) * passes);
  p.bytes_read = passes * bytes;
  p.bytes_written = passes * bytes;
  p.registers_per_thread = 48;
  p.memory_efficiency = 0.7;
  return p;
}

sim::KernelProfile reduce_profile(const arch::GpuArch& gpu, std::size_t count,
                                  std::size_t elem_bytes) {
  (void)gpu;
  sim::KernelProfile p;
  p.name = "reduce";
  p.add_flops(DType::kF64, static_cast<double>(count));
  p.bytes_read = static_cast<double>(count * elem_bytes);
  p.bytes_written = 1024.0;  // per-block partials
  p.registers_per_thread = 32;
  p.memory_efficiency = 0.85;
  return p;
}

sim::KernelProfile spmv_profile(const arch::GpuArch& gpu, std::size_t rows,
                                std::size_t nnz, int vectors) {
  (void)gpu;
  EXA_REQUIRE(vectors >= 1);
  sim::KernelProfile p;
  p.name = vectors > 1 ? "spmv_multi" : "spmv";
  const double dnnz = static_cast<double>(nnz);
  const double dv = static_cast<double>(vectors);
  p.add_flops(DType::kF64, 2.0 * dnnz * dv);
  // CSR traffic: values (8 B) + column indices (4 B) once, x gathers
  // (8 B/nnz, poorly cached) per vector, y writes per vector. Fusing
  // multiple vectors amortizes the matrix read — the whole point of the
  // dual-CG QEq optimization.
  p.bytes_read = dnnz * (8.0 + 4.0) + dnnz * 8.0 * dv +
                 static_cast<double>(rows) * 8.0 * dv;
  p.bytes_written = static_cast<double>(rows) * 8.0 * dv;
  p.registers_per_thread = 40;
  p.memory_efficiency = 0.65;  // irregular gathers
  return p;
}

namespace {

sim::KernelTiming launch_profile(const sim::KernelProfile& p, double elems,
                                 hip::hipStream_t stream) {
  hip::Kernel kernel;
  kernel.profile = p;
  const hip::hipError_t err =
      hip::hipLaunchKernelEXA(kernel, cover_elems(elems), stream);
  EXA_REQUIRE(err == hip::hipSuccess);
  return hip::hipLastLaunchTiming();
}

const arch::GpuArch& current_gpu() {
  return hip::Runtime::instance().current_device().gpu();
}

}  // namespace

sim::KernelTiming launch_gemm(DType dtype, bool matrix_cores, std::size_t m,
                              std::size_t n, std::size_t k,
                              hip::hipStream_t stream) {
  return launch_profile(gemm_profile(current_gpu(), dtype, matrix_cores, m, n, k),
                        static_cast<double>(m * n), stream);
}

sim::KernelTiming launch_getrf(DType dtype, std::size_t n,
                               hip::hipStream_t stream) {
  return launch_profile(getrf_profile(current_gpu(), dtype, n),
                        static_cast<double>(n * n), stream);
}

sim::KernelTiming launch_getrs(DType dtype, std::size_t n, std::size_t nrhs,
                               hip::hipStream_t stream) {
  return launch_profile(getrs_profile(current_gpu(), dtype, n, nrhs),
                        static_cast<double>(n * nrhs), stream);
}

sim::KernelTiming launch_fft(std::size_t n, std::size_t batch,
                             hip::hipStream_t stream) {
  return launch_profile(fft_profile(current_gpu(), n, batch),
                        static_cast<double>(n * batch), stream);
}

}  // namespace exa::ml
