#include "mathlib/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.hpp"

namespace exa::ml {

namespace {

/// Sum of squares of the off-diagonal elements (the Jacobi objective).
double off_diagonal_norm2(const std::vector<double>& a, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) s += a[i * n + j] * a[i * n + j];
    }
  }
  return s;
}

/// Cyclic Jacobi sweeps on a working copy; optionally accumulates the
/// rotations into `v` (identity-initialized) so its columns end up as the
/// eigenvectors.
void jacobi(std::vector<double>& a, std::size_t n, std::vector<double>* v,
            double tol, int max_sweeps) {
  const double frob2 = std::inner_product(a.begin(), a.end(), a.begin(), 0.0);
  const double threshold2 = tol * tol * std::max(frob2, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm2(a, n) <= threshold2) return;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        // Classic stable rotation computation.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to rows/columns p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        if (v != nullptr) {
          for (std::size_t k = 0; k < n; ++k) {
            const double vkp = (*v)[k * n + p];
            const double vkq = (*v)[k * n + q];
            (*v)[k * n + p] = c * vkp - s * vkq;
            (*v)[k * n + q] = s * vkp + c * vkq;
          }
        }
      }
    }
  }
  EXA_REQUIRE_MSG(off_diagonal_norm2(a, n) <= threshold2 * 1e6,
                  "Jacobi eigensolver failed to converge");
}

/// Sorts eigenpairs ascending by eigenvalue.
void sort_pairs(std::vector<double>& evals, std::vector<double>* evecs,
                std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&evals](std::size_t a, std::size_t b) {
    return evals[a] < evals[b];
  });
  std::vector<double> sorted_vals(n);
  for (std::size_t j = 0; j < n; ++j) sorted_vals[j] = evals[order[j]];
  evals = std::move(sorted_vals);
  if (evecs != nullptr) {
    std::vector<double> sorted_vecs(n * n);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t r = 0; r < n; ++r) {
        sorted_vecs[r * n + j] = (*evecs)[r * n + order[j]];
      }
    }
    *evecs = std::move(sorted_vecs);
  }
}

void check_symmetric(std::span<const double> a, std::size_t n, double tol) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      EXA_REQUIRE_MSG(std::fabs(a[i * n + j] - a[j * n + i]) <= tol,
                      "syev requires a symmetric matrix");
    }
  }
}

}  // namespace

void syev(std::span<const double> a, std::size_t n,
          std::span<double> eigenvalues, std::span<double> eigenvectors,
          double tol, int max_sweeps, double symmetry_tol) {
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(eigenvalues.size() >= n);
  EXA_REQUIRE(eigenvectors.size() >= n * n);
  check_symmetric(a, n, symmetry_tol);

  std::vector<double> work(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(n * n));
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;
  jacobi(work, n, &v, tol, max_sweeps);

  std::vector<double> evals(n);
  for (std::size_t i = 0; i < n; ++i) evals[i] = work[i * n + i];
  sort_pairs(evals, &v, n);
  std::copy(evals.begin(), evals.end(), eigenvalues.begin());
  std::copy(v.begin(), v.end(), eigenvectors.begin());
}

void syev_values(std::span<const double> a, std::size_t n,
                 std::span<double> eigenvalues, double tol, int max_sweeps) {
  EXA_REQUIRE(a.size() >= n * n);
  EXA_REQUIRE(eigenvalues.size() >= n);
  check_symmetric(a, n, 1e-9);
  std::vector<double> work(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(n * n));
  jacobi(work, n, nullptr, tol, max_sweeps);
  std::vector<double> evals(n);
  for (std::size_t i = 0; i < n; ++i) evals[i] = work[i * n + i];
  sort_pairs(evals, nullptr, n);
  std::copy(evals.begin(), evals.end(), eigenvalues.begin());
}

sim::KernelProfile syevd_profile(const arch::GpuArch& gpu, std::size_t n,
                                 EigenAlgo algo) {
  (void)gpu;
  const double dn = static_cast<double>(n);
  sim::KernelProfile p;
  // Both paths reduce to tridiagonal (~4/3 n^3) then solve; D&C spends its
  // remaining work in GEMM-shaped back-transformations (high efficiency),
  // QR iteration in bandwidth-bound bulge chasing (low efficiency).
  const double flops = (algo == EigenAlgo::kDivideAndConquer ? 10.0 : 9.0) /
                       3.0 * dn * dn * dn;
  p.name = algo == EigenAlgo::kDivideAndConquer ? "syevd_dc" : "syev_qr";
  p.add_flops(arch::DType::kF64, flops);
  p.bytes_read = (algo == EigenAlgo::kDivideAndConquer ? 4.0 : 14.0) * dn * dn * 8.0;
  p.bytes_written = 2.0 * dn * dn * 8.0;
  p.registers_per_thread = 96;
  p.compute_efficiency =
      algo == EigenAlgo::kDivideAndConquer ? 0.35 : 0.12;
  p.memory_efficiency = 0.7;
  return p;
}

}  // namespace exa::ml
