#pragma once
/// \file lu.hpp
/// Complex dense LU factorization and solves — the LSMS §3.2 workload.
///
/// Two solution paths are provided, mirroring the paper:
///  * `zgetrf`/`zgetrs`: LU with partial pivoting, the rocSOLVER route the
///    Frontier port adopted;
///  * `zblock_lu`: the historical block-inversion algorithm ("slightly
///    lower total floating point operation count" but worse measured
///    performance on MI250X).
///
/// Both are real, tested implementations; flop-count helpers feed the
/// device timing model.

#include <cstddef>
#include <span>
#include <vector>

#include "mathlib/dense.hpp"

namespace exa::ml {

/// In-place LU factorization with partial pivoting of a row-major n x n
/// complex matrix. Fills `pivots` (size n) with the row swaps applied.
/// Returns 0 on success, or (1 + column index) of the first exactly-zero
/// pivot (matching LAPACK's info convention).
int zgetrf(std::span<zcomplex> a, std::size_t n, std::span<int> pivots);

/// Solves A x = b for `nrhs` right-hand sides using a zgetrf-factored
/// matrix. `b` is n x nrhs row-major and is overwritten with the solution.
void zgetrs(std::span<const zcomplex> lu, std::size_t n,
            std::span<const int> pivots, std::span<zcomplex> b,
            std::size_t nrhs);

/// LSMS-style block LU: computes the top-left (block x block) tile of
/// A^{-1} for an n x n matrix without forming the full inverse, by
/// eliminating trailing blocks. This is the "zblock_lu" algorithm the
/// Frontier port replaced. `a` is destroyed; the result tile is written
/// row-major into `inv_tl`.
void zblock_lu_inverse_topleft(std::span<zcomplex> a, std::size_t n,
                               std::size_t block, std::span<zcomplex> inv_tl);

/// Reference: full inverse via zgetrf/zgetrs against identity columns
/// (O(n^3), test use).
std::vector<zcomplex> zinverse(std::span<const zcomplex> a, std::size_t n);

/// Real (double) LU with partial pivoting, same conventions as zgetrf —
/// used by the batched Newton solves in the Pele chemistry integrators.
int dgetrf(std::span<double> a, std::size_t n, std::span<int> pivots);
void dgetrs(std::span<const double> lu, std::size_t n,
            std::span<const int> pivots, std::span<double> b,
            std::size_t nrhs);

/// MAGMA-style batched interface (the PeleLM(eX) §3.8 path: "batched
/// linear algebra from the MAGMA library is employed"): `count` dense
/// n x n systems stored contiguously. Returns the first non-zero info.
int dgetrf_batched(std::span<double> a, std::size_t n, std::size_t count,
                   std::span<int> pivots);
void dgetrs_batched(std::span<const double> lu, std::size_t n,
                    std::size_t count, std::span<const int> pivots,
                    std::span<double> b, std::size_t nrhs);

/// Flop counts (complex ops expanded to real flops).
[[nodiscard]] double zgetrf_flops(std::size_t n);
[[nodiscard]] double zgetrs_flops(std::size_t n, std::size_t nrhs);

}  // namespace exa::ml
