#pragma once
/// \file eigen.hpp
/// Real symmetric eigensolver — the diagonalization dependency GAMESS
/// §3.1 leans on ("ROCm 5.4 was used in conjunction with MAGMA to include
/// a more efficient divide and conquer implementation of symmetric eigen
/// solver"). The host implementation is the cyclic Jacobi method (robust,
/// simple, quadratically convergent); the device cost profiles distinguish
/// the classic QR-iteration path from the divide-and-conquer path that
/// replaced it.

#include <cstddef>
#include <span>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "sim/kernel_profile.hpp"

namespace exa::ml {

/// Eigendecomposition of a symmetric n x n matrix (row-major): fills
/// `eigenvalues` (ascending) and `eigenvectors` (row-major; row i of the
/// ORIGINAL basis dotted with column j gives... vectors are stored as
/// columns: eigenvectors[r * n + j] is component r of eigenvector j).
/// Requires symmetry within `symmetry_tol`.
void syev(std::span<const double> a, std::size_t n,
          std::span<double> eigenvalues, std::span<double> eigenvectors,
          double tol = 1e-12, int max_sweeps = 64,
          double symmetry_tol = 1e-9);

/// Eigenvalues only (same algorithm, vectors not accumulated).
void syev_values(std::span<const double> a, std::size_t n,
                 std::span<double> eigenvalues, double tol = 1e-12,
                 int max_sweeps = 64);

/// Eigensolver algorithm choices in the vendor libraries.
enum class EigenAlgo {
  kQrIteration,       ///< the pre-ROCm-5.4 path
  kDivideAndConquer,  ///< the MAGMA path GAMESS adopted (§3.1)
};

/// Device cost profile of a dense symmetric eigensolve.
[[nodiscard]] sim::KernelProfile syevd_profile(const arch::GpuArch& gpu,
                                               std::size_t n, EigenAlgo algo);

}  // namespace exa::ml
